//! Real-socket backend: a [`TcpBus`] moving length-prefixed frames between
//! OS processes over nonblocking `std::net::TcpStream`s, and a
//! [`TcpTransport`] that implements [`Transport`] on top of it with a
//! wall-clock timer wheel.
//!
//! Threading model (one bus per daemon): **one event-loop thread total**,
//! regardless of peer count. The loop multiplexes the listener, every
//! accepted connection, and every outbound connection over a single
//! [`epoll_shim::Poller`]:
//!
//! * inbound bytes are read a whole socket buffer at a time and carved
//!   into frames **zero-copy** by a [`FrameAssembler`] — each delivered
//!   [`FrameBuf`] is a view into the read buffer, so a 64 KiB read full
//!   of frames costs one allocation, not one per frame;
//! * outbound frames are staged in a per-connection [`WriteQueue`] and
//!   **coalesced**: one `write(2)` per wakeup pushes a whole run of
//!   length-prefixed frames, instead of two writes per frame on a
//!   dedicated thread;
//! * senders never block: frames for a peer whose connection is not yet
//!   established stay staged while the loop retries the connect with
//!   backoff (daemons of one fleet start in arbitrary order); a saturated
//!   per-peer staging queue, a peer that stays unreachable through the
//!   whole backoff window, or a connection that breaks mid-flight *drops*
//!   frames (counted in [`TcpBus::dropped_frames`]) — loss, not blocking,
//!   because every overlay protocol above already tolerates loss
//!   (heartbeats, rejoin, repair).
//!
//! Peer frames carry a `[from][to]` overlay-address header inside the
//! length-prefixed body, so one bus can host **many** federation members
//! (agent packing): the daemon demuxes on `Inbound::Peer::to`. Control
//! connections (the `cluster` harness) speak plain frames with no header.
//!
//! Only raw bytes cross the event-loop thread boundary; encoding and
//! decoding of typed messages (which may hold non-`Send` state such as
//! `Rc<Query>`) stay on the daemon's main thread.

use crate::buf::{FrameAssembler, FrameBuf};
use crate::codec::{decode_frame, encode_frame, Reader, Wire, MAX_FRAME_LEN};
use crate::transport::Transport;
use epoll_shim::{Interest, Poller};
use simnet::{NodeAddr, SimDuration, SimTime, TimerToken};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

/// Capacity of the shared inbound frame queue (frames, not bytes).
const INBOUND_QUEUE: usize = 4096;
/// Capacity of each per-peer outbound staging queue (frames). 4096: at
/// 16,000 packed agents the convergence burst overruns a 1024-frame
/// queue long before the write path is the bottleneck (62k drops in the
/// BENCH_wire 16k row were dominated by staging overflow).
const OUTBOUND_QUEUE: usize = 4096;
/// Hard cap on a connection's un-flushed write buffer; beyond this new
/// frames for the connection are dropped (slow-receiver protection).
/// 8 MiB absorbs the deeper staging queue above without letting one
/// stalled peer pin unbounded memory.
const WRITE_BUF_MAX: usize = 8 * 1024 * 1024;
/// Compact the write buffer once this many sent bytes accumulate at its
/// front.
const WRITE_COMPACT: usize = 256 * 1024;
/// Bytes per `read(2)` on a readable connection.
const READ_CHUNK: usize = 64 * 1024;
/// Connect attempts per peer before its staged frames are dropped.
const CONNECT_ATTEMPTS: u32 = 40;
/// Backoff after a failed connect attempt; doubles per attempt up to
/// [`CONNECT_BACKOFF_MAX`]. The full retry window spans over a minute —
/// enough for a large fleet to finish starting on a loaded host.
const CONNECT_BACKOFF: std::time::Duration = std::time::Duration::from_millis(50);
const CONNECT_BACKOFF_MAX: std::time::Duration = std::time::Duration::from_secs(2);

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const TOKEN_FIRST_CONN: u64 = 2;

/// First frame on every connection: who is calling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hello {
    /// A federation peer process, identified by one overlay address it
    /// hosts (packed daemons host many; the per-frame header is
    /// authoritative).
    Peer(NodeAddr),
    /// A control client (the `cluster` harness); carries no address.
    Ctrl,
}

impl Wire for Hello {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Hello::Peer(addr) => {
                out.push(0);
                addr.encode_into(out);
            }
            Hello::Ctrl => out.push(1),
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, crate::WireError> {
        Ok(match r.byte()? {
            0 => Hello::Peer(NodeAddr::decode(r)?),
            1 => Hello::Ctrl,
            tag => return Err(crate::WireError::BadTag { what: "Hello", tag }),
        })
    }
}

/// One frame delivered by the bus to the daemon's main loop.
#[derive(Debug)]
pub enum Inbound {
    /// A protocol frame from a federation peer (still encoded — decode on
    /// the main thread).
    Peer {
        /// Overlay address of the sending member (per-frame header).
        from: NodeAddr,
        /// Overlay address of the destination member — the demux key when
        /// one daemon hosts many members.
        to: NodeAddr,
        /// The encoded message, viewed zero-copy out of the read buffer.
        frame: FrameBuf,
    },
    /// A frame from a control client.
    Ctrl {
        /// Bus-local id of the control connection, for [`TcpBus::send_ctrl`].
        conn: u64,
        /// The raw frame body.
        frame: FrameBuf,
    },
    /// A control connection closed.
    CtrlClosed {
        /// Bus-local id of the closed connection.
        conn: u64,
    },
}

/// Maps overlay addresses to socket addresses (e.g. `127.0.0.1:base+i`).
pub type Resolver = Arc<dyn Fn(NodeAddr) -> Option<SocketAddr> + Send + Sync>;

/// Dropped-frame counts broken down by cause, so a lossy run says *why*
/// (snapshot of [`TcpBus::drop_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropStats {
    /// The resolver had no socket address for the destination.
    pub unresolvable: u64,
    /// A per-peer outbound staging queue was full (sender outran the
    /// event loop or a not-yet-established connection).
    pub outbound_full: u64,
    /// A connection's un-flushed write buffer exceeded its cap (slow
    /// receiver).
    pub write_cap: u64,
    /// The connect-retry budget toward a peer was exhausted.
    pub connect_exhausted: u64,
    /// A connection broke with frames still queued on it.
    pub conn_closed: u64,
}

impl DropStats {
    /// Total frames dropped across all causes.
    pub fn total(&self) -> u64 {
        self.unresolvable
            + self.outbound_full
            + self.write_cap
            + self.connect_exhausted
            + self.conn_closed
    }

    /// Adds another snapshot's counts (fleet-wide aggregation).
    pub fn merge(&mut self, other: &DropStats) {
        self.unresolvable += other.unresolvable;
        self.outbound_full += other.outbound_full;
        self.write_cap += other.write_cap;
        self.connect_exhausted += other.connect_exhausted;
        self.conn_closed += other.conn_closed;
    }
}

impl Wire for DropStats {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.unresolvable.encode_into(out);
        self.outbound_full.encode_into(out);
        self.write_cap.encode_into(out);
        self.connect_exhausted.encode_into(out);
        self.conn_closed.encode_into(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, crate::WireError> {
        Ok(DropStats {
            unresolvable: u64::decode(r)?,
            outbound_full: u64::decode(r)?,
            write_cap: u64::decode(r)?,
            connect_exhausted: u64::decode(r)?,
            conn_closed: u64::decode(r)?,
        })
    }
}

/// Per-cause drop counters shared between sender threads and the event
/// loop.
#[derive(Default)]
struct DropCounters {
    unresolvable: AtomicU64,
    outbound_full: AtomicU64,
    write_cap: AtomicU64,
    connect_exhausted: AtomicU64,
    conn_closed: AtomicU64,
}

impl DropCounters {
    fn snapshot(&self) -> DropStats {
        DropStats {
            unresolvable: self.unresolvable.load(Ordering::Relaxed),
            outbound_full: self.outbound_full.load(Ordering::Relaxed),
            write_cap: self.write_cap.load(Ordering::Relaxed),
            connect_exhausted: self.connect_exhausted.load(Ordering::Relaxed),
            conn_closed: self.conn_closed.load(Ordering::Relaxed),
        }
    }
}

/// State shared between sender threads and the event loop, guarded by one
/// mutex held only for queue pushes/takes (never across I/O).
#[derive(Default)]
struct Shared {
    /// Per-destination-socket staging queues of `(from, to, payload)`.
    out: HashMap<SocketAddr, VecDeque<(NodeAddr, NodeAddr, Vec<u8>)>>,
    /// Encoded replies awaiting a control connection.
    ctrl_out: Vec<(u64, Vec<u8>)>,
    /// Control connections that have completed their hello and not closed.
    ctrl_alive: HashSet<u64>,
    shutdown: bool,
}

struct BusInner {
    my_addr: NodeAddr,
    local_addr: SocketAddr,
    resolver: Resolver,
    shared: Mutex<Shared>,
    /// Self-pipe write half: one byte nudges the event loop awake.
    wake_tx: UnixStream,
    /// Frames dropped on saturated or broken outbound paths, by cause.
    dropped: DropCounters,
    /// Outbound payload frames still inside the loop (staged + write
    /// queues), published by the event loop once per iteration; read by
    /// [`TcpBus::flush`].
    pending_out: AtomicU64,
    /// Event-loop iteration counter (publishes pair with `pending_out`),
    /// so `flush` can tell a fresh zero from a stale one.
    loop_iters: AtomicU64,
}

/// A shared handle to one daemon's socket machinery. Cheap to clone.
#[derive(Clone)]
pub struct TcpBus {
    inner: Arc<BusInner>,
}

impl TcpBus {
    /// Binds `listen` (port 0 picks an ephemeral port — see
    /// [`TcpBus::local_addr`]), spawns the single event-loop thread, and
    /// returns the bus plus the inbound frame queue the loop feeds.
    pub fn start(
        listen: SocketAddr,
        my_addr: NodeAddr,
        resolver: Resolver,
    ) -> std::io::Result<(TcpBus, Receiver<Inbound>)> {
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        let poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        poller.register(wake_rx.as_raw_fd(), TOKEN_WAKER, Interest::READ)?;
        let (tx, rx) = sync_channel::<Inbound>(INBOUND_QUEUE);
        let bus = TcpBus {
            inner: Arc::new(BusInner {
                my_addr,
                local_addr,
                resolver,
                shared: Mutex::new(Shared::default()),
                wake_tx,
                dropped: DropCounters::default(),
                pending_out: AtomicU64::new(0),
                loop_iters: AtomicU64::new(0),
            }),
        };
        let mut ev = EventLoop {
            inner: Arc::clone(&bus.inner),
            poller,
            listener,
            wake_rx,
            tx,
            conns: HashMap::new(),
            by_sock: HashMap::new(),
            ctrl_tokens: HashMap::new(),
            next_token: TOKEN_FIRST_CONN,
            next_ctrl: 0,
            undelivered: VecDeque::new(),
            staged: HashMap::new(),
            retry: HashMap::new(),
            scratch: vec![0u8; READ_CHUNK],
            running: true,
        };
        thread::Builder::new()
            .name(format!("rbay-bus-{}", my_addr.0))
            .spawn(move || ev.run())
            .expect("spawn bus event loop");
        Ok((bus, rx))
    }

    /// The overlay address this bus announces in its hello.
    pub fn my_addr(&self) -> NodeAddr {
        self.inner.my_addr
    }

    /// The socket address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr
    }

    /// Queues an already-encoded frame from this bus's own address.
    pub fn send_to(&self, to: NodeAddr, frame: Vec<u8>) {
        self.send_from(self.inner.my_addr, to, frame);
    }

    /// Queues an already-encoded frame from an arbitrary hosted member
    /// address (agent packing). Never blocks: the frame is dropped (and
    /// counted) if `to` does not resolve or the peer's staging queue is
    /// full.
    pub fn send_from(&self, from: NodeAddr, to: NodeAddr, frame: Vec<u8>) {
        let Some(sock) = (self.inner.resolver)(to) else {
            self.inner
                .dropped
                .unresolvable
                .fetch_add(1, Ordering::Relaxed);
            return;
        };
        {
            let mut sh = self.inner.shared.lock().expect("shared lock");
            if sh.shutdown {
                return;
            }
            let q = sh.out.entry(sock).or_default();
            if q.len() >= OUTBOUND_QUEUE {
                self.inner
                    .dropped
                    .outbound_full
                    .fetch_add(1, Ordering::Relaxed);
                return;
            }
            q.push_back((from, to, frame));
        }
        self.wake();
    }

    /// Queues a frame back on a control connection. An unknown or closed
    /// connection is an error; transmission itself is asynchronous and
    /// best-effort.
    pub fn send_ctrl(&self, conn: u64, frame: &[u8]) -> std::io::Result<()> {
        {
            let mut sh = self.inner.shared.lock().expect("shared lock");
            if !sh.ctrl_alive.contains(&conn) {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::NotConnected,
                    "ctrl conn closed",
                ));
            }
            sh.ctrl_out.push((conn, frame.to_vec()));
        }
        self.wake();
        Ok(())
    }

    /// Frames dropped so far on saturated or broken outbound paths
    /// (total across causes — see [`TcpBus::drop_stats`]).
    pub fn dropped_frames(&self) -> u64 {
        self.drop_stats().total()
    }

    /// Per-cause breakdown of the dropped-frame count.
    pub fn drop_stats(&self) -> DropStats {
        self.inner.dropped.snapshot()
    }

    /// Asks the event loop to exit; in-flight frames may be lost. Callers
    /// that care (graceful daemon shutdown) should [`TcpBus::flush`]
    /// first.
    pub fn shutdown(&self) {
        self.inner.shared.lock().expect("shared lock").shutdown = true;
        self.wake();
    }

    /// Best-effort outbound barrier: blocks until every frame queued
    /// before this call has been handed to the kernel (staging queues and
    /// per-connection write buffers empty), or until `timeout` elapses.
    /// Frames parked behind a connect still in backoff can hold the
    /// barrier open — the timeout bounds that wait. Returns whether the
    /// bus drained completely.
    pub fn flush(&self, timeout: std::time::Duration) -> bool {
        let deadline = Instant::now() + timeout;
        // Only a publish that happened *after* we started observing can
        // prove emptiness: a zero from before our last send would be
        // stale, as frames move from `shared.out` into loop-private
        // staging before being re-counted.
        let mut seen = self.inner.loop_iters.load(Ordering::Acquire);
        loop {
            self.wake();
            thread::sleep(std::time::Duration::from_millis(1));
            let iters = self.inner.loop_iters.load(Ordering::Acquire);
            let queued = {
                let sh = self.inner.shared.lock().expect("shared lock");
                !sh.out.is_empty() || !sh.ctrl_out.is_empty()
            };
            if iters > seen {
                if !queued && self.inner.pending_out.load(Ordering::Acquire) == 0 {
                    return true;
                }
                seen = iters;
            }
            if Instant::now() >= deadline {
                return false;
            }
        }
    }

    fn wake(&self) {
        // A full pipe already guarantees a pending wakeup.
        let _ = (&self.inner.wake_tx).write(&[1]);
    }
}

/// What a connection is for, decided by its hello (inbound) or by us
/// (outbound).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnKind {
    /// Accepted, hello not yet seen.
    Pending,
    /// Accepted from a federation peer; we only read from it.
    PeerIn,
    /// Accepted from a control client (bus-local id).
    CtrlIn(u64),
    /// Initiated by us toward a peer; we only write to it.
    PeerOut,
}

/// Pending outbound bytes for one connection: serialized frames appended
/// at the back, flushed in one `write` run from the front.
#[derive(Default)]
struct WriteQueue {
    buf: Vec<u8>,
    pos: usize,
    /// End offset (in `buf`) of every *payload* frame not yet fully sent,
    /// for drop accounting when the connection dies. Hello frames are not
    /// tracked.
    frame_ends: VecDeque<usize>,
}

impl WriteQueue {
    fn has_pending(&self) -> bool {
        self.pos < self.buf.len()
    }

    fn backlog(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn push_raw_frame(&mut self, body: &[u8], track: bool) {
        self.buf
            .extend_from_slice(&(body.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(body);
        if track {
            self.frame_ends.push_back(self.buf.len());
        }
    }

    /// Serializes `[u32 len][from][to][payload]` directly into the buffer.
    fn push_peer_frame(&mut self, from: NodeAddr, to: NodeAddr, payload: &[u8]) {
        let start = self.buf.len();
        self.buf.extend_from_slice(&[0u8; 4]);
        from.encode_into(&mut self.buf);
        to.encode_into(&mut self.buf);
        self.buf.extend_from_slice(payload);
        let len = (self.buf.len() - start - 4) as u32;
        self.buf[start..start + 4].copy_from_slice(&len.to_le_bytes());
        self.frame_ends.push_back(self.buf.len());
    }

    fn advance(&mut self, n: usize) {
        self.pos += n;
        while self.frame_ends.front().is_some_and(|&e| e <= self.pos) {
            self.frame_ends.pop_front();
        }
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= WRITE_COMPACT {
            self.buf.drain(..self.pos);
            for e in self.frame_ends.iter_mut() {
                *e -= self.pos;
            }
            self.pos = 0;
        }
    }

    /// Payload frames queued but not fully transmitted.
    fn unsent_frames(&self) -> usize {
        self.frame_ends.len()
    }
}

struct Conn {
    stream: TcpStream,
    kind: ConnKind,
    /// Resolved destination for outbound connections (keys `by_sock`).
    sock: Option<SocketAddr>,
    assembler: FrameAssembler,
    wr: WriteQueue,
    /// Nonblocking connect still in flight; completion shows as
    /// writability.
    connecting: bool,
    interest: Interest,
}

struct EventLoop {
    inner: Arc<BusInner>,
    poller: Poller,
    listener: TcpListener,
    wake_rx: UnixStream,
    tx: SyncSender<Inbound>,
    conns: HashMap<u64, Conn>,
    by_sock: HashMap<SocketAddr, u64>,
    /// Control-connection id → poll token.
    ctrl_tokens: HashMap<u64, u64>,
    next_token: u64,
    next_ctrl: u64,
    /// Inbound frames the (full) channel refused; retried before reading
    /// more, so backpressure reaches peers through TCP.
    undelivered: VecDeque<Inbound>,
    /// Frames awaiting an *established* connection, per destination
    /// socket; moved into the connection's write queue only once the
    /// nonblocking connect completes, so a failed connect loses nothing.
    staged: HashMap<SocketAddr, VecDeque<(NodeAddr, NodeAddr, Vec<u8>)>>,
    /// Reconnect state per destination socket: next attempt time and
    /// failed attempts so far.
    retry: HashMap<SocketAddr, (Instant, u32)>,
    scratch: Vec<u8>,
    running: bool,
}

impl EventLoop {
    fn run(&mut self) {
        let mut events = Vec::new();
        while self.running {
            if !self.drain_shared() {
                break; // shutdown requested
            }
            self.service_staged();
            self.redeliver();
            self.flush_dirty();
            // Publish the loop-private outbound backlog for TcpBus::flush.
            let pending = self.staged.values().map(|q| q.len()).sum::<usize>()
                + self
                    .conns
                    .values()
                    .map(|c| c.wr.unsent_frames())
                    .sum::<usize>();
            self.inner
                .pending_out
                .store(pending as u64, Ordering::Release);
            self.inner.loop_iters.fetch_add(1, Ordering::Release);
            let timeout = if self.undelivered.is_empty() {
                std::time::Duration::from_millis(50)
            } else {
                std::time::Duration::from_millis(2)
            };
            if self.poller.wait(&mut events, Some(timeout)).is_err() {
                break;
            }
            for ev in &events {
                match ev.token {
                    TOKEN_LISTENER => self.accept_all(),
                    TOKEN_WAKER => self.drain_waker(),
                    token => self.conn_event(token, ev.readable, ev.writable, ev.error),
                }
            }
        }
    }

    /// Moves frames from [`Shared`] into the loop's per-socket staging
    /// area (peer frames) and connection write queues (ctrl replies).
    /// Returns `false` on shutdown.
    fn drain_shared(&mut self) -> bool {
        let (out, ctrl_out) = {
            let mut sh = self.inner.shared.lock().expect("shared lock");
            if sh.shutdown {
                return false;
            }
            if sh.out.is_empty() && sh.ctrl_out.is_empty() {
                return true;
            }
            let out: Vec<_> = sh.out.drain().collect();
            (out, std::mem::take(&mut sh.ctrl_out))
        };
        for (sock, q) in out {
            let staged = self.staged.entry(sock).or_default();
            for frame in q {
                if staged.len() >= OUTBOUND_QUEUE {
                    self.inner
                        .dropped
                        .outbound_full
                        .fetch_add(1, Ordering::Relaxed);
                } else {
                    staged.push_back(frame);
                }
            }
        }
        for (id, frame) in ctrl_out {
            if let Some(&token) = self.ctrl_tokens.get(&id) {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.wr.push_raw_frame(&frame, true);
                }
            }
        }
        true
    }

    /// Moves staged frames onto established connections, opening (or
    /// re-opening, with backoff) connections for sockets that lack one.
    fn service_staged(&mut self) {
        let socks: Vec<SocketAddr> = self.staged.keys().copied().collect();
        let now = Instant::now();
        for sock in socks {
            let token = match self.by_sock.get(&sock).copied() {
                Some(t) => t,
                None => {
                    if self.retry.get(&sock).is_some_and(|&(at, _)| at > now) {
                        continue; // backing off
                    }
                    match self.open_peer_conn(sock) {
                        Some(t) => t,
                        None => {
                            self.connect_failed(sock);
                            continue;
                        }
                    }
                }
            };
            let conn = self.conns.get_mut(&token).expect("by_sock conn");
            if conn.connecting {
                continue; // frames move once the connect completes
            }
            let Some(mut q) = self.staged.remove(&sock) else {
                continue;
            };
            let mut overflowed = 0u64;
            for (from, to, payload) in q.drain(..) {
                if conn.wr.backlog() > WRITE_BUF_MAX {
                    overflowed += 1;
                } else {
                    conn.wr.push_peer_frame(from, to, &payload);
                }
            }
            if overflowed > 0 {
                self.inner
                    .dropped
                    .write_cap
                    .fetch_add(overflowed, Ordering::Relaxed);
            }
        }
    }

    /// Records a failed connect attempt toward `sock`: schedules the next
    /// attempt with exponential backoff, or — once the attempt budget is
    /// spent — drops the staged frames and resets, so a later send starts
    /// a fresh attempt cycle.
    fn connect_failed(&mut self, sock: SocketAddr) {
        let attempts = self.retry.get(&sock).map_or(0, |&(_, n)| n) + 1;
        if attempts >= CONNECT_ATTEMPTS {
            if let Some(q) = self.staged.remove(&sock) {
                self.inner
                    .dropped
                    .connect_exhausted
                    .fetch_add(q.len() as u64, Ordering::Relaxed);
            }
            self.retry.remove(&sock);
            return;
        }
        let backoff = CONNECT_BACKOFF
            .saturating_mul(1u32 << attempts.min(6))
            .min(CONNECT_BACKOFF_MAX);
        self.retry
            .insert(sock, (Instant::now() + backoff, attempts));
    }

    fn open_peer_conn(&mut self, sock: SocketAddr) -> Option<u64> {
        let stream = epoll_shim::connect_nonblocking(&sock).ok()?;
        let _ = stream.set_nodelay(true);
        let token = self.next_token;
        self.next_token += 1;
        let mut conn = Conn {
            stream,
            kind: ConnKind::PeerOut,
            sock: Some(sock),
            assembler: FrameAssembler::new(MAX_FRAME_LEN),
            wr: WriteQueue::default(),
            connecting: true,
            interest: Interest::BOTH,
        };
        conn.wr
            .push_raw_frame(&encode_frame(&Hello::Peer(self.inner.my_addr)), false);
        if self
            .poller
            .register(conn.stream.as_raw_fd(), token, Interest::BOTH)
            .is_err()
        {
            return None;
        }
        self.conns.insert(token, conn);
        self.by_sock.insert(sock, token);
        Some(token)
    }

    fn accept_all(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .register(stream.as_raw_fd(), token, Interest::READ)
                        .is_err()
                    {
                        continue;
                    }
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            kind: ConnKind::Pending,
                            sock: None,
                            assembler: FrameAssembler::new(MAX_FRAME_LEN),
                            wr: WriteQueue::default(),
                            connecting: false,
                            interest: Interest::READ,
                        },
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn drain_waker(&mut self) {
        loop {
            match (&self.wake_rx).read(&mut self.scratch) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn conn_event(&mut self, token: u64, readable: bool, writable: bool, error: bool) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.connecting && (writable || error) {
            match conn.stream.take_error() {
                Ok(None) if !error => {
                    conn.connecting = false;
                    if let Some(sock) = conn.sock {
                        self.retry.remove(&sock);
                    }
                }
                _ => {
                    self.close_conn(token);
                    return;
                }
            }
        }
        if readable {
            self.handle_readable(token);
        }
        if writable {
            self.flush_conn(token);
        } else if error && !readable {
            self.close_conn(token);
        }
    }

    fn handle_readable(&mut self, token: u64) {
        // Hold off reading peer data while the main thread is behind; the
        // kernel buffer fills and TCP flow control stalls the sender.
        let paused = self.undelivered.len() >= INBOUND_QUEUE;
        let mut frames = Vec::new();
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if paused && conn.kind == ConnKind::PeerIn {
                break;
            }
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    self.dispatch_frames(token, &mut frames);
                    self.close_conn(token);
                    return;
                }
                Ok(n) => {
                    let chunk = self.scratch[..n].to_vec();
                    if conn.assembler.feed(chunk, &mut frames).is_err() {
                        self.close_conn(token);
                        return;
                    }
                    if n < self.scratch.len() {
                        break; // socket buffer drained
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
        self.dispatch_frames(token, &mut frames);
    }

    fn dispatch_frames(&mut self, token: u64, frames: &mut Vec<FrameBuf>) {
        for fb in frames.drain(..) {
            let Some(kind) = self.conns.get(&token).map(|c| c.kind) else {
                return;
            };
            match kind {
                ConnKind::Pending => match decode_frame::<Hello>(&fb) {
                    Ok(Hello::Peer(_)) => {
                        self.conns.get_mut(&token).expect("conn").kind = ConnKind::PeerIn;
                    }
                    Ok(Hello::Ctrl) => {
                        let id = self.next_ctrl;
                        self.next_ctrl += 1;
                        self.conns.get_mut(&token).expect("conn").kind = ConnKind::CtrlIn(id);
                        self.ctrl_tokens.insert(id, token);
                        self.inner
                            .shared
                            .lock()
                            .expect("shared lock")
                            .ctrl_alive
                            .insert(id);
                    }
                    Err(_) => {
                        self.close_conn(token);
                        return;
                    }
                },
                ConnKind::PeerIn => {
                    let mut r = Reader::new(&fb);
                    let header = NodeAddr::decode(&mut r).and_then(|f| {
                        NodeAddr::decode(&mut r).map(|t| (f, t, fb.len() - r.remaining()))
                    });
                    let Ok((from, to, off)) = header else {
                        self.close_conn(token);
                        return;
                    };
                    self.push_inbound(Inbound::Peer {
                        from,
                        to,
                        frame: fb.slice(off),
                    });
                }
                ConnKind::CtrlIn(id) => {
                    self.push_inbound(Inbound::Ctrl {
                        conn: id,
                        frame: fb,
                    });
                }
                // Peers never send payload on a connection we initiated;
                // stray bytes are ignored (EOF still closes it).
                ConnKind::PeerOut => {}
            }
        }
    }

    fn push_inbound(&mut self, msg: Inbound) {
        if !self.undelivered.is_empty() {
            self.undelivered.push_back(msg);
            return;
        }
        match self.tx.try_send(msg) {
            Ok(()) => {}
            Err(TrySendError::Full(m)) => self.undelivered.push_back(m),
            Err(TrySendError::Disconnected(_)) => self.running = false,
        }
    }

    fn redeliver(&mut self) {
        while let Some(m) = self.undelivered.pop_front() {
            match self.tx.try_send(m) {
                Ok(()) => {}
                Err(TrySendError::Full(m)) => {
                    self.undelivered.push_front(m);
                    break;
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.running = false;
                    break;
                }
            }
        }
    }

    /// Flushes every connection with staged bytes and reconciles poll
    /// interests.
    fn flush_dirty(&mut self) {
        let dirty: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.wr.has_pending() || c.connecting != c.interest.writable)
            .map(|(t, _)| *t)
            .collect();
        for token in dirty {
            self.flush_conn(token);
        }
    }

    fn flush_conn(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.connecting || !conn.wr.has_pending() {
                break;
            }
            match conn.stream.write(&conn.wr.buf[conn.wr.pos..]) {
                Ok(0) => {
                    self.close_conn(token);
                    return;
                }
                Ok(n) => conn.wr.advance(n),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
        self.update_interest(token);
    }

    fn update_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let want = Interest {
            readable: true,
            writable: conn.connecting || conn.wr.has_pending(),
        };
        if want != conn.interest
            && self
                .poller
                .reregister(conn.stream.as_raw_fd(), token, want)
                .is_ok()
        {
            conn.interest = want;
        }
    }

    fn close_conn(&mut self, token: u64) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        let unsent = conn.wr.unsent_frames() as u64;
        if unsent > 0 {
            self.inner
                .dropped
                .conn_closed
                .fetch_add(unsent, Ordering::Relaxed);
        }
        if let Some(sock) = conn.sock {
            self.by_sock.remove(&sock);
            if conn.connecting {
                // The connect itself failed: staged frames are intact —
                // schedule a retry instead of losing them.
                self.connect_failed(sock);
            }
        }
        if let ConnKind::CtrlIn(id) = conn.kind {
            self.ctrl_tokens.remove(&id);
            self.inner
                .shared
                .lock()
                .expect("shared lock")
                .ctrl_alive
                .remove(&id);
            self.push_inbound(Inbound::CtrlClosed { conn: id });
        }
    }
}

/// [`Transport`] over a [`TcpBus`]: encodes messages into frames on the
/// calling (main) thread, and keeps a wall-clock timer wheel the daemon's
/// event loop drains with [`TcpTransport::due_timers`].
pub struct TcpTransport<M> {
    bus: TcpBus,
    epoch: Instant,
    /// Authoritative deadline per token; the heap below may hold stale
    /// duplicates that are skipped on pop (lazy re-arm semantics).
    deadlines: HashMap<TimerToken, SimTime>,
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(SimTime, TimerToken)>>,
    _msg: std::marker::PhantomData<fn(M)>,
}

impl<M: Wire> TcpTransport<M> {
    /// Wraps a bus; the transport's clock starts at zero now.
    pub fn new(bus: TcpBus) -> Self {
        TcpTransport {
            bus,
            epoch: Instant::now(),
            deadlines: HashMap::new(),
            heap: std::collections::BinaryHeap::new(),
            _msg: std::marker::PhantomData,
        }
    }

    /// The underlying bus.
    pub fn bus(&self) -> &TcpBus {
        &self.bus
    }

    /// Tokens whose deadline has passed, each delivered once.
    pub fn due_timers(&mut self) -> Vec<TimerToken> {
        let now = self.now();
        let mut due = Vec::new();
        while let Some(std::cmp::Reverse((at, token))) = self.heap.peek().copied() {
            if at > now {
                break;
            }
            self.heap.pop();
            // Only fire if this entry is the token's live deadline.
            if self.deadlines.get(&token) == Some(&at) {
                self.deadlines.remove(&token);
                due.push(token);
            }
        }
        due
    }

    /// The earliest live deadline, if any — lets the event loop sleep
    /// exactly until the next timer.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.deadlines.values().min().copied()
    }
}

impl<M: Wire> Transport<M> for TcpTransport<M> {
    fn send(&mut self, to: NodeAddr, msg: M) {
        self.bus.send_to(to, encode_frame(&msg));
    }

    fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }

    fn set_timer(&mut self, delay: SimDuration, token: TimerToken) {
        let at = SimTime::from_micros(self.now().as_micros() + delay.as_micros());
        self.deadlines.insert(token, at);
        self.heap.push(std::cmp::Reverse((at, token)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{read_frame, write_frame};
    use std::time::Duration;

    /// A resolver over a mutable map, so buses can bind port 0 and
    /// register their ephemeral addresses afterwards.
    fn dynamic_resolver() -> (Resolver, Arc<Mutex<HashMap<u32, SocketAddr>>>) {
        let map: Arc<Mutex<HashMap<u32, SocketAddr>>> = Arc::new(Mutex::new(HashMap::new()));
        let inner = Arc::clone(&map);
        let resolver: Resolver =
            Arc::new(move |addr: NodeAddr| inner.lock().unwrap().get(&addr.0).copied());
        (resolver, map)
    }

    fn start_bus(
        addr: NodeAddr,
        resolver: &Resolver,
        map: &Arc<Mutex<HashMap<u32, SocketAddr>>>,
    ) -> (TcpBus, Receiver<Inbound>) {
        let (bus, rx) =
            TcpBus::start("127.0.0.1:0".parse().unwrap(), addr, Arc::clone(resolver)).unwrap();
        map.lock().unwrap().insert(addr.0, bus.local_addr());
        (bus, rx)
    }

    #[test]
    fn frames_flow_between_two_buses() {
        let (resolver, map) = dynamic_resolver();
        let (bus_a, _rx_a) = start_bus(NodeAddr(0), &resolver, &map);
        let (bus_b, rx_b) = start_bus(NodeAddr(1), &resolver, &map);

        let mut tr: TcpTransport<u64> = TcpTransport::new(bus_a);
        tr.send(NodeAddr(1), 4242);
        match rx_b.recv_timeout(Duration::from_secs(5)).unwrap() {
            Inbound::Peer { from, to, frame } => {
                assert_eq!(from, NodeAddr(0));
                assert_eq!(to, NodeAddr(1));
                assert_eq!(decode_frame::<u64>(&frame).unwrap(), 4242);
            }
            other => panic!("unexpected inbound: {other:?}"),
        }
        tr.bus().shutdown();
        bus_b.shutdown();
    }

    #[test]
    fn frame_runs_arrive_in_order() {
        let (resolver, map) = dynamic_resolver();
        let (bus_a, _rx_a) = start_bus(NodeAddr(0), &resolver, &map);
        let (bus_b, rx_b) = start_bus(NodeAddr(1), &resolver, &map);

        // A burst far larger than one frame per wakeup: exercises write
        // coalescing on A and multi-frame reads on B.
        for i in 0..500u64 {
            bus_a.send_to(NodeAddr(1), encode_frame(&i));
        }
        for expect in 0..500u64 {
            match rx_b.recv_timeout(Duration::from_secs(5)).unwrap() {
                Inbound::Peer { frame, .. } => {
                    assert_eq!(decode_frame::<u64>(&frame).unwrap(), expect);
                }
                other => panic!("unexpected inbound: {other:?}"),
            }
        }
        assert_eq!(bus_a.dropped_frames(), 0);
        bus_a.shutdown();
        bus_b.shutdown();
    }

    #[test]
    fn packed_members_demux_by_destination() {
        let (resolver, map) = dynamic_resolver();
        let (bus_a, _rx_a) = start_bus(NodeAddr(0), &resolver, &map);
        let (bus_b, rx_b) = start_bus(NodeAddr(10), &resolver, &map);
        // Bus B answers for members 10 and 11.
        let b_sock = bus_b.local_addr();
        map.lock().unwrap().insert(11, b_sock);

        // Bus A hosts member 7 alongside its own address 0.
        bus_a.send_from(NodeAddr(7), NodeAddr(11), encode_frame(&1u64));
        bus_a.send_from(NodeAddr(0), NodeAddr(10), encode_frame(&2u64));

        let mut got = Vec::new();
        for _ in 0..2 {
            match rx_b.recv_timeout(Duration::from_secs(5)).unwrap() {
                Inbound::Peer { from, to, frame } => {
                    got.push((from.0, to.0, decode_frame::<u64>(&frame).unwrap()));
                }
                other => panic!("unexpected inbound: {other:?}"),
            }
        }
        got.sort_unstable();
        assert_eq!(got, vec![(0, 10, 2), (7, 11, 1)]);
        bus_a.shutdown();
        bus_b.shutdown();
    }

    #[test]
    fn ctrl_connections_round_trip_replies() {
        let resolver: Resolver = Arc::new(|_| None);
        let (bus, rx) =
            TcpBus::start("127.0.0.1:0".parse().unwrap(), NodeAddr(0), resolver).unwrap();

        let mut client = TcpStream::connect(bus.local_addr()).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        write_frame(&mut client, &encode_frame(&Hello::Ctrl)).unwrap();
        write_frame(&mut client, &encode_frame(&77u64)).unwrap();

        let conn = match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            Inbound::Ctrl { conn, frame } => {
                assert_eq!(decode_frame::<u64>(&frame).unwrap(), 77);
                conn
            }
            other => panic!("unexpected inbound: {other:?}"),
        };
        bus.send_ctrl(conn, &encode_frame(&88u64)).unwrap();
        let reply = read_frame(&mut client, MAX_FRAME_LEN).unwrap().unwrap();
        assert_eq!(decode_frame::<u64>(&reply).unwrap(), 88);

        // Closing the client surfaces CtrlClosed and invalidates the id.
        drop(client);
        loop {
            match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
                Inbound::CtrlClosed { conn: closed } => {
                    assert_eq!(closed, conn);
                    break;
                }
                _ => continue,
            }
        }
        assert!(bus.send_ctrl(conn, &encode_frame(&0u64)).is_err());
        bus.shutdown();
    }

    #[test]
    fn frames_sent_before_peer_listens_survive_reconnect() {
        let (resolver, map) = dynamic_resolver();
        let (bus_a, _rx_a) = start_bus(NodeAddr(0), &resolver, &map);
        // Reserve a concrete port for peer 1, then free it so the first
        // connect attempt is refused.
        let sock = {
            let placeholder = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            placeholder.local_addr().unwrap()
        };
        map.lock().unwrap().insert(1, sock);
        bus_a.send_to(NodeAddr(1), encode_frame(&7u64));

        // Now the peer actually appears; the staged frame must arrive via
        // the reconnect backoff, not be dropped.
        let (bus_b, rx_b) = TcpBus::start(sock, NodeAddr(1), Arc::clone(&resolver)).unwrap();
        match rx_b.recv_timeout(Duration::from_secs(20)).unwrap() {
            Inbound::Peer { from, to, frame } => {
                assert_eq!(from, NodeAddr(0));
                assert_eq!(to, NodeAddr(1));
                assert_eq!(decode_frame::<u64>(&frame).unwrap(), 7);
            }
            other => panic!("unexpected inbound: {other:?}"),
        }
        assert_eq!(bus_a.dropped_frames(), 0);
        bus_a.shutdown();
        bus_b.shutdown();
    }

    #[test]
    fn unresolvable_destination_counts_a_drop() {
        let resolver: Resolver = Arc::new(|_| None);
        let (bus, _rx) =
            TcpBus::start("127.0.0.1:0".parse().unwrap(), NodeAddr(0), resolver).unwrap();
        bus.send_to(NodeAddr(99), encode_frame(&1u64));
        assert_eq!(bus.dropped_frames(), 1);
        let stats = bus.drop_stats();
        assert_eq!(stats.unresolvable, 1, "cause attributed: {stats:?}");
        assert_eq!(stats.total(), 1);
        bus.shutdown();
    }

    #[test]
    fn timer_wheel_rearms_and_fires_in_order() {
        let resolver: Resolver = Arc::new(|_| None);
        let (bus, _rx) =
            TcpBus::start("127.0.0.1:0".parse().unwrap(), NodeAddr(0), resolver).unwrap();
        let mut tr: TcpTransport<u64> = TcpTransport::new(bus);

        tr.set_timer(SimDuration::from_micros(0), TimerToken(1));
        tr.set_timer(SimDuration::from_secs(3600), TimerToken(2));
        // Re-arm token 1 far in the future: the old deadline must not fire.
        tr.set_timer(SimDuration::from_secs(3600), TimerToken(1));
        assert!(tr.due_timers().is_empty());

        tr.set_timer(SimDuration::from_micros(0), TimerToken(2));
        // Bounded wait for the wall clock to pass the deadline — no sleeps.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let due = tr.due_timers();
            if !due.is_empty() {
                assert_eq!(due, vec![TimerToken(2)]);
                break;
            }
            assert!(Instant::now() < deadline, "timer never fired");
            std::thread::yield_now();
        }
        assert!(tr.next_deadline().is_some(), "token 1 still pending");
        tr.bus().shutdown();
    }
}
