//! [`Wire`] implementations for primitives and for the cross-node message
//! surface owned by `simnet` / `pastry` / `scribe` / `rbay-query`.
//!
//! Tag tables live in DESIGN.md §13. All integers are varints unless the
//! value is an identifier with a fixed width (`NodeId` is 16 bytes LE);
//! floats are 8-byte LE bit patterns with NaN canonicalized; collections
//! are varint-length-prefixed with the length checked against remaining
//! input before any allocation.

use crate::codec::{emit, Reader, Wire, WireError};
use pastry::{NodeId, NodeInfo, PastryMsg};
use rbay_query::{AttrValue, CmpOp, FromClause, Predicate, Query, SortDir};
use scribe::{AggValue, ScribeMsg, TopicId};
use simnet::{NodeAddr, SimDuration, SimTime, SiteId};

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

impl Wire for u8 {
    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.byte()
    }
}

impl Wire for u16 {
    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        emit::varint_u64(out, *self as u64);
    }
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.varint_u16()
    }
}

impl Wire for u32 {
    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        emit::varint_u64(out, *self as u64);
    }
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.varint_u32()
    }
}

impl Wire for u64 {
    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        emit::varint_u64(out, *self);
    }
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.varint_u64()
    }
}

impl Wire for u128 {
    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        emit::u128(out, *self);
    }
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.u128()
    }
}

impl Wire for bool {
    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { what: "bool", tag }),
        }
    }
}

impl Wire for f64 {
    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        emit::f64(out, *self);
    }
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.f64()
    }
}

impl Wire for String {
    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        emit::string(out, self);
    }
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.string()
    }
}

impl<T: Wire> Wire for Option<T> {
    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode_into(out);
            }
        }
    }
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::BadTag {
                what: "Option",
                tag,
            }),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        emit::varint_u64(out, self.len() as u64);
        for v in self {
            v.encode_into(out);
        }
    }
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.seq_len("Vec", 1)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// simnet identifiers and time
// ---------------------------------------------------------------------------

impl Wire for NodeAddr {
    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        emit::varint_u64(out, self.0 as u64);
    }
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(NodeAddr(r.varint_u32()?))
    }
}

impl Wire for SiteId {
    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        emit::varint_u64(out, self.0 as u64);
    }
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SiteId(r.varint_u16()?))
    }
}

impl Wire for SimTime {
    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        emit::varint_u64(out, self.as_micros());
    }
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SimTime::from_micros(r.varint_u64()?))
    }
}

impl Wire for SimDuration {
    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        emit::varint_u64(out, self.as_micros());
    }
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SimDuration::from_micros(r.varint_u64()?))
    }
}

// ---------------------------------------------------------------------------
// pastry
// ---------------------------------------------------------------------------

impl Wire for NodeId {
    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        emit::u128(out, self.0);
    }
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(NodeId(r.u128()?))
    }
}

impl Wire for NodeInfo {
    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.id.encode_into(out);
        self.addr.encode_into(out);
        self.site.encode_into(out);
    }
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(NodeInfo {
            id: NodeId::decode(r)?,
            addr: NodeAddr::decode(r)?,
            site: SiteId::decode(r)?,
        })
    }
}

/// Tag bytes for [`PastryMsg`] (DESIGN.md §13 table).
mod pastry_tag {
    pub const ROUTE: u8 = 0;
    pub const JOIN: u8 = 1;
    pub const JOIN_REPLY: u8 = 2;
    pub const ANNOUNCE: u8 = 3;
    pub const ROW_REQUEST: u8 = 4;
    pub const ROW_REPLY: u8 = 5;
    pub const LEAF_REPAIR_REQUEST: u8 = 6;
    pub const LEAF_REPAIR_REPLY: u8 = 7;
    pub const DIRECT: u8 = 8;
}

impl<A: Wire> Wire for PastryMsg<A> {
    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            PastryMsg::Route {
                key,
                payload,
                hops,
                scope,
            } => {
                out.push(pastry_tag::ROUTE);
                key.encode_into(out);
                payload.encode_into(out);
                hops.encode_into(out);
                scope.encode_into(out);
            }
            PastryMsg::Join { joiner, rows, hops } => {
                out.push(pastry_tag::JOIN);
                joiner.encode_into(out);
                rows.encode_into(out);
                hops.encode_into(out);
            }
            PastryMsg::JoinReply { rows, leaves, root } => {
                out.push(pastry_tag::JOIN_REPLY);
                rows.encode_into(out);
                leaves.encode_into(out);
                root.encode_into(out);
            }
            PastryMsg::Announce { info } => {
                out.push(pastry_tag::ANNOUNCE);
                info.encode_into(out);
            }
            PastryMsg::RowRequest { row } => {
                out.push(pastry_tag::ROW_REQUEST);
                row.encode_into(out);
            }
            PastryMsg::RowReply { row, entries } => {
                out.push(pastry_tag::ROW_REPLY);
                row.encode_into(out);
                entries.encode_into(out);
            }
            PastryMsg::LeafRepairRequest => out.push(pastry_tag::LEAF_REPAIR_REQUEST),
            PastryMsg::LeafRepairReply { leaves } => {
                out.push(pastry_tag::LEAF_REPAIR_REPLY);
                leaves.encode_into(out);
            }
            PastryMsg::Direct(a) => {
                out.push(pastry_tag::DIRECT);
                a.encode_into(out);
            }
        }
    }

    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let tag = r.byte()?;
        Ok(match tag {
            pastry_tag::ROUTE => PastryMsg::Route {
                key: NodeId::decode(r)?,
                payload: A::decode(r)?,
                hops: u16::decode(r)?,
                scope: Option::<SiteId>::decode(r)?,
            },
            pastry_tag::JOIN => PastryMsg::Join {
                joiner: NodeInfo::decode(r)?,
                rows: Vec::<Vec<NodeInfo>>::decode(r)?,
                hops: u16::decode(r)?,
            },
            pastry_tag::JOIN_REPLY => PastryMsg::JoinReply {
                rows: Vec::<Vec<NodeInfo>>::decode(r)?,
                leaves: Vec::<NodeInfo>::decode(r)?,
                root: NodeInfo::decode(r)?,
            },
            pastry_tag::ANNOUNCE => PastryMsg::Announce {
                info: NodeInfo::decode(r)?,
            },
            pastry_tag::ROW_REQUEST => PastryMsg::RowRequest {
                row: u8::decode(r)?,
            },
            pastry_tag::ROW_REPLY => PastryMsg::RowReply {
                row: u8::decode(r)?,
                entries: Vec::<NodeInfo>::decode(r)?,
            },
            pastry_tag::LEAF_REPAIR_REQUEST => PastryMsg::LeafRepairRequest,
            pastry_tag::LEAF_REPAIR_REPLY => PastryMsg::LeafRepairReply {
                leaves: Vec::<NodeInfo>::decode(r)?,
            },
            pastry_tag::DIRECT => PastryMsg::Direct(A::decode(r)?),
            tag => {
                return Err(WireError::BadTag {
                    what: "PastryMsg",
                    tag,
                })
            }
        })
    }
}

// ---------------------------------------------------------------------------
// scribe
// ---------------------------------------------------------------------------

impl Wire for TopicId {
    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
    }
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(TopicId(NodeId::decode(r)?))
    }
}

/// Tag bytes for [`AggValue`].
mod agg_tag {
    pub const COUNT: u8 = 0;
    pub const SUM: u8 = 1;
    pub const MIN: u8 = 2;
    pub const MAX: u8 = 3;
    pub const MEAN: u8 = 4;
    pub const MULTI: u8 = 5;
}

impl Wire for AggValue {
    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            AggValue::Count(n) => {
                out.push(agg_tag::COUNT);
                n.encode_into(out);
            }
            AggValue::Sum(v) => {
                out.push(agg_tag::SUM);
                v.encode_into(out);
            }
            AggValue::Min(v) => {
                out.push(agg_tag::MIN);
                v.encode_into(out);
            }
            AggValue::Max(v) => {
                out.push(agg_tag::MAX);
                v.encode_into(out);
            }
            AggValue::Mean { sum, count } => {
                out.push(agg_tag::MEAN);
                sum.encode_into(out);
                count.encode_into(out);
            }
            AggValue::Multi(xs) => {
                out.push(agg_tag::MULTI);
                xs.encode_into(out);
            }
        }
    }

    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let tag = r.byte()?;
        Ok(match tag {
            agg_tag::COUNT => AggValue::Count(u64::decode(r)?),
            agg_tag::SUM => AggValue::Sum(f64::decode(r)?),
            agg_tag::MIN => AggValue::Min(f64::decode(r)?),
            agg_tag::MAX => AggValue::Max(f64::decode(r)?),
            agg_tag::MEAN => AggValue::Mean {
                sum: f64::decode(r)?,
                count: u64::decode(r)?,
            },
            agg_tag::MULTI => {
                // The only recursive wire value: guard the nesting depth so
                // a hostile frame cannot overflow the decode stack.
                r.enter()?;
                let xs = Vec::<AggValue>::decode(r)?;
                r.exit();
                AggValue::Multi(xs)
            }
            tag => {
                return Err(WireError::BadTag {
                    what: "AggValue",
                    tag,
                })
            }
        })
    }
}

/// Tag bytes for [`ScribeMsg`].
mod scribe_tag {
    pub const JOIN: u8 = 0;
    pub const JOIN_ACK: u8 = 1;
    pub const LEAVE: u8 = 2;
    pub const MULTICAST_REQ: u8 = 3;
    pub const MULTICAST_DATA: u8 = 4;
    pub const ANYCAST: u8 = 5;
    pub const ANYCAST_STEP: u8 = 6;
    pub const ANYCAST_RESULT: u8 = 7;
    pub const PROBE_ROOT: u8 = 8;
    pub const PROBE_REPLY: u8 = 9;
    pub const AGG_UPDATE: u8 = 10;
    pub const NOT_CHILD: u8 = 11;
    pub const APP_DIRECT: u8 = 12;
    pub const REPLICA_SYNC: u8 = 13;
}

impl<P: Wire> Wire for ScribeMsg<P> {
    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            ScribeMsg::Join {
                topic,
                scope,
                child,
            } => {
                out.push(scribe_tag::JOIN);
                topic.encode_into(out);
                scope.encode_into(out);
                child.encode_into(out);
            }
            ScribeMsg::JoinAck { topic } => {
                out.push(scribe_tag::JOIN_ACK);
                topic.encode_into(out);
            }
            ScribeMsg::Leave { topic, child } => {
                out.push(scribe_tag::LEAVE);
                topic.encode_into(out);
                child.encode_into(out);
            }
            ScribeMsg::MulticastReq {
                topic,
                scope,
                payload,
            } => {
                out.push(scribe_tag::MULTICAST_REQ);
                topic.encode_into(out);
                scope.encode_into(out);
                payload.encode_into(out);
            }
            ScribeMsg::MulticastData { topic, payload } => {
                out.push(scribe_tag::MULTICAST_DATA);
                topic.encode_into(out);
                payload.encode_into(out);
            }
            ScribeMsg::Anycast {
                topic,
                scope,
                payload,
                origin,
            } => {
                out.push(scribe_tag::ANYCAST);
                topic.encode_into(out);
                scope.encode_into(out);
                payload.encode_into(out);
                origin.encode_into(out);
            }
            ScribeMsg::AnycastStep {
                topic,
                payload,
                origin,
                visited,
                stack,
            } => {
                out.push(scribe_tag::ANYCAST_STEP);
                topic.encode_into(out);
                payload.encode_into(out);
                origin.encode_into(out);
                visited.encode_into(out);
                stack.encode_into(out);
            }
            ScribeMsg::AnycastResult {
                topic,
                payload,
                satisfied,
            } => {
                out.push(scribe_tag::ANYCAST_RESULT);
                topic.encode_into(out);
                payload.encode_into(out);
                satisfied.encode_into(out);
            }
            ScribeMsg::ProbeRoot {
                topic,
                scope,
                payload,
                origin,
            } => {
                out.push(scribe_tag::PROBE_ROOT);
                topic.encode_into(out);
                scope.encode_into(out);
                payload.encode_into(out);
                origin.encode_into(out);
            }
            ScribeMsg::ProbeReply {
                topic,
                payload,
                agg,
                exists,
            } => {
                out.push(scribe_tag::PROBE_REPLY);
                topic.encode_into(out);
                payload.encode_into(out);
                agg.encode_into(out);
                exists.encode_into(out);
            }
            ScribeMsg::AggUpdate { topic, value } => {
                out.push(scribe_tag::AGG_UPDATE);
                topic.encode_into(out);
                value.encode_into(out);
            }
            ScribeMsg::NotChild { topic } => {
                out.push(scribe_tag::NOT_CHILD);
                topic.encode_into(out);
            }
            ScribeMsg::AppDirect(p) => {
                out.push(scribe_tag::APP_DIRECT);
                p.encode_into(out);
            }
            ScribeMsg::ReplicaSync {
                topic,
                scope,
                children,
                agg,
                subscribers,
            } => {
                out.push(scribe_tag::REPLICA_SYNC);
                topic.encode_into(out);
                scope.encode_into(out);
                children.encode_into(out);
                agg.encode_into(out);
                subscribers.encode_into(out);
            }
        }
    }

    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let tag = r.byte()?;
        Ok(match tag {
            scribe_tag::JOIN => ScribeMsg::Join {
                topic: TopicId::decode(r)?,
                scope: Option::<SiteId>::decode(r)?,
                child: NodeInfo::decode(r)?,
            },
            scribe_tag::JOIN_ACK => ScribeMsg::JoinAck {
                topic: TopicId::decode(r)?,
            },
            scribe_tag::LEAVE => ScribeMsg::Leave {
                topic: TopicId::decode(r)?,
                child: NodeAddr::decode(r)?,
            },
            scribe_tag::MULTICAST_REQ => ScribeMsg::MulticastReq {
                topic: TopicId::decode(r)?,
                scope: Option::<SiteId>::decode(r)?,
                payload: P::decode(r)?,
            },
            scribe_tag::MULTICAST_DATA => ScribeMsg::MulticastData {
                topic: TopicId::decode(r)?,
                payload: P::decode(r)?,
            },
            scribe_tag::ANYCAST => ScribeMsg::Anycast {
                topic: TopicId::decode(r)?,
                scope: Option::<SiteId>::decode(r)?,
                payload: P::decode(r)?,
                origin: NodeAddr::decode(r)?,
            },
            scribe_tag::ANYCAST_STEP => ScribeMsg::AnycastStep {
                topic: TopicId::decode(r)?,
                payload: P::decode(r)?,
                origin: NodeAddr::decode(r)?,
                visited: Vec::<NodeAddr>::decode(r)?,
                stack: Vec::<NodeAddr>::decode(r)?,
            },
            scribe_tag::ANYCAST_RESULT => ScribeMsg::AnycastResult {
                topic: TopicId::decode(r)?,
                payload: P::decode(r)?,
                satisfied: bool::decode(r)?,
            },
            scribe_tag::PROBE_ROOT => ScribeMsg::ProbeRoot {
                topic: TopicId::decode(r)?,
                scope: Option::<SiteId>::decode(r)?,
                payload: P::decode(r)?,
                origin: NodeAddr::decode(r)?,
            },
            scribe_tag::PROBE_REPLY => ScribeMsg::ProbeReply {
                topic: TopicId::decode(r)?,
                payload: P::decode(r)?,
                agg: Option::<AggValue>::decode(r)?,
                exists: bool::decode(r)?,
            },
            scribe_tag::AGG_UPDATE => ScribeMsg::AggUpdate {
                topic: TopicId::decode(r)?,
                value: AggValue::decode(r)?,
            },
            scribe_tag::NOT_CHILD => ScribeMsg::NotChild {
                topic: TopicId::decode(r)?,
            },
            scribe_tag::APP_DIRECT => ScribeMsg::AppDirect(P::decode(r)?),
            scribe_tag::REPLICA_SYNC => ScribeMsg::ReplicaSync {
                topic: TopicId::decode(r)?,
                scope: Option::<SiteId>::decode(r)?,
                children: Vec::<NodeAddr>::decode(r)?,
                agg: Option::<AggValue>::decode(r)?,
                subscribers: u64::decode(r)?,
            },
            tag => {
                return Err(WireError::BadTag {
                    what: "ScribeMsg",
                    tag,
                })
            }
        })
    }
}

// ---------------------------------------------------------------------------
// rbay-query
// ---------------------------------------------------------------------------

/// Tag bytes for [`AttrValue`].
mod attr_tag {
    pub const BOOL: u8 = 0;
    pub const NUM: u8 = 1;
    pub const STR: u8 = 2;
}

impl Wire for AttrValue {
    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            AttrValue::Bool(b) => {
                out.push(attr_tag::BOOL);
                b.encode_into(out);
            }
            AttrValue::Num(n) => {
                out.push(attr_tag::NUM);
                n.encode_into(out);
            }
            AttrValue::Str(s) => {
                out.push(attr_tag::STR);
                s.encode_into(out);
            }
        }
    }
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let tag = r.byte()?;
        Ok(match tag {
            attr_tag::BOOL => AttrValue::Bool(bool::decode(r)?),
            attr_tag::NUM => AttrValue::Num(f64::decode(r)?),
            attr_tag::STR => AttrValue::Str(String::decode(r)?),
            tag => {
                return Err(WireError::BadTag {
                    what: "AttrValue",
                    tag,
                })
            }
        })
    }
}

impl Wire for CmpOp {
    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(match self {
            CmpOp::Eq => 0,
            CmpOp::Ne => 1,
            CmpOp::Lt => 2,
            CmpOp::Le => 3,
            CmpOp::Gt => 4,
            CmpOp::Ge => 5,
        });
    }
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.byte()? {
            0 => CmpOp::Eq,
            1 => CmpOp::Ne,
            2 => CmpOp::Lt,
            3 => CmpOp::Le,
            4 => CmpOp::Gt,
            5 => CmpOp::Ge,
            tag => return Err(WireError::BadTag { what: "CmpOp", tag }),
        })
    }
}

impl Wire for SortDir {
    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(match self {
            SortDir::Asc => 0,
            SortDir::Desc => 1,
        });
    }
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.byte()? {
            0 => SortDir::Asc,
            1 => SortDir::Desc,
            tag => {
                return Err(WireError::BadTag {
                    what: "SortDir",
                    tag,
                })
            }
        })
    }
}

impl Wire for Predicate {
    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.attr.encode_into(out);
        self.op.encode_into(out);
        self.value.encode_into(out);
    }
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Predicate {
            attr: String::decode(r)?,
            op: CmpOp::decode(r)?,
            value: AttrValue::decode(r)?,
        })
    }
}

impl Wire for FromClause {
    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            FromClause::AllSites => out.push(0),
            FromClause::Sites(names) => {
                out.push(1);
                names.encode_into(out);
            }
        }
    }
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.byte()? {
            0 => FromClause::AllSites,
            1 => FromClause::Sites(Vec::<String>::decode(r)?),
            tag => {
                return Err(WireError::BadTag {
                    what: "FromClause",
                    tag,
                })
            }
        })
    }
}

impl Wire for Query {
    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.k.encode_into(out);
        self.from.encode_into(out);
        self.predicates.encode_into(out);
        match &self.order_by {
            None => out.push(0),
            Some((attr, dir)) => {
                out.push(1);
                attr.encode_into(out);
                dir.encode_into(out);
            }
        }
    }
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let k = u32::decode(r)?;
        let from = FromClause::decode(r)?;
        let predicates = Vec::<Predicate>::decode(r)?;
        let order_by = match r.byte()? {
            0 => None,
            1 => Some((String::decode(r)?, SortDir::decode(r)?)),
            tag => {
                return Err(WireError::BadTag {
                    what: "Query.order_by",
                    tag,
                })
            }
        };
        Ok(Query {
            k,
            from,
            predicates,
            order_by,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_frame, encode_frame, MAX_DEPTH};

    fn info(n: u32) -> NodeInfo {
        NodeInfo {
            id: NodeId::hash_of(format!("n{n}").as_bytes()),
            addr: NodeAddr(n),
            site: SiteId((n % 4) as u16),
        }
    }

    #[test]
    fn pastry_msg_round_trips() {
        let msgs: Vec<PastryMsg<u64>> = vec![
            PastryMsg::Route {
                key: NodeId(42),
                payload: 7,
                hops: 3,
                scope: Some(SiteId(2)),
            },
            PastryMsg::Join {
                joiner: info(9),
                rows: vec![vec![info(1), info(2)], vec![]],
                hops: 1,
            },
            PastryMsg::LeafRepairRequest,
            PastryMsg::Direct(u64::MAX),
        ];
        for m in &msgs {
            let bytes = encode_frame(m);
            let back: PastryMsg<u64> = decode_frame(&bytes).unwrap();
            assert_eq!(format!("{m:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn scribe_msg_round_trips() {
        let m: ScribeMsg<String> = ScribeMsg::AnycastStep {
            topic: TopicId::new("GPU=true", "rbay"),
            payload: "payload".into(),
            origin: NodeAddr(3),
            visited: vec![NodeAddr(1), NodeAddr(2)],
            stack: vec![NodeAddr(9)],
        };
        let back: ScribeMsg<String> = decode_frame(&encode_frame(&m)).unwrap();
        assert_eq!(format!("{m:?}"), format!("{back:?}"));
    }

    #[test]
    fn agg_value_round_trips_and_depth_limits() {
        let v = AggValue::Multi(vec![
            AggValue::Count(4),
            AggValue::Mean { sum: 1.5, count: 3 },
            AggValue::Multi(vec![AggValue::Min(-2.0), AggValue::Max(9.0)]),
        ]);
        assert_eq!(decode_frame::<AggValue>(&encode_frame(&v)).unwrap(), v);

        // Hostile nesting: MAX_DEPTH+1 nested Multi([..]) wrappers.
        let mut deep = AggValue::Count(1);
        for _ in 0..=MAX_DEPTH {
            deep = AggValue::Multi(vec![deep]);
        }
        assert_eq!(
            decode_frame::<AggValue>(&encode_frame(&deep)).unwrap_err(),
            WireError::TooDeep
        );
    }

    #[test]
    fn query_round_trips() {
        let q = Query {
            k: 5,
            from: FromClause::Sites(vec!["Virginia".into(), "Tokyo".into()]),
            predicates: vec![Predicate {
                attr: "GPU".into(),
                op: CmpOp::Eq,
                value: AttrValue::Bool(true),
            }],
            order_by: Some(("CPU_utilization".into(), SortDir::Desc)),
        };
        assert_eq!(decode_frame::<Query>(&encode_frame(&q)).unwrap(), q);
    }

    #[test]
    fn truncated_frames_error_not_panic() {
        let m: PastryMsg<AggValue> = PastryMsg::Route {
            key: NodeId(7),
            payload: AggValue::Multi(vec![AggValue::Count(1), AggValue::Sum(2.0)]),
            hops: 2,
            scope: None,
        };
        let bytes = encode_frame(&m);
        for cut in 0..bytes.len() {
            assert!(decode_frame::<PastryMsg<AggValue>>(&bytes[..cut]).is_err());
        }
    }
}
