//! Zero-copy inbound frame buffers.
//!
//! The event-loop bus reads whole socket buffers in one `read(2)` and then
//! carves them into frames without copying: each [`FrameBuf`] is a
//! `(Arc<Vec<u8>>, start, end)` view into the shared read buffer, so a
//! single 64 KiB read that contained forty frames allocates once, not
//! forty times. Only an *incomplete* frame tail — the bytes of a frame
//! whose remainder arrives in the next `read` — is ever copied, by the
//! [`FrameAssembler`] that stitches reads back into frame runs.

use std::sync::Arc;

/// A cheaply cloneable byte-slice view into a shared read buffer.
///
/// Dereferences to `[u8]`, so it drops into any API that takes `&[u8]`
/// (notably [`crate::decode_frame`] and [`crate::Reader`]).
#[derive(Clone)]
pub struct FrameBuf {
    buf: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl FrameBuf {
    /// Wraps an owned vector as a single frame (used at copy boundaries
    /// and in tests).
    pub fn from_vec(v: Vec<u8>) -> FrameBuf {
        let end = v.len();
        FrameBuf {
            buf: Arc::new(v),
            start: 0,
            end,
        }
    }

    /// A sub-view starting `offset` bytes into this one. Panics if
    /// `offset > len`.
    pub fn slice(&self, offset: usize) -> FrameBuf {
        assert!(offset <= self.end - self.start, "slice past end");
        FrameBuf {
            buf: Arc::clone(&self.buf),
            start: self.start + offset,
            end: self.end,
        }
    }
}

impl std::ops::Deref for FrameBuf {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }
}

impl std::fmt::Debug for FrameBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FrameBuf({} bytes)", self.end - self.start)
    }
}

impl PartialEq for FrameBuf {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}
impl Eq for FrameBuf {}

/// Reassembles `[u32 LE length][body]` frames out of raw socket reads.
///
/// Feed it each chunk the socket produced; complete frames come out as
/// [`FrameBuf`] views into the chunk (zero-copy), and any trailing
/// partial frame is buffered internally until the next chunk completes
/// it. A declared length above `max_frame` is a protocol error.
pub struct FrameAssembler {
    /// Bytes of a partial frame carried over from previous chunks.
    pending: Vec<u8>,
    max_frame: usize,
}

impl FrameAssembler {
    /// An empty assembler enforcing `max_frame` as the body-length cap.
    pub fn new(max_frame: usize) -> FrameAssembler {
        FrameAssembler {
            pending: Vec::new(),
            max_frame,
        }
    }

    /// Consumes one socket read, appending every completed frame body to
    /// `out`. Returns an error (connection must be closed) on an
    /// over-long declared length.
    pub fn feed(&mut self, chunk: Vec<u8>, out: &mut Vec<FrameBuf>) -> std::io::Result<()> {
        let work: Arc<Vec<u8>> = if self.pending.is_empty() {
            Arc::new(chunk)
        } else {
            let mut joined = std::mem::take(&mut self.pending);
            joined.extend_from_slice(&chunk);
            Arc::new(joined)
        };
        let bytes: &[u8] = &work;
        let mut pos = 0usize;
        loop {
            let rest = bytes.len() - pos;
            if rest < 4 {
                break;
            }
            let len =
                u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
                    as usize;
            if len > self.max_frame {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("frame length {len} exceeds cap {}", self.max_frame),
                ));
            }
            if rest - 4 < len {
                break;
            }
            out.push(FrameBuf {
                buf: Arc::clone(&work),
                start: pos + 4,
                end: pos + 4 + len,
            });
            pos += 4 + len;
        }
        if pos < bytes.len() {
            // Partial tail: the only copy on the inbound path.
            self.pending.extend_from_slice(&bytes[pos..]);
        }
        Ok(())
    }

    /// Bytes currently buffered awaiting completion.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(body: &[u8]) -> Vec<u8> {
        let mut v = (body.len() as u32).to_le_bytes().to_vec();
        v.extend_from_slice(body);
        v
    }

    #[test]
    fn whole_run_in_one_chunk() {
        let mut chunk = frame(b"alpha");
        chunk.extend(frame(b""));
        chunk.extend(frame(b"gamma!"));
        let mut asm = FrameAssembler::new(1024);
        let mut out = Vec::new();
        asm.feed(chunk, &mut out).unwrap();
        let got: Vec<&[u8]> = out.iter().map(|f| &**f).collect();
        assert_eq!(got, vec![&b"alpha"[..], &b""[..], &b"gamma!"[..]]);
        assert_eq!(asm.pending_len(), 0);
    }

    #[test]
    fn frame_split_across_many_chunks() {
        let mut stream = frame(b"hello world");
        stream.extend(frame(b"second"));
        let mut asm = FrameAssembler::new(1024);
        let mut out = Vec::new();
        // Feed one byte at a time: worst-case fragmentation.
        for b in stream {
            asm.feed(vec![b], &mut out).unwrap();
        }
        let got: Vec<&[u8]> = out.iter().map(|f| &**f).collect();
        assert_eq!(got, vec![&b"hello world"[..], &b"second"[..]]);
        assert_eq!(asm.pending_len(), 0);
    }

    #[test]
    fn oversized_length_is_an_error() {
        let mut asm = FrameAssembler::new(16);
        let mut out = Vec::new();
        let chunk = (17u32).to_le_bytes().to_vec();
        assert!(asm.feed(chunk, &mut out).is_err());
    }

    #[test]
    fn slice_views_share_storage() {
        let fb = FrameBuf::from_vec(vec![1, 2, 3, 4, 5]);
        let tail = fb.slice(2);
        assert_eq!(&*tail, &[3, 4, 5]);
        assert_eq!(&*fb, &[1, 2, 3, 4, 5]);
    }
}
