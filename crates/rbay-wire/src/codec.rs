//! The core codec: a bounds-checked byte [`Reader`], the [`Wire`] trait,
//! varint/string primitives, and the versioned frame layer.
//!
//! Design constraints (DESIGN.md §13):
//!
//! * **Self-contained** — no external serialization crates; every encoder
//!   writes plain bytes into a `Vec<u8>`.
//! * **Attacker-facing decode** — frames arrive from arbitrary sockets, so
//!   every length and tag is validated against the remaining input before a
//!   single byte is trusted. Decoding truncated or hostile bytes must
//!   return [`WireError`], never panic and never allocate proportionally to
//!   an unvalidated length field.
//! * **Canonical** — one value has one encoding (varints are minimal-width
//!   by construction of the encoder; NaN payloads collapse to
//!   [`CANON_NAN_BITS`]), and [`decode_frame`] rejects trailing bytes, so
//!   `encode ∘ decode` is the identity on frames.

use std::fmt;

/// Protocol version carried in every frame header. Bump on any
/// layout-incompatible change; decoders reject versions they do not speak.
pub const WIRE_VERSION: u8 = 1;

/// Hard upper bound on the body of a single frame (16 MiB). Guards both
/// the stream reader (a hostile length prefix cannot trigger a huge
/// allocation) and the encoder (a runaway payload is a bug, not a frame).
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Maximum nesting depth [`Reader::enter`] allows (recursive values such
/// as `AggValue::Multi` stop here instead of overflowing the stack).
pub const MAX_DEPTH: u32 = 32;

/// The canonical bit pattern every NaN collapses to on the wire (the
/// positive quiet NaN). Keeps `decode(encode(x))` deterministic and makes
/// NaN sort keys byte-comparable across nodes.
pub const CANON_NAN_BITS: u64 = 0x7ff8_0000_0000_0000;

/// Why a decode failed. Every variant is a *rejected input*, not a
/// programming error: hostile bytes must land here, never in a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value did.
    Truncated,
    /// An enum tag byte had no meaning for the type being decoded.
    BadTag {
        /// The type being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// The frame header announced a protocol version we do not speak.
    BadVersion(u8),
    /// A varint ran past its maximum width or overflowed its target type.
    BadVarint,
    /// A length prefix exceeded the bytes actually available (or a hard
    /// cap), so the announced collection cannot exist in this input.
    BadLength {
        /// The type being decoded.
        what: &'static str,
        /// The announced length.
        len: u64,
    },
    /// A string's bytes were not valid UTF-8.
    BadUtf8,
    /// Nested values exceeded [`MAX_DEPTH`].
    TooDeep,
    /// The value decoded but left unconsumed bytes in the frame.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "input truncated"),
            WireError::BadTag { what, tag } => write!(f, "bad tag {tag:#04x} for {what}"),
            WireError::BadVersion(v) => {
                write!(f, "unsupported wire version {v} (speak {WIRE_VERSION})")
            }
            WireError::BadVarint => write!(f, "malformed varint"),
            WireError::BadLength { what, len } => {
                write!(f, "length {len} for {what} exceeds remaining input")
            }
            WireError::BadUtf8 => write!(f, "string is not valid UTF-8"),
            WireError::TooDeep => write!(f, "nesting deeper than {MAX_DEPTH}"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the value")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A bounds-checked cursor over an immutable byte slice. All reads fail
/// with [`WireError::Truncated`] instead of slicing out of range.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    depth: u32,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    #[inline]
    pub fn new(buf: &'a [u8]) -> Self {
        Reader {
            buf,
            pos: 0,
            depth: 0,
        }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consumes one byte.
    #[inline]
    pub fn byte(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Consumes exactly `n` bytes.
    #[inline]
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if n > self.remaining() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// LEB128 varint, at most 10 bytes for a `u64`. The single-byte case
    /// (values < 128 — most tags, lengths, and small ids) is the fast
    /// path.
    #[inline]
    pub fn varint_u64(&mut self) -> Result<u64, WireError> {
        let b = self.byte()?;
        if b & 0x80 == 0 {
            return Ok(b as u64);
        }
        self.varint_u64_slow(b)
    }

    #[cold]
    fn varint_u64_slow(&mut self, first: u8) -> Result<u64, WireError> {
        let mut out: u64 = (first & 0x7f) as u64;
        for shift in (7..64).step_by(7) {
            let b = self.byte()?;
            let chunk = (b & 0x7f) as u64;
            // The 10th byte may only carry the top single bit of a u64.
            if shift == 63 && chunk > 1 {
                return Err(WireError::BadVarint);
            }
            out |= chunk << shift;
            if b & 0x80 == 0 {
                return Ok(out);
            }
        }
        Err(WireError::BadVarint)
    }

    /// Varint narrowed to `u32`.
    #[inline]
    pub fn varint_u32(&mut self) -> Result<u32, WireError> {
        u32::try_from(self.varint_u64()?).map_err(|_| WireError::BadVarint)
    }

    /// Varint narrowed to `u16`.
    #[inline]
    pub fn varint_u16(&mut self) -> Result<u16, WireError> {
        u16::try_from(self.varint_u64()?).map_err(|_| WireError::BadVarint)
    }

    /// A collection length prefix for `what`, where each element needs at
    /// least `min_elem_bytes` further input. Rejecting `len` against the
    /// *remaining* bytes means a hostile prefix can never drive a large
    /// allocation: whatever we reserve is bounded by input actually held.
    #[inline]
    pub fn seq_len(
        &mut self,
        what: &'static str,
        min_elem_bytes: usize,
    ) -> Result<usize, WireError> {
        let len = self.varint_u64()?;
        let cap = (self.remaining() / min_elem_bytes.max(1)) as u64;
        if len > cap {
            return Err(WireError::BadLength { what, len });
        }
        Ok(len as usize)
    }

    /// Eight little-endian bytes as an `f64`, with every NaN collapsed to
    /// the canonical quiet NaN.
    #[inline]
    pub fn f64(&mut self) -> Result<f64, WireError> {
        let bytes: [u8; 8] = self.take(8)?.try_into().expect("take(8) returned 8 bytes");
        let v = f64::from_bits(u64::from_le_bytes(bytes));
        Ok(if v.is_nan() {
            f64::from_bits(CANON_NAN_BITS)
        } else {
            v
        })
    }

    /// Sixteen little-endian bytes as a `u128` (ring identifiers).
    #[inline]
    pub fn u128(&mut self) -> Result<u128, WireError> {
        let bytes: [u8; 16] = self
            .take(16)?
            .try_into()
            .expect("take(16) returned 16 bytes");
        Ok(u128::from_le_bytes(bytes))
    }

    /// A length-prefixed UTF-8 string.
    #[inline]
    pub fn string(&mut self) -> Result<String, WireError> {
        let len = self.seq_len("string", 1)?;
        let bytes = self.take(len)?;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s.to_owned()),
            Err(_) => Err(WireError::BadUtf8),
        }
    }

    /// Enters one nesting level of a recursive value; callers must pair
    /// with [`Reader::exit`].
    #[inline]
    pub fn enter(&mut self) -> Result<(), WireError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(WireError::TooDeep);
        }
        Ok(())
    }

    /// Leaves one nesting level.
    #[inline]
    pub fn exit(&mut self) {
        self.depth = self.depth.saturating_sub(1);
    }
}

/// Encoder-side primitives, free functions so composite impls stay terse.
pub mod emit {
    use super::CANON_NAN_BITS;

    /// LEB128 varint.
    #[inline]
    pub fn varint_u64(out: &mut Vec<u8>, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                out.push(byte);
                return;
            }
            out.push(byte | 0x80);
        }
    }

    /// `f64` as 8 little-endian bytes, NaN canonicalized.
    #[inline]
    pub fn f64(out: &mut Vec<u8>, v: f64) {
        let bits = if v.is_nan() {
            CANON_NAN_BITS
        } else {
            v.to_bits()
        };
        out.extend_from_slice(&bits.to_le_bytes());
    }

    /// `u128` as 16 little-endian bytes.
    #[inline]
    pub fn u128(out: &mut Vec<u8>, v: u128) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed UTF-8 string.
    #[inline]
    pub fn string(out: &mut Vec<u8>, s: &str) {
        varint_u64(out, s.len() as u64);
        out.extend_from_slice(s.as_bytes());
    }
}

/// A value with a binary wire form.
///
/// Implementations must be *total* on decode: any byte sequence either
/// yields a value or a [`WireError`]; panics and unbounded allocation are
/// protocol bugs (pinned by the corrupt-bytes proptests).
pub trait Wire: Sized {
    /// Appends this value's encoding to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Decodes one value from the reader, consuming exactly its bytes.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Convenience: this value encoded into a fresh buffer.
    #[inline]
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }
}

/// Encodes a message as a frame body: `[WIRE_VERSION][message bytes]`.
/// (The outer length prefix is added by the stream layer, [`write_frame`].)
#[inline]
pub fn encode_frame<M: Wire>(msg: &M) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.push(WIRE_VERSION);
    msg.encode_into(&mut out);
    out
}

/// Decodes a frame body produced by [`encode_frame`]: checks the version,
/// decodes the message, and rejects trailing bytes.
#[inline]
pub fn decode_frame<M: Wire>(frame: &[u8]) -> Result<M, WireError> {
    let mut r = Reader::new(frame);
    let version = r.byte()?;
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let msg = M::decode(&mut r)?;
    if !r.is_empty() {
        return Err(WireError::TrailingBytes {
            extra: r.remaining(),
        });
    }
    Ok(msg)
}

/// Writes `frame` to a stream as `[u32 LE length][frame bytes]`.
pub fn write_frame(w: &mut impl std::io::Write, frame: &[u8]) -> std::io::Result<()> {
    debug_assert!(frame.len() <= MAX_FRAME_LEN, "oversized outbound frame");
    w.write_all(&(frame.len() as u32).to_le_bytes())?;
    w.write_all(frame)?;
    w.flush()
}

/// Reads one length-prefixed frame from a stream, rejecting announced
/// lengths beyond `max` before allocating. Returns `Ok(None)` on a clean
/// EOF at a frame boundary.
pub fn read_frame(r: &mut impl std::io::Read, max: usize) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > max {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {max}"),
        ));
    }
    // Read in bounded chunks so a hostile length never maps to one giant
    // up-front allocation beyond what the peer actually sends.
    let mut buf = Vec::with_capacity(len.min(64 * 1024));
    let mut taken = 0usize;
    let mut chunk = [0u8; 64 * 1024];
    while taken < len {
        let want = (len - taken).min(chunk.len());
        r.read_exact(&mut chunk[..want])?;
        buf.extend_from_slice(&chunk[..want]);
        taken += want;
    }
    Ok(Some(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_at_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            emit::varint_u64(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.varint_u64().unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn varint_rejects_overflow_and_truncation() {
        // 11 continuation bytes: too wide for u64.
        let wide = [0xffu8; 11];
        assert_eq!(
            Reader::new(&wide).varint_u64().unwrap_err(),
            WireError::BadVarint
        );
        // 10th byte carries more than the top bit.
        let mut overflow = vec![0x80u8; 9];
        overflow.push(0x02);
        assert_eq!(
            Reader::new(&overflow).varint_u64().unwrap_err(),
            WireError::BadVarint
        );
        // Continuation bit set at EOF.
        assert_eq!(
            Reader::new(&[0x80]).varint_u64().unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn seq_len_rejects_lengths_beyond_input() {
        let mut buf = Vec::new();
        emit::varint_u64(&mut buf, 1_000_000);
        let err = Reader::new(&buf).seq_len("vec", 1).unwrap_err();
        assert!(matches!(err, WireError::BadLength { len: 1_000_000, .. }));
    }

    #[test]
    fn nan_is_canonicalized() {
        let weird = f64::from_bits(0x7ff0_dead_beef_0001);
        assert!(weird.is_nan());
        let mut buf = Vec::new();
        emit::f64(&mut buf, weird);
        let got = Reader::new(&buf).f64().unwrap();
        assert_eq!(got.to_bits(), CANON_NAN_BITS);
    }

    #[test]
    fn frames_check_version_and_trailing_bytes() {
        let body = encode_frame(&7u64);
        assert_eq!(decode_frame::<u64>(&body).unwrap(), 7);
        let mut wrong = body.clone();
        wrong[0] = 99;
        assert_eq!(
            decode_frame::<u64>(&wrong).unwrap_err(),
            WireError::BadVersion(99)
        );
        let mut trailing = body;
        trailing.push(0);
        assert!(matches!(
            decode_frame::<u64>(&trailing).unwrap_err(),
            WireError::TrailingBytes { extra: 1 }
        ));
    }

    #[test]
    fn stream_frames_round_trip_and_cap_length() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        assert_eq!(read_frame(&mut cursor, 64).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor, 64).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor, 64).unwrap().is_none(), "clean EOF");

        let huge = (MAX_FRAME_LEN as u32 + 1).to_le_bytes();
        let mut cursor = std::io::Cursor::new(huge.to_vec());
        assert!(read_frame(&mut cursor, MAX_FRAME_LEN).is_err());
    }
}
