//! The [`Transport`] abstraction: everything a protocol actor needs from
//! the outside world — message delivery, a clock, and timers — behind one
//! trait, so the same `pastry`/`scribe`/`rbay-core` state machines run
//! unchanged over the in-memory simulator or a real socket backend.

use simnet::{NodeAddr, SimDuration, SimTime, SiteId, TimerToken};

/// A message plane for one node: sends typed messages to peer addresses,
/// reads a clock, and arms timers.
///
/// Implementations:
///
/// * `rbay-core`'s `SimTransport` delegates to `simnet::Context` — exactly
///   the delivery path tier-1 tests have always exercised.
/// * [`crate::tcp::TcpTransport`] frames messages over loopback/static TCP
///   and keeps a real-time timer wheel.
///
/// Delivery is *best-effort* on every backend: the simulator can drop
/// messages under a loss probability, and the TCP backend drops frames on
/// broken or saturated connections. The overlay protocols already tolerate
/// loss (heartbeats, rejoin, repair), so the trait makes no delivery
/// promise.
pub trait Transport<M> {
    /// Sends `msg` to the node addressed `to`. Best-effort; never blocks
    /// indefinitely.
    fn send(&mut self, to: NodeAddr, msg: M);

    /// The current time on this backend's clock.
    fn now(&self) -> SimTime;

    /// Arms a timer that fires `token` after `delay`. Re-arming the same
    /// token replaces the earlier deadline.
    fn set_timer(&mut self, delay: SimDuration, token: TimerToken);

    /// Estimated round-trip time between two sites in milliseconds, used
    /// by proximity-aware routing. Backends without a topology model
    /// return 0 (all peers equally near).
    fn rtt_ms(&self, _a: SiteId, _b: SiteId) -> f64 {
        0.0
    }
}
