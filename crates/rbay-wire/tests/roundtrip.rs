//! Property tests for every `Wire` impl the crate provides: random
//! values survive an encode → decode → encode cycle byte-identically
//! (and value-identically where the type has `PartialEq`), and hostile
//! bytes — random garbage, truncations, bit flips — never panic the
//! decoder.

use pastry::{NodeId, NodeInfo, PastryMsg};
use proptest::collection::vec;
use proptest::option;
use proptest::prelude::*;
use rbay_query::{AttrValue, CmpOp, FromClause, Predicate, Query, SortDir};
use rbay_wire::{decode_frame, encode_frame, FrameAssembler, Wire, MAX_FRAME_LEN};
use scribe::{AggValue, ScribeMsg, TopicId};
use simnet::{NodeAddr, SimDuration, SimTime, SiteId};

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

fn s_string() -> impl Strategy<Value = String> {
    // A small alphabet with multi-byte code points keeps UTF-8 handling
    // honest without blowing up frame sizes.
    vec(0usize..6, 0..12).prop_map(|ix| {
        ix.into_iter()
            .map(|i| ['a', 'Z', '0', '_', 'Ω', '界'][i])
            .collect()
    })
}

fn s_node_info() -> impl Strategy<Value = NodeInfo> {
    (any::<u128>(), any::<u32>(), any::<u16>()).prop_map(|(id, addr, site)| NodeInfo {
        id: NodeId(id),
        addr: NodeAddr(addr),
        site: SiteId(site),
    })
}

fn s_attr_value() -> BoxedStrategy<AttrValue> {
    prop_oneof![
        any::<bool>().prop_map(AttrValue::Bool),
        any::<f64>().prop_map(AttrValue::Num),
        s_string().prop_map(AttrValue::Str),
    ]
    .boxed()
}

fn s_agg_value() -> BoxedStrategy<AggValue> {
    let leaf = prop_oneof![
        any::<u64>().prop_map(AggValue::Count),
        any::<f64>().prop_map(AggValue::Sum),
        any::<f64>().prop_map(AggValue::Min),
        any::<f64>().prop_map(AggValue::Max),
        (any::<f64>(), any::<u64>()).prop_map(|(sum, count)| AggValue::Mean { sum, count }),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| vec(inner, 0..4).prop_map(AggValue::Multi))
}

fn s_predicate() -> impl Strategy<Value = Predicate> {
    let op = prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ];
    (s_string(), op, s_attr_value()).prop_map(|(attr, op, value)| Predicate { attr, op, value })
}

fn s_query() -> impl Strategy<Value = Query> {
    let from = prop_oneof![
        Just(FromClause::AllSites),
        vec(s_string(), 0..4).prop_map(FromClause::Sites),
    ];
    let dir = prop_oneof![Just(SortDir::Asc), Just(SortDir::Desc)];
    (
        1u32..64,
        from,
        vec(s_predicate(), 0..4),
        option::of((s_string(), dir)),
    )
        .prop_map(|(k, from, predicates, order_by)| Query {
            k,
            from,
            predicates,
            order_by,
        })
}

fn s_scope() -> impl Strategy<Value = Option<SiteId>> {
    option::of(any::<u16>().prop_map(SiteId))
}

fn s_topic() -> BoxedStrategy<TopicId> {
    any::<u128>().prop_map(|k| TopicId(NodeId(k))).boxed()
}

fn s_addr() -> BoxedStrategy<NodeAddr> {
    any::<u32>().prop_map(NodeAddr).boxed()
}

fn s_scribe_msg() -> BoxedStrategy<ScribeMsg<AggValue>> {
    prop_oneof![
        (s_topic(), s_scope(), s_node_info()).prop_map(|(topic, scope, child)| {
            ScribeMsg::Join {
                topic,
                scope,
                child,
            }
        }),
        s_topic().prop_map(|topic| ScribeMsg::JoinAck { topic }),
        (s_topic(), s_addr()).prop_map(|(topic, child)| ScribeMsg::Leave { topic, child }),
        (s_topic(), s_scope(), s_agg_value()).prop_map(|(topic, scope, payload)| {
            ScribeMsg::MulticastReq {
                topic,
                scope,
                payload,
            }
        }),
        (s_topic(), s_agg_value())
            .prop_map(|(topic, payload)| ScribeMsg::MulticastData { topic, payload }),
        (s_topic(), s_scope(), s_agg_value(), s_addr()).prop_map(
            |(topic, scope, payload, origin)| ScribeMsg::Anycast {
                topic,
                scope,
                payload,
                origin,
            }
        ),
        (
            s_topic(),
            s_agg_value(),
            s_addr(),
            vec(s_addr(), 0..5),
            vec(s_addr(), 0..5),
        )
            .prop_map(|(topic, payload, origin, visited, stack)| {
                ScribeMsg::AnycastStep {
                    topic,
                    payload,
                    origin,
                    visited,
                    stack,
                }
            }),
        (s_topic(), s_agg_value(), any::<bool>()).prop_map(|(topic, payload, satisfied)| {
            ScribeMsg::AnycastResult {
                topic,
                payload,
                satisfied,
            }
        }),
        (s_topic(), s_agg_value()).prop_map(|(topic, value)| ScribeMsg::AggUpdate { topic, value }),
        s_topic().prop_map(|topic| ScribeMsg::NotChild { topic }),
        s_agg_value().prop_map(ScribeMsg::AppDirect),
        (
            s_topic(),
            s_scope(),
            vec(s_addr(), 0..5),
            option::of(s_agg_value()),
            any::<u64>(),
        )
            .prop_map(|(topic, scope, children, agg, subscribers)| {
                ScribeMsg::ReplicaSync {
                    topic,
                    scope,
                    children,
                    agg,
                    subscribers,
                }
            }),
    ]
    .boxed()
}

fn s_pastry_msg() -> BoxedStrategy<PastryMsg<ScribeMsg<AggValue>>> {
    prop_oneof![
        (any::<u128>(), s_scribe_msg(), any::<u16>(), s_scope()).prop_map(
            |(key, payload, hops, scope)| PastryMsg::Route {
                key: NodeId(key),
                payload,
                hops,
                scope,
            }
        ),
        (
            s_node_info(),
            vec(vec(s_node_info(), 0..3), 0..3),
            any::<u16>()
        )
            .prop_map(|(joiner, rows, hops)| PastryMsg::Join { joiner, rows, hops }),
        (
            vec(vec(s_node_info(), 0..3), 0..3),
            vec(s_node_info(), 0..4),
            s_node_info()
        )
            .prop_map(|(rows, leaves, root)| PastryMsg::JoinReply { rows, leaves, root }),
        s_node_info().prop_map(|info| PastryMsg::Announce { info }),
        any::<u8>().prop_map(|row| PastryMsg::RowRequest { row }),
        (any::<u8>(), vec(s_node_info(), 0..4))
            .prop_map(|(row, entries)| PastryMsg::RowReply { row, entries }),
        Just(PastryMsg::LeafRepairRequest),
        vec(s_node_info(), 0..4).prop_map(|leaves| PastryMsg::LeafRepairReply { leaves }),
        s_scribe_msg().prop_map(PastryMsg::Direct),
    ]
    .boxed()
}

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

/// Frames `v`, decodes it back, and checks the decoded value re-encodes
/// to the identical bytes (a round trip that needs no `PartialEq` on the
/// message type; any lost or swapped field shows up as a byte diff).
fn reencodes<T: Wire>(v: &T) -> T {
    let bytes = encode_frame(v);
    let back = decode_frame::<T>(&bytes).expect("valid frame decodes");
    assert_eq!(
        bytes,
        encode_frame(&back),
        "decode(encode(x)) re-encoded differently"
    );
    back
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn primitives_round_trip(
        a in any::<u64>(),
        b in any::<u32>(),
        c in any::<u128>(),
        d in any::<bool>(),
        s in s_string(),
    ) {
        prop_assert_eq!(reencodes(&a), a);
        prop_assert_eq!(reencodes(&b), b);
        prop_assert_eq!(reencodes(&c), c);
        prop_assert_eq!(reencodes(&d), d);
        prop_assert_eq!(reencodes(&s), s);
    }

    #[test]
    fn ids_and_times_round_trip(addr in any::<u32>(), site in any::<u16>(), t in any::<u64>()) {
        prop_assert_eq!(reencodes(&NodeAddr(addr)), NodeAddr(addr));
        prop_assert_eq!(reencodes(&SiteId(site)), SiteId(site));
        let at = SimTime::from_micros(t);
        prop_assert_eq!(reencodes(&at), at);
        let span = SimDuration::from_micros(t);
        prop_assert_eq!(reencodes(&span), span);
    }

    #[test]
    fn node_info_round_trips(info in s_node_info()) {
        prop_assert_eq!(reencodes(&info), info);
    }

    #[test]
    fn attr_values_round_trip(v in s_attr_value()) {
        prop_assert_eq!(reencodes(&v), v);
    }

    #[test]
    fn agg_values_round_trip(v in s_agg_value()) {
        prop_assert_eq!(reencodes(&v), v);
    }

    #[test]
    fn predicates_round_trip(p in s_predicate()) {
        prop_assert_eq!(reencodes(&p), p);
    }

    #[test]
    fn queries_round_trip(q in s_query()) {
        prop_assert_eq!(reencodes(&q), q);
    }

    #[test]
    fn scribe_msgs_round_trip(m in s_scribe_msg()) {
        reencodes(&m);
    }

    #[test]
    fn pastry_msgs_round_trip(m in s_pastry_msg()) {
        reencodes(&m);
    }
}

// ---------------------------------------------------------------------------
// Hostile bytes
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary garbage must decode to `Err`, never panic or hang. (A
    /// random buffer passing the version check *and* decoding cleanly
    /// *and* consuming every byte is possible in principle but never a
    /// panic.)
    #[test]
    fn random_bytes_never_panic(bytes in vec(any::<u8>(), 0..96)) {
        let _ = decode_frame::<PastryMsg<ScribeMsg<AggValue>>>(&bytes);
        let _ = decode_frame::<Query>(&bytes);
        let _ = decode_frame::<AggValue>(&bytes);
        let _ = decode_frame::<AttrValue>(&bytes);
        let _ = decode_frame::<NodeInfo>(&bytes);
    }

    /// Every strict prefix of a valid frame fails to decode (frames are
    /// not self-delimiting mid-structure) — and fails with an error, not
    /// a panic.
    #[test]
    fn truncations_always_error(m in s_pastry_msg()) {
        let bytes = encode_frame(&m);
        for len in 0..bytes.len() {
            prop_assert!(
                decode_frame::<PastryMsg<ScribeMsg<AggValue>>>(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
    }

    /// Flipping any byte of a valid frame never panics the decoder; when
    /// the flip still decodes, the result re-encodes without panicking.
    #[test]
    fn bit_flips_never_panic(m in s_pastry_msg(), pos in any::<usize>(), flip in 1u8..255) {
        let mut bytes = encode_frame(&m);
        let n = bytes.len();
        bytes[pos % n] ^= flip;
        if let Ok(back) = decode_frame::<PastryMsg<ScribeMsg<AggValue>>>(&bytes) {
            let _ = encode_frame(&back);
        }
    }
}

// ---------------------------------------------------------------------------
// Frame runs through the assembler (the event-loop inbound path)
// ---------------------------------------------------------------------------

/// Concatenates length-prefixed frames into one byte run the way the
/// socket writer lays them out: `[u32 LE len][body]` per frame.
fn run_of(encoded: &[Vec<u8>]) -> Vec<u8> {
    let mut run = Vec::new();
    for body in encoded {
        run.extend_from_slice(&(body.len() as u32).to_le_bytes());
        run.extend_from_slice(body);
    }
    run
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A concatenated run of N encoded frames, fed in arbitrary chunk
    /// splits (including byte-at-a-time and whole-run chunks), reassembles
    /// to exactly the N original messages in order.
    #[test]
    fn frame_runs_reassemble_across_any_split(
        msgs in vec(s_pastry_msg(), 1..8),
        splits in vec(1usize..64, 1..32),
    ) {
        let encoded: Vec<Vec<u8>> = msgs.iter().map(encode_frame).collect();
        let run = run_of(&encoded);
        let mut asm = FrameAssembler::new(MAX_FRAME_LEN);
        let mut frames = Vec::new();
        let mut off = 0;
        let mut turn = 0;
        while off < run.len() {
            let step = splits[turn % splits.len()].min(run.len() - off);
            turn += 1;
            asm.feed(run[off..off + step].to_vec(), &mut frames).expect("valid run");
            off += step;
        }
        prop_assert_eq!(frames.len(), encoded.len());
        for (frame, body) in frames.iter().zip(&encoded) {
            prop_assert_eq!(&frame[..], &body[..]);
            prop_assert!(decode_frame::<PastryMsg<ScribeMsg<AggValue>>>(frame).is_ok());
        }
        prop_assert_eq!(asm.pending_len(), 0);
    }

    /// Truncating a run mid-frame yields only the complete frames; the
    /// cut tail stays pending (never a panic, never a partial frame).
    #[test]
    fn truncated_runs_hold_the_tail(msgs in vec(s_pastry_msg(), 1..6), cut in 1usize..1024) {
        let encoded: Vec<Vec<u8>> = msgs.iter().map(encode_frame).collect();
        let run = run_of(&encoded);
        let cut = cut % run.len();
        let keep = run.len() - 1 - cut.min(run.len() - 1); // strict prefix
        let mut asm = FrameAssembler::new(MAX_FRAME_LEN);
        let mut frames = Vec::new();
        asm.feed(run[..keep].to_vec(), &mut frames).expect("prefix of a valid run");
        prop_assert!(frames.len() < encoded.len());
        for (frame, body) in frames.iter().zip(&encoded) {
            prop_assert_eq!(&frame[..], &body[..]);
        }
        // Whatever was cut mid-frame is still buffered, not emitted.
        prop_assert_eq!(asm.pending_len() + frames.iter().map(|f| f.len() + 4).sum::<usize>(), keep);
    }

    /// A valid run followed by garbage still yields the valid frames; the
    /// garbage either stays pending, parses as further (decodable or not)
    /// frames, or errors on an oversized length — never a panic, and
    /// never corruption of the preceding frames.
    #[test]
    fn garbage_suffix_never_corrupts_prior_frames(
        msgs in vec(s_pastry_msg(), 1..6),
        junk in vec(any::<u8>(), 0..64),
    ) {
        let encoded: Vec<Vec<u8>> = msgs.iter().map(encode_frame).collect();
        let mut run = run_of(&encoded);
        run.extend_from_slice(&junk);
        let mut asm = FrameAssembler::new(MAX_FRAME_LEN);
        let mut frames = Vec::new();
        let fed = asm.feed(run, &mut frames);
        match fed {
            Ok(()) => {
                prop_assert!(frames.len() >= encoded.len());
                for (frame, body) in frames.iter().zip(&encoded) {
                    prop_assert_eq!(&frame[..], &body[..]);
                }
            }
            // The junk happened to form an over-MAX_FRAME_LEN length
            // prefix; the feed reports it instead of allocating.
            Err(e) => prop_assert_eq!(e.kind(), std::io::ErrorKind::InvalidData),
        }
    }
}
