//! Integration tests pinning the tree-repair bugfixes through the
//! observability plane: a fail→recover cycle re-converging the tree
//! (un-suspect on message receipt), NotChild-driven orphan recovery under
//! message loss with an aggressive heartbeat timeout, and a combined
//! crash+loss churn scenario whose re-convergence is asserted through the
//! tree metrics.

use rbay_core::{Federation, RbayConfig};
use rbay_query::AttrValue;
use simnet::{NodeAddr, SimDuration, SiteId, Topology};

fn churn_config() -> RbayConfig {
    RbayConfig {
        failure_detection: true,
        heartbeat_timeout: SimDuration::from_millis(400),
        ..RbayConfig::default()
    }
}

fn maintain(fed: &mut Federation, rounds: u32) {
    fed.run_maintenance(rounds, SimDuration::from_millis(250));
    fed.settle();
}

/// Live nodes currently attached to `topic` (holding a parent pointer).
fn attached_count(fed: &Federation, topic: scribe::TopicId, n: u32) -> usize {
    (0..n)
        .map(NodeAddr)
        .filter(|a| !fed.sim().is_failed(*a))
        .filter(|a| {
            fed.node(*a)
                .scribe
                .topic(topic)
                .is_some_and(|st| st.parent.is_some())
        })
        .count()
}

/// Bugfix 3 integration: a node that crashes and comes back is
/// un-suspected by every peer on its first message, re-attaches to the
/// tree, and the root aggregate returns to the full holder count.
#[test]
fn fail_recover_cycle_reconverges_the_tree() {
    let n = 40u32;
    let mut fed =
        Federation::with_config(Topology::single_site(n as usize, 0.5), 31, churn_config());
    fed.enable_obs(1 << 16);
    let holders: Vec<NodeAddr> = (0..12).map(NodeAddr).collect();
    for &h in &holders {
        fed.post_resource(h, "GPU", AttrValue::Bool(true));
    }
    fed.settle();
    maintain(&mut fed, 3);

    let topic = fed.node(NodeAddr(0)).host.tree_topic("GPU=true", SiteId(0));
    assert_eq!(fed.tree_root_count(topic), Some(holders.len() as u64));

    // Crash a holder; heartbeats detect it and the tree repairs around it.
    let victim = NodeAddr(9);
    fed.sim_mut().fail_node(victim);
    maintain(&mut fed, 8);
    assert_eq!(
        fed.tree_root_count(topic),
        Some(holders.len() as u64 - 1),
        "tree did not repair around the crashed holder"
    );
    let suspecters = (0..n)
        .filter(|i| *i != victim.0)
        .filter(|i| fed.node(NodeAddr(*i)).host.suspected.contains(&victim))
        .count();
    assert!(suspecters > 0, "nobody detected the crash");

    // Revive it. Its next messages (heartbeat pings, aggregate pushes)
    // prove it alive: peers must clear the suspicion, and its stale
    // parent pointer must be NACKed back into a fresh join.
    fed.sim_mut().revive_node(victim);
    maintain(&mut fed, 10);

    for i in (0..n).filter(|i| *i != victim.0) {
        assert!(
            !fed.node(NodeAddr(i)).host.suspected.contains(&victim),
            "node {i} still suspects the recovered peer"
        );
    }
    assert_eq!(
        fed.tree_root_count(topic),
        Some(holders.len() as u64),
        "recovered holder is not counted at the root again"
    );
    // The revived node is attached through a consistent edge.
    let st = fed.node(victim).scribe.topic(topic).expect("holder state");
    if let Some(p) = st.parent {
        assert!(
            fed.node(p)
                .scribe
                .topic(topic)
                .is_some_and(|ps| ps.children.contains(&victim)),
            "revived node's parent does not list it as a child"
        );
    } else {
        assert!(st.is_root, "revived holder neither attached nor root");
    }
    // The plane saw the recovery: at least one un-suspicion was recorded.
    assert!(
        fed.recorder().global_count("unsuspect") > 0,
        "no unsuspect events recorded across the fail/recover cycle"
    );
}

/// Bugfix 2 integration: with lossy links and an aggressive heartbeat
/// timeout, false-positive failure declarations orphan live subtrees; the
/// NotChild NACK must bring every orphan back and the root aggregate must
/// keep re-converging to the true holder count.
#[test]
fn not_child_recovers_false_positive_orphans_under_loss() {
    let n = 30u32;
    let cfg = RbayConfig {
        failure_detection: true,
        heartbeat_timeout: SimDuration::from_millis(300),
        ..RbayConfig::default()
    };
    let mut fed = Federation::with_config(Topology::single_site(n as usize, 0.5), 47, cfg);
    fed.enable_obs(1 << 18);
    let holders: Vec<NodeAddr> = (0..10).map(NodeAddr).collect();
    for &h in &holders {
        fed.post_resource(h, "GPU", AttrValue::Bool(true));
    }
    fed.settle();
    maintain(&mut fed, 6);

    let topic = fed.node(NodeAddr(0)).host.tree_topic("GPU=true", SiteId(0));
    assert_eq!(fed.tree_root_count(topic), Some(holders.len() as u64));

    // Open a lossy window: with pings every 250 ms and a 300 ms timeout,
    // dropped heartbeat traffic produces false-positive failure
    // declarations that orphan live subtrees. Nobody actually crashes.
    fed.sim_mut().set_loss_prob(0.20);
    maintain(&mut fed, 8);
    fed.sim_mut().set_loss_prob(0.0);

    let expirations = fed.recorder().global_count("hb_expire");
    assert!(
        expirations > 0,
        "lossy window produced no false-positive declarations; the scenario \
         does not exercise the orphan-recovery path"
    );

    // Clean recovery phase: every orphan's next aggregate push is NACKed
    // with NotChild, it re-joins, and the root count returns to exact.
    let mut converged_at = None;
    for round in 1..=15u32 {
        maintain(&mut fed, 1);
        if fed.tree_root_count(topic) == Some(holders.len() as u64) {
            converged_at = Some(round);
            break;
        }
    }
    assert!(
        converged_at.is_some(),
        "root aggregate never recovered the full holder count after the \
         lossy window: {:?} (want {}), {} expirations, {} rejoins",
        fed.tree_root_count(topic),
        holders.len(),
        expirations,
        fed.recorder().global_count("orphan_rejoin"),
    );
    assert!(
        fed.recorder().global_count("orphan_rejoin") > 0,
        "false positives occurred ({expirations} declarations) but no \
         orphan ever re-joined via NotChild"
    );
}

/// Churn scenario: crashes and message loss together. Membership (the sum
/// of all `children` sets) and the root aggregate must re-converge to the
/// live holder population within a bounded number of maintenance rounds,
/// asserted through the metrics helpers the observability plane exposes.
#[test]
fn crash_plus_loss_churn_reconverges_within_bounded_rounds() {
    let n = 40u32;
    let mut fed =
        Federation::with_config(Topology::single_site(n as usize, 0.5), 53, churn_config());
    fed.enable_obs(1 << 18);
    let holders: Vec<NodeAddr> = (0..12).map(NodeAddr).collect();
    for &h in &holders {
        fed.post_resource(h, "GPU", AttrValue::Bool(true));
    }
    fed.settle();
    maintain(&mut fed, 6);

    let topic = fed.node(NodeAddr(0)).host.tree_topic("GPU=true", SiteId(0));
    assert_eq!(fed.tree_root_count(topic), Some(holders.len() as u64));

    // Crash three holders and two forwarders, all silently, while links
    // start dropping 5% of messages at the same moment. With pings every
    // 250 ms against a 400 ms timeout, sustained loss also produces a
    // steady stream of false-positive declarations, so the storm phase
    // exercises crash repair, orphan recovery, and stale-edge expiry all
    // at once; the loss window then closes and re-convergence is measured.
    fed.sim_mut().set_loss_prob(0.05);
    let victims = [
        NodeAddr(3),
        NodeAddr(7),
        NodeAddr(11),
        NodeAddr(20),
        NodeAddr(33),
    ];
    for v in victims {
        fed.sim_mut().fail_node(v);
    }
    let live_holders = holders.iter().filter(|h| !victims.contains(h)).count();
    maintain(&mut fed, 10);
    fed.sim_mut().set_loss_prob(0.0);

    const BOUND: u32 = 15;
    let mut converged_at = None;
    for round in 1..=BOUND {
        maintain(&mut fed, 1);
        let root_ok = fed.tree_root_count(topic) == Some(live_holders as u64);
        // Membership consistency: every attached live node contributes
        // exactly one parent→child edge — no double-counted children, no
        // edges to the dead.
        let membership_ok = fed.tree_edge_count(topic) == attached_count(&fed, topic, n);
        if root_ok && membership_ok {
            converged_at = Some(round);
            break;
        }
    }
    let converged_at = converged_at.unwrap_or_else(|| {
        panic!(
            "membership and root aggregate did not re-converge within {BOUND} \
             rounds: edges={} attached={} root={:?} (want {live_holders})",
            fed.tree_edge_count(topic),
            attached_count(&fed, topic, n),
            fed.tree_root_count(topic),
        )
    });
    assert!(converged_at <= BOUND);
    // Tree shape stays sane and the plane recorded the repair.
    assert!(
        fed.tree_max_depth(topic) < n as usize,
        "parent cycle detected"
    );
    let snap = fed.recorder().snapshot();
    assert!(snap.events_recorded > 0, "observability plane saw nothing");
    assert!(
        snap.count("hb_expire") > 0,
        "no failure declarations recorded"
    );
    // Queries still find every live holder.
    let id = fed
        .issue_query(
            NodeAddr(39),
            &format!("SELECT {live_holders} FROM * WHERE GPU = true"),
            None,
        )
        .unwrap();
    fed.settle();
    let rec = fed.query_record(NodeAddr(39), id).unwrap();
    assert!(
        rec.result.len() >= live_holders - 1,
        "churn lost holders: {} of {live_holders}",
        rec.result.len()
    );
}
