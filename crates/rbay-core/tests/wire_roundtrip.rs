//! Property tests for the `Wire` impls on RBAY's own payload types: the
//! full cross-node message (`RbayMsg` = Pastry ⟨Scribe ⟨RbayPayload⟩⟩)
//! survives encode → decode → encode byte-identically, and corrupt bytes
//! never panic the decoder.

use pastry::{NodeId, NodeInfo, PastryMsg};
use proptest::collection::vec;
use proptest::option;
use proptest::prelude::*;
use rbay_core::{AdminCommand, Candidate, QueryId, RbayEvent, RbayMsg, RbayPayload, SearchState};
use rbay_query::{AttrValue, CmpOp, FromClause, Predicate, Query, SortDir};
use rbay_wire::{decode_frame, encode_frame, Wire};
use scribe::{AggValue, ScribeMsg, TopicId};
use simnet::{NodeAddr, SimTime, SiteId};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

fn s_string() -> impl Strategy<Value = String> {
    vec(0usize..6, 0..10).prop_map(|ix| {
        ix.into_iter()
            .map(|i| ['G', 'P', 'u', '=', '%', 'é'][i])
            .collect()
    })
}

fn s_attr_value() -> BoxedStrategy<AttrValue> {
    prop_oneof![
        any::<bool>().prop_map(AttrValue::Bool),
        any::<f64>().prop_map(AttrValue::Num),
        s_string().prop_map(AttrValue::Str),
    ]
    .boxed()
}

fn s_candidate() -> impl Strategy<Value = Candidate> {
    (
        any::<u128>(),
        any::<u32>(),
        any::<u16>(),
        option::of(s_attr_value()),
    )
        .prop_map(|(id, addr, site, sort_key)| Candidate {
            id: NodeId(id),
            addr: NodeAddr(addr),
            site: SiteId(site),
            sort_key,
        })
}

fn s_query() -> impl Strategy<Value = Query> {
    let from = prop_oneof![
        Just(FromClause::AllSites),
        vec(s_string(), 0..3).prop_map(FromClause::Sites),
    ];
    let op = prop_oneof![Just(CmpOp::Eq), Just(CmpOp::Lt), Just(CmpOp::Ge)];
    let pred = (s_string(), op, s_attr_value()).prop_map(|(attr, op, value)| Predicate {
        attr,
        op,
        value,
    });
    let dir = prop_oneof![Just(SortDir::Asc), Just(SortDir::Desc)];
    (
        1u32..16,
        from,
        vec(pred, 0..3),
        option::of((s_string(), dir)),
    )
        .prop_map(|(k, from, predicates, order_by)| Query {
            k,
            from,
            predicates,
            order_by,
        })
}

fn s_search_state() -> impl Strategy<Value = SearchState> {
    (
        any::<u64>(),
        any::<u32>(),
        s_query(),
        option::of(s_string()),
        vec(s_candidate(), 0..4),
    )
        .prop_map(|(qid, reply_to, query, password, slots)| SearchState {
            query_id: QueryId(qid),
            reply_to: NodeAddr(reply_to),
            query: Rc::new(query),
            password,
            slots,
        })
}

fn s_node_info() -> impl Strategy<Value = NodeInfo> {
    (any::<u128>(), any::<u32>(), any::<u16>()).prop_map(|(id, addr, site)| NodeInfo {
        id: NodeId(id),
        addr: NodeAddr(addr),
        site: SiteId(site),
    })
}

fn s_payload() -> BoxedStrategy<RbayPayload> {
    prop_oneof![
        (any::<u64>(), any::<u8>(), any::<u32>(), any::<u16>()).prop_map(
            |(qid, tree_idx, reply_to, site)| RbayPayload::SizeProbe {
                query_id: QueryId(qid),
                tree_idx,
                reply_to: NodeAddr(reply_to),
                site: SiteId(site),
            }
        ),
        s_search_state().prop_map(RbayPayload::Search),
        (
            any::<u64>(),
            any::<u8>(),
            any::<u16>(),
            option::of(any::<u64>()),
            any::<bool>()
        )
            .prop_map(
                |(qid, tree_idx, site, size, exists)| RbayPayload::ProbeEcho {
                    query_id: QueryId(qid),
                    tree_idx,
                    site: SiteId(site),
                    size,
                    exists,
                }
            ),
        (
            any::<u64>(),
            any::<u16>(),
            vec(s_candidate(), 0..4),
            any::<bool>()
        )
            .prop_map(|(qid, site, slots, satisfied)| RbayPayload::SearchEcho {
                query_id: QueryId(qid),
                site: SiteId(site),
                slots,
                satisfied,
            }),
        (
            any::<u64>(),
            any::<u32>(),
            any::<u16>(),
            vec(s_string(), 0..3)
        )
            .prop_map(|(qid, reply_to, site, trees)| RbayPayload::RemoteProbe {
                query_id: QueryId(qid),
                reply_to: NodeAddr(reply_to),
                site: SiteId(site),
                trees,
            }),
        (s_search_state(), s_string())
            .prop_map(|(state, tree)| RbayPayload::RemoteSearch { state, tree }),
        any::<u64>().prop_map(|qid| RbayPayload::Commit {
            query_id: QueryId(qid)
        }),
        any::<u64>().prop_map(|qid| RbayPayload::Release {
            query_id: QueryId(qid)
        }),
        (any::<u64>(), s_string(), s_attr_value(), any::<u64>()).prop_map(
            |(cmd_id, attr, payload, at)| RbayPayload::Admin(AdminCommand {
                cmd_id,
                attr,
                payload,
                issued_at: SimTime::from_micros(at),
            })
        ),
        (any::<u32>(), s_string()).prop_map(|(reply_to, tree)| RbayPayload::StatsProbe {
            reply_to: NodeAddr(reply_to),
            tree,
        }),
        (
            s_string(),
            option::of(any::<u64>().prop_map(AggValue::Count)),
            any::<bool>()
        )
            .prop_map(|(tree, agg, exists)| RbayPayload::StatsEcho { tree, agg, exists }),
        (any::<u64>(), s_node_info()).prop_map(|(nonce, info)| RbayPayload::Ping { nonce, info }),
        (any::<u64>(), s_node_info()).prop_map(|(nonce, info)| RbayPayload::Pong { nonce, info }),
        (s_string(), any::<bool>())
            .prop_map(|(attr, fanout)| RbayPayload::Invalidate { attr, fanout }),
    ]
    .boxed()
}

fn s_event() -> impl Strategy<Value = RbayEvent> {
    prop_oneof![
        (any::<u128>(), any::<u64>(), any::<u64>()).prop_map(|(topic, req, att)| {
            RbayEvent::Subscribed {
                topic: TopicId(NodeId(topic)),
                requested_at: SimTime::from_micros(req),
                attached_at: SimTime::from_micros(att),
            }
        }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(cmd_id, iss, del)| {
            RbayEvent::AdminDelivered {
                cmd_id,
                issued_at: SimTime::from_micros(iss),
                delivered_at: SimTime::from_micros(del),
            }
        }),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<bool>()).prop_map(
            |(qid, iss, done, satisfied)| RbayEvent::QueryDone {
                query_id: QueryId(qid),
                issued_at: SimTime::from_micros(iss),
                completed_at: SimTime::from_micros(done),
                satisfied,
            }
        ),
    ]
}

fn s_rbay_msg() -> BoxedStrategy<RbayMsg> {
    let scribe = prop_oneof![
        (any::<u128>(), s_payload(), any::<u32>()).prop_map(|(topic, payload, origin)| {
            ScribeMsg::Anycast {
                topic: TopicId(NodeId(topic)),
                scope: None,
                payload,
                origin: NodeAddr(origin),
            }
        }),
        (any::<u128>(), s_payload()).prop_map(|(topic, payload)| ScribeMsg::MulticastData {
            topic: TopicId(NodeId(topic)),
            payload,
        }),
        s_payload().prop_map(ScribeMsg::AppDirect),
    ];
    prop_oneof![
        (any::<u128>(), scribe.boxed(), any::<u16>()).prop_map(|(key, payload, hops)| {
            PastryMsg::Route {
                key: NodeId(key),
                payload,
                hops,
                scope: None,
            }
        }),
        s_payload().prop_map(|p| PastryMsg::Direct(ScribeMsg::AppDirect(p))),
    ]
    .boxed()
}

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

/// Byte-identity round trip (the payload enums have no `PartialEq`; a
/// lost or swapped field shows up as a byte diff on re-encode).
fn reencodes<T: Wire>(v: &T) -> T {
    let bytes = encode_frame(v);
    let back = decode_frame::<T>(&bytes).expect("valid frame decodes");
    assert_eq!(
        bytes,
        encode_frame(&back),
        "decode(encode(x)) re-encoded differently"
    );
    back
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn query_ids_round_trip(id in any::<u64>()) {
        prop_assert_eq!(reencodes(&QueryId(id)), QueryId(id));
    }

    #[test]
    fn candidates_round_trip(c in s_candidate()) {
        prop_assert_eq!(reencodes(&c), c);
    }

    #[test]
    fn search_states_round_trip(s in s_search_state()) {
        let back = reencodes(&s);
        prop_assert_eq!(back.query.as_ref(), s.query.as_ref());
        prop_assert_eq!(back.slots, s.slots);
    }

    #[test]
    fn payloads_round_trip(p in s_payload()) {
        reencodes(&p);
    }

    #[test]
    fn events_round_trip(e in s_event()) {
        prop_assert_eq!(reencodes(&e), e);
    }

    #[test]
    fn full_rbay_msgs_round_trip(m in s_rbay_msg()) {
        reencodes(&m);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_bytes_never_panic(bytes in vec(any::<u8>(), 0..96)) {
        let _ = decode_frame::<RbayMsg>(&bytes);
        let _ = decode_frame::<RbayPayload>(&bytes);
        let _ = decode_frame::<SearchState>(&bytes);
        let _ = decode_frame::<Candidate>(&bytes);
        let _ = decode_frame::<RbayEvent>(&bytes);
    }

    #[test]
    fn truncations_always_error(m in s_rbay_msg()) {
        let bytes = encode_frame(&m);
        for len in 0..bytes.len() {
            prop_assert!(
                decode_frame::<RbayMsg>(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
    }

    #[test]
    fn bit_flips_never_panic(m in s_rbay_msg(), pos in any::<usize>(), flip in 1u8..255) {
        let mut bytes = encode_frame(&m);
        let n = bytes.len();
        bytes[pos % n] ^= flip;
        if let Ok(back) = decode_frame::<RbayMsg>(&bytes) {
            let _ = encode_frame(&back);
        }
    }
}
