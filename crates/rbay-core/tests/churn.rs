//! Churn tests: heartbeat failure detection discovers crashed nodes
//! without any external notification, repairs the overlay and the trees,
//! and queries keep working — the evaluation the paper lists as future
//! work (§VI).

use rbay_core::{Federation, RbayConfig};
use rbay_query::AttrValue;
use simnet::{NodeAddr, SimDuration, Topology};

fn churn_config() -> RbayConfig {
    RbayConfig {
        failure_detection: true,
        heartbeat_timeout: SimDuration::from_millis(400),
        ..RbayConfig::default()
    }
}

fn maintain(fed: &mut Federation, rounds: u32) {
    fed.run_maintenance(rounds, SimDuration::from_millis(250));
    fed.settle();
}

#[test]
fn heartbeats_detect_silent_crashes() {
    let mut fed = Federation::with_config(Topology::single_site(40, 0.5), 31, churn_config());
    for n in [5u32, 9, 14] {
        fed.post_resource(NodeAddr(n), "GPU", AttrValue::Bool(true));
    }
    fed.settle();
    maintain(&mut fed, 3);

    // Crash node 9 with NO notification to anyone.
    fed.sim_mut().fail_node(NodeAddr(9));
    // Heartbeat rounds: pings to 9 go unanswered past the timeout.
    maintain(&mut fed, 8);

    // Some live node must have declared 9 failed.
    let suspecters = (0..40u32)
        .filter(|i| *i != 9)
        .filter(|i| fed.node(NodeAddr(*i)).host.suspected.contains(&NodeAddr(9)))
        .count();
    assert!(suspecters > 0, "nobody detected the crash");

    // And the GPU tree no longer references the dead node anywhere.
    let topic = fed
        .node(NodeAddr(0))
        .host
        .tree_topic("GPU=true", simnet::SiteId(0));
    for i in (0..40u32).filter(|i| *i != 9) {
        if let Some(st) = fed.node(NodeAddr(i)).scribe.topic(topic) {
            assert!(
                !st.children.contains(&NodeAddr(9)),
                "node {i} still lists the dead node as a child"
            );
        }
    }
}

#[test]
fn queries_survive_churn_without_manual_repair() {
    let mut fed = Federation::with_config(Topology::single_site(60, 0.5), 33, churn_config());
    let holders: Vec<NodeAddr> = (10..22).map(NodeAddr).collect();
    for &h in &holders {
        fed.post_resource(h, "SSD", AttrValue::Bool(true));
    }
    fed.settle();
    maintain(&mut fed, 3);

    // Crash three holders silently.
    for n in [11u32, 15, 19] {
        fed.sim_mut().fail_node(NodeAddr(n));
    }
    maintain(&mut fed, 8);

    // Ask for all nine survivors.
    let id = fed
        .issue_query(NodeAddr(50), "SELECT 9 FROM * WHERE SSD = true", None)
        .unwrap();
    fed.settle();
    let rec = fed.query_record(NodeAddr(50), id).unwrap();
    assert!(rec.completed_at.is_some());
    assert!(
        rec.result.len() >= 8,
        "expected ~9 live holders, got {}",
        rec.result.len()
    );
    for c in &rec.result {
        assert!(
            ![11u32, 15, 19].contains(&c.addr.0),
            "dead node {} returned as a candidate",
            c.addr
        );
    }
}

#[test]
fn tree_parent_failure_triggers_automatic_rejoin() {
    let mut fed = Federation::with_config(Topology::single_site(50, 0.5), 35, churn_config());
    let holders: Vec<NodeAddr> = (0..16).map(NodeAddr).collect();
    for &h in &holders {
        fed.post_resource(h, "NVMe", AttrValue::Bool(true));
    }
    fed.settle();
    maintain(&mut fed, 3);

    let topic = fed
        .node(NodeAddr(0))
        .host
        .tree_topic("NVMe=true", simnet::SiteId(0));
    // Find an interior node of the tree (has children and a parent) and
    // kill it; its children must re-attach automatically.
    let interior = (0..50u32)
        .map(NodeAddr)
        .find(|n| {
            fed.node(*n)
                .scribe
                .topic(topic)
                .is_some_and(|st| !st.children.is_empty() && st.parent.is_some())
        })
        .expect("tree has interior nodes");
    let orphans: Vec<NodeAddr> = fed
        .node(interior)
        .scribe
        .topic(topic)
        .unwrap()
        .children
        .iter()
        .copied()
        .collect();
    fed.sim_mut().fail_node(interior);
    maintain(&mut fed, 10);

    // Every orphan that still subscribes is re-attached (or became root).
    for o in orphans {
        let st = fed.node(o).scribe.topic(topic).expect("orphan keeps state");
        assert!(
            st.is_root || st.parent.is_some_and(|p| p != interior),
            "orphan {o} still points at the dead parent"
        );
    }
    // The tree still answers queries for every live subscriber.
    let id = fed
        .issue_query(NodeAddr(40), "SELECT 15 FROM * WHERE NVMe = true", None)
        .unwrap();
    fed.settle();
    let rec = fed.query_record(NodeAddr(40), id).unwrap();
    let live_expected = holders.iter().filter(|h| **h != interior).count();
    assert!(
        rec.result.len() >= live_expected - 1,
        "repair lost subscribers: {} of {}",
        rec.result.len(),
        live_expected
    );
}

/// A failed border router costs one timed-out attempt: the retry rotates
/// to the site's next gateway and the cross-site query still succeeds.
#[test]
fn gateway_failover_rotates_border_routers() {
    let mut fed = Federation::with_config(
        Topology::aws_ec2_8_sites(10),
        37,
        RbayConfig {
            query_timeout: SimDuration::from_millis(1_500),
            ..churn_config()
        },
    );
    // A resource in Tokyo (site 5).
    let tokyo = fed.sim().topology().nodes_of_site(simnet::SiteId(5));
    fed.post_resource(tokyo[5], "GPU", AttrValue::Bool(true));
    fed.settle();
    maintain(&mut fed, 3);

    // Kill Tokyo's primary gateway (its lowest address).
    fed.sim_mut().fail_node(tokyo[0]);

    // A Virginia user queries Tokyo: attempt 0 times out against the dead
    // gateway, the retry reaches gateway #1.
    let id = fed
        .issue_query(
            NodeAddr(2),
            r#"SELECT 1 FROM "Tokyo" WHERE GPU = true"#,
            None,
        )
        .unwrap();
    fed.settle();
    let rec = fed.query_record(NodeAddr(2), id).unwrap();
    assert!(rec.satisfied, "failover must succeed: {rec:?}");
    assert!(rec.attempts >= 1, "first attempt should have timed out");
    assert_eq!(rec.result[0].addr, tokyo[5]);
}
