//! End-to-end federation tests: the full stack (simnet → pastry → scribe →
//! rbay) exercised through the public `Federation` API.

use rbay_core::{Federation, QueryId, RbayEvent};
use rbay_query::AttrValue;
use simnet::{NodeAddr, SimDuration, SiteId, Topology};

fn maintain(fed: &mut Federation, rounds: u32) {
    fed.run_maintenance(rounds, SimDuration::from_millis(200));
    fed.settle();
}

#[test]
fn single_site_query_finds_posted_resource() {
    let mut fed = Federation::new(Topology::single_site(50, 0.5), 1);
    fed.post_resource(NodeAddr(10), "GPU", AttrValue::Bool(true));
    fed.post_resource(NodeAddr(20), "GPU", AttrValue::Bool(true));
    fed.settle();
    maintain(&mut fed, 4);

    let q = fed
        .issue_query(NodeAddr(5), "SELECT 2 FROM * WHERE GPU = true", None)
        .unwrap();
    fed.settle();
    let rec = fed.query_record(NodeAddr(5), q).unwrap();
    assert!(rec.satisfied, "query unsatisfied: {rec:?}");
    let mut addrs: Vec<u32> = rec.result.iter().map(|c| c.addr.0).collect();
    addrs.sort();
    assert_eq!(addrs, vec![10, 20]);
}

#[test]
fn composite_predicates_filter_during_walk() {
    let mut fed = Federation::new(Topology::single_site(60, 0.5), 2);
    // Ten GPU nodes, but only three with low utilization.
    for i in 0..10u32 {
        fed.post_resource(NodeAddr(i), "GPU", AttrValue::Bool(true));
        let util = if i < 3 { 5.0 } else { 80.0 };
        fed.update_attr(NodeAddr(i), "CPU_utilization", AttrValue::Num(util));
    }
    fed.settle();
    maintain(&mut fed, 4);

    let q = fed
        .issue_query(
            NodeAddr(40),
            "SELECT 3 FROM * WHERE GPU = true AND CPU_utilization < 10",
            None,
        )
        .unwrap();
    fed.settle();
    let rec = fed.query_record(NodeAddr(40), q).unwrap();
    assert!(rec.satisfied);
    let mut addrs: Vec<u32> = rec.result.iter().map(|c| c.addr.0).collect();
    addrs.sort();
    assert_eq!(addrs, vec![0, 1, 2]);
}

#[test]
fn cross_site_queries_search_sites_in_parallel() {
    let mut fed = Federation::new(Topology::aws_ec2_8_sites(12), 3);
    // One Matlab node per site.
    let holders: Vec<NodeAddr> = (0..8u16)
        .map(|s| fed.sim().topology().nodes_of_site(SiteId(s))[3])
        .collect();
    for &h in &holders {
        fed.post_resource(h, "Matlab", AttrValue::str("8.0"));
    }
    fed.settle();
    maintain(&mut fed, 4);

    // Ask for 8 nodes from all sites: one per site must be found.
    let q = fed
        .issue_query(NodeAddr(0), r#"SELECT 8 FROM * WHERE Matlab = "8.0""#, None)
        .unwrap();
    fed.settle();
    let rec = fed.query_record(NodeAddr(0), q).unwrap();
    assert!(rec.satisfied, "{rec:?}");
    let mut sites: Vec<u16> = rec.result.iter().map(|c| c.site.0).collect();
    sites.sort();
    assert_eq!(sites, (0..8).collect::<Vec<u16>>(), "one hit per site");
}

#[test]
fn from_clause_restricts_sites() {
    let mut fed = Federation::new(Topology::aws_ec2_8_sites(10), 4);
    for s in 0..8u16 {
        let n = fed.sim().topology().nodes_of_site(SiteId(s))[2];
        fed.post_resource(n, "GPU", AttrValue::Bool(true));
    }
    fed.settle();
    maintain(&mut fed, 4);

    let q = fed
        .issue_query(
            NodeAddr(0),
            r#"SELECT 8 FROM "Virginia", "Tokyo" WHERE GPU = true"#,
            None,
        )
        .unwrap();
    fed.settle();
    let rec = fed.query_record(NodeAddr(0), q).unwrap();
    // Only two sites are allowed → only two candidates can exist.
    assert!(!rec.satisfied);
    assert_eq!(rec.result.len(), 2);
    let mut sites: Vec<u16> = rec.result.iter().map(|c| c.site.0).collect();
    sites.sort();
    assert_eq!(sites, vec![0, 5], "Virginia=0, Tokyo=5");
}

#[test]
fn password_policy_enforced_end_to_end() {
    let mut fed = Federation::new(Topology::single_site(40, 0.5), 5);
    fed.post_resource(NodeAddr(7), "GPU", AttrValue::Bool(true));
    fed.install_node_aa(
        NodeAddr(7),
        r#"
        AA = {Password = "3053482032"}
        function onGet(caller, password)
            if password == AA.Password then
                return true
            end
            return nil
        end
    "#,
    );
    fed.settle();
    maintain(&mut fed, 4);

    let denied = fed
        .issue_query(
            NodeAddr(30),
            "SELECT 1 FROM * WHERE GPU = true",
            Some("wrong"),
        )
        .unwrap();
    fed.settle();
    let rec = fed.query_record(NodeAddr(30), denied).unwrap();
    assert!(!rec.satisfied, "wrong password must be denied");
    assert!(rec.result.is_empty());
    assert!(rec.attempts >= 1, "denial forced retries");

    let granted = fed
        .issue_query(
            NodeAddr(30),
            "SELECT 1 FROM * WHERE GPU = true",
            Some("3053482032"),
        )
        .unwrap();
    fed.settle();
    let rec = fed.query_record(NodeAddr(30), granted).unwrap();
    assert!(rec.satisfied);
    assert_eq!(rec.result[0].addr, NodeAddr(7));
}

#[test]
fn concurrent_queries_conflict_then_backoff_resolves() {
    let mut fed = Federation::new(Topology::single_site(50, 0.5), 6);
    // Exactly one matching node: two concurrent queries race for it.
    fed.post_resource(NodeAddr(9), "FPGA", AttrValue::Bool(true));
    fed.settle();
    maintain(&mut fed, 4);

    let a = fed
        .issue_query(NodeAddr(1), "SELECT 1 FROM * WHERE FPGA = true", None)
        .unwrap();
    let b = fed
        .issue_query(NodeAddr(2), "SELECT 1 FROM * WHERE FPGA = true", None)
        .unwrap();
    fed.settle();
    let ra = fed.query_record(NodeAddr(1), a).unwrap().clone();
    let rb = fed.query_record(NodeAddr(2), b).unwrap().clone();
    // Exactly one query holds the committed node; the loser either
    // retried until the reservation TTL freed it (then the winner had
    // committed, so the node stays visible but reserved) or gave up.
    let winner_count = [&ra, &rb].iter().filter(|r| r.satisfied).count();
    assert!(
        winner_count >= 1,
        "at least one query must win: {ra:?} {rb:?}"
    );
    let committed = &fed.node(NodeAddr(9)).host.committed;
    assert_eq!(committed.len(), winner_count, "commits match winners");
}

#[test]
fn released_reservations_are_reusable() {
    let mut fed = Federation::new(Topology::single_site(30, 0.5), 7);
    fed.post_resource(NodeAddr(4), "TPU", AttrValue::Bool(true));
    fed.settle();
    maintain(&mut fed, 4);

    // Query wants 2 but only 1 exists → retries then completes partial,
    // releasing the reservation.
    let q1 = fed
        .issue_query(NodeAddr(11), "SELECT 2 FROM * WHERE TPU = true", None)
        .unwrap();
    fed.settle();
    let r1 = fed.query_record(NodeAddr(11), q1).unwrap();
    assert!(!r1.satisfied);
    // The node must be free again for the next customer.
    let q2 = fed
        .issue_query(NodeAddr(12), "SELECT 1 FROM * WHERE TPU = true", None)
        .unwrap();
    fed.settle();
    let r2 = fed.query_record(NodeAddr(12), q2).unwrap();
    assert!(r2.satisfied, "reservation must have been released: {r2:?}");
}

#[test]
fn admin_multicast_reaches_all_members_and_updates_attrs() {
    let mut fed = Federation::new(Topology::single_site(40, 0.5), 8);
    let members: Vec<NodeAddr> = (0..12).map(NodeAddr).collect();
    for &m in &members {
        fed.post_resource(m, "instance", AttrValue::str("m3.large"));
    }
    fed.settle();
    let cmd = fed.admin_multicast(
        NodeAddr(30),
        SiteId(0),
        "instance=m3.large",
        "price",
        AttrValue::Num(0.13),
    );
    fed.settle();
    for &m in &members {
        assert_eq!(
            fed.node(m).host.attrs.get("price"),
            Some(&AttrValue::Num(0.13)),
            "{m} missed the admin command"
        );
        assert!(
            fed.events(m)
                .iter()
                .any(|e| matches!(e, RbayEvent::AdminDelivered { cmd_id, .. } if *cmd_id == cmd)),
            "{m} has no delivery event"
        );
    }
}

#[test]
fn site_scoped_trees_isolate_admin_traffic() {
    let mut fed = Federation::new(Topology::aws_ec2_8_sites(8), 9);
    // Same tree name in two sites — separate scoped trees.
    let v_nodes = fed.sim().topology().nodes_of_site(SiteId(0));
    let t_nodes = fed.sim().topology().nodes_of_site(SiteId(5));
    fed.post_resource(v_nodes[1], "instance", AttrValue::str("c3.large"));
    fed.post_resource(t_nodes[1], "instance", AttrValue::str("c3.large"));
    fed.settle();
    // Multicast only into Virginia's tree.
    fed.admin_multicast(
        v_nodes[0],
        SiteId(0),
        "instance=c3.large",
        "maintenance",
        AttrValue::Bool(true),
    );
    fed.settle();
    assert_eq!(
        fed.node(v_nodes[1]).host.attrs.get("maintenance"),
        Some(&AttrValue::Bool(true))
    );
    assert_eq!(
        fed.node(t_nodes[1]).host.attrs.get("maintenance"),
        None,
        "Tokyo member must not see Virginia's site-scoped command"
    );
}

#[test]
fn dynamic_tree_membership_tracks_utilization() {
    let mut fed = Federation::new(Topology::single_site(30, 0.5), 10);
    let node = NodeAddr(3);
    fed.register_dynamic_tree(node, "CPU_utilization<10");
    fed.install_node_aa(
        node,
        r#"
        function onSubscribe(caller, topic)
            return utilization ~= nil and utilization < 10
        end
        function onUnsubscribe(caller, topic)
            return utilization ~= nil and utilization >= 10
        end
    "#,
    );
    fed.settle();
    // Low utilization: the maintenance round joins the tree.
    let now = fed.sim().now();
    fed.sim_mut().schedule_call(now, node, |a, _| {
        a.host
            .node_aa
            .as_ref()
            .unwrap()
            .set_global("utilization", aascript::Value::Num(4.0));
    });
    maintain(&mut fed, 2);
    let topic = fed
        .node(node)
        .host
        .tree_topic("CPU_utilization<10", SiteId(0));
    assert!(
        fed.node(node).scribe.topic(topic).is_some(),
        "node should have joined the low-utilization tree"
    );
    // The node becomes overloaded: next rounds leave the tree.
    let now = fed.sim().now();
    fed.sim_mut().schedule_call(now, node, |a, _| {
        a.host
            .node_aa
            .as_ref()
            .unwrap()
            .set_global("utilization", aascript::Value::Num(95.0));
    });
    maintain(&mut fed, 2);
    let st = fed.node(node).scribe.topic(topic);
    assert!(
        st.is_none() || !st.unwrap().subscribed,
        "overloaded node must have unsubscribed"
    );
}

#[test]
fn hybrid_naming_links_minor_attributes_to_major_trees() {
    let mut fed = Federation::new(Topology::single_site(40, 0.5), 11);
    // Link GPU_model to the major GPU tree on every node.
    for i in 0..40u32 {
        let now = fed.sim().now();
        fed.sim_mut().schedule_call(now, NodeAddr(i), |a, _| {
            a.host.naming.link("GPU_model", "GPU=true");
        });
    }
    fed.settle();
    // The posting node has a specific model; it lands in the major tree.
    fed.post_resource(NodeAddr(6), "GPU_model", AttrValue::str("K80"));
    fed.update_attr(NodeAddr(6), "GPU", AttrValue::Bool(true));
    fed.settle();
    maintain(&mut fed, 4);
    // Querying by the minor attribute routes to the major tree and filters
    // residually.
    let q = fed
        .issue_query(
            NodeAddr(22),
            r#"SELECT 1 FROM * WHERE GPU_model = "K80""#,
            None,
        )
        .unwrap();
    fed.settle();
    let rec = fed.query_record(NodeAddr(22), q).unwrap();
    assert!(rec.satisfied, "{rec:?}");
    assert_eq!(rec.result[0].addr, NodeAddr(6));
}

#[test]
fn tree_subscription_events_are_recorded() {
    let mut fed = Federation::new(Topology::single_site(30, 0.5), 12);
    fed.post_resource(NodeAddr(8), "SSD", AttrValue::Bool(true));
    fed.settle();
    let evs = fed.events(NodeAddr(8));
    assert!(
        evs.iter().any(|e| matches!(
            e,
            RbayEvent::Subscribed { requested_at, attached_at, .. }
                if attached_at >= requested_at
        )),
        "no subscription event recorded: {evs:?}"
    );
}

#[test]
fn queries_complete_even_when_nothing_matches() {
    let mut fed = Federation::new(Topology::single_site(20, 0.5), 13);
    fed.settle();
    let q = fed
        .issue_query(
            NodeAddr(0),
            "SELECT 1 FROM * WHERE Unobtainium = true",
            None,
        )
        .unwrap();
    fed.settle();
    let rec = fed.query_record(NodeAddr(0), q).unwrap();
    assert!(rec.completed_at.is_some(), "must terminate");
    assert!(!rec.satisfied);
    assert!(rec.result.is_empty());
}

#[test]
fn query_ids_match_federation_mirror() {
    let mut fed = Federation::new(Topology::single_site(10, 0.5), 14);
    fed.settle();
    let ids: Vec<QueryId> = (0..3)
        .map(|_| {
            fed.issue_query(NodeAddr(1), "SELECT 1 FROM * WHERE x = 1", None)
                .unwrap()
        })
        .collect();
    fed.settle();
    for id in ids {
        assert!(fed.query_record(NodeAddr(1), id).is_some());
    }
}

/// The paper's §III.B enhancement: public/private key pairs instead of
/// plaintext passwords. The AA stores the public key (`sha1hex(secret)`);
/// the query authenticates by presenting the secret, which the handler
/// hashes and compares.
#[test]
fn keypair_policy_via_sha1hex_native() {
    let mut fed = Federation::new(Topology::single_site(40, 0.5), 16);
    fed.post_resource(NodeAddr(8), "GPU", AttrValue::Bool(true));
    // sha1("secret-key-joe") precomputed by the admin when issuing Joe his
    // credential.
    let pubkey: String = pastry::sha1::sha1(b"secret-key-joe")
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect();
    fed.install_node_aa(
        NodeAddr(8),
        &format!(
            r#"AA = {{PubKey = "{pubkey}"}}
               function onGet(caller, secret)
                   if secret ~= nil and sha1hex(secret) == AA.PubKey then
                       return true
                   end
                   return nil
               end"#
        ),
    );
    fed.settle();
    fed.run_maintenance(4, SimDuration::from_millis(200));
    fed.settle();

    let bad = fed
        .issue_query(
            NodeAddr(20),
            "SELECT 1 FROM * WHERE GPU = true",
            Some("stolen-pubkey"),
        )
        .unwrap();
    fed.settle();
    assert!(!fed.query_record(NodeAddr(20), bad).unwrap().satisfied);

    let good = fed
        .issue_query(
            NodeAddr(20),
            "SELECT 1 FROM * WHERE GPU = true",
            Some("secret-key-joe"),
        )
        .unwrap();
    fed.settle();
    let rec = fed.query_record(NodeAddr(20), good).unwrap();
    assert!(rec.satisfied, "{rec:?}");
    assert_eq!(rec.result[0].addr, NodeAddr(8));
}

/// Grace's policy from the paper's Fig. 1: "resources available to others
/// only after 10:00 PM". The handler reads the injected virtual clock
/// (`now_ms`), so the same query is denied before the window opens and
/// granted after.
#[test]
fn time_window_policy_follows_the_virtual_clock() {
    let mut fed = Federation::new(Topology::single_site(30, 0.5), 17);
    fed.post_resource(NodeAddr(6), "GPU", AttrValue::Bool(true));
    fed.install_node_aa(
        NodeAddr(6),
        r#"
        -- Shareable only after t = 60 s of simulation time.
        AA = {OpensAtMs = 60000}
        function onGet(caller, password)
            if now_ms >= AA.OpensAtMs then
                return true
            end
            return nil
        end
    "#,
    );
    fed.settle();
    fed.run_maintenance(4, SimDuration::from_millis(200));
    fed.settle();

    let early = fed
        .issue_query(NodeAddr(20), "SELECT 1 FROM * WHERE GPU = true", None)
        .unwrap();
    fed.settle();
    assert!(
        !fed.query_record(NodeAddr(20), early).unwrap().satisfied,
        "window not yet open"
    );

    // Advance the virtual clock past the opening time and retry.
    fed.run_until(simnet::SimTime::from_secs(61));
    let late = fed
        .issue_query(NodeAddr(20), "SELECT 1 FROM * WHERE GPU = true", None)
        .unwrap();
    fed.settle();
    let rec = fed.query_record(NodeAddr(20), late).unwrap();
    assert!(rec.satisfied, "window open: {rec:?}");
    assert_eq!(rec.result[0].addr, NodeAddr(6));
}

/// Handlers can read the node's own key-value map through the injected
/// `attrs` table — e.g. refusing access while the node is busy.
#[test]
fn handlers_read_the_attribute_map() {
    let mut fed = Federation::new(Topology::single_site(30, 0.5), 18);
    fed.post_resource(NodeAddr(4), "GPU", AttrValue::Bool(true));
    fed.update_attr(NodeAddr(4), "CPU_utilization", AttrValue::Num(95.0));
    fed.install_node_aa(
        NodeAddr(4),
        r#"
        function onGet(caller, password)
            -- Refuse while this node is loaded, whatever the query asks.
            if attrs.CPU_utilization ~= nil and attrs.CPU_utilization > 90 then
                return nil
            end
            return true
        end
    "#,
    );
    fed.settle();
    fed.run_maintenance(4, SimDuration::from_millis(200));
    fed.settle();

    let busy = fed
        .issue_query(NodeAddr(15), "SELECT 1 FROM * WHERE GPU = true", None)
        .unwrap();
    fed.settle();
    assert!(!fed.query_record(NodeAddr(15), busy).unwrap().satisfied);

    fed.update_attr(NodeAddr(4), "CPU_utilization", AttrValue::Num(10.0));
    fed.settle();
    let horizon = fed.sim().now() + SimDuration::from_secs(8);
    fed.run_until(horizon);
    let idle = fed
        .issue_query(NodeAddr(15), "SELECT 1 FROM * WHERE GPU = true", None)
        .unwrap();
    fed.settle();
    assert!(fed.query_record(NodeAddr(15), idle).unwrap().satisfied);
}

/// With administrative isolation off (the Fig. 11 deployment: per-site
/// tree names, global rendezvous), the query protocol still answers
/// cross-site composite queries correctly.
#[test]
fn queries_work_without_site_isolation() {
    use rbay_core::RbayConfig;
    let cfg = RbayConfig {
        site_isolation: false,
        commit_results: false, // this test re-queries the same inventory
        ..RbayConfig::default()
    };
    let mut fed = Federation::with_config(Topology::aws_ec2_8_sites(10), 57, cfg);
    for s in 0..8u16 {
        let n = fed.sim().topology().nodes_of_site(SiteId(s))[3];
        fed.post_resource(n, "GPU", AttrValue::Bool(true));
    }
    fed.settle();
    maintain(&mut fed, 5);

    let q = fed
        .issue_query(NodeAddr(1), "SELECT 8 FROM * WHERE GPU = true", None)
        .unwrap();
    fed.settle();
    let rec = fed.query_record(NodeAddr(1), q).unwrap();
    assert!(rec.satisfied, "{rec:?}");
    let mut sites: Vec<u16> = rec.result.iter().map(|c| c.site.0).collect();
    sites.sort();
    assert_eq!(sites, (0..8).collect::<Vec<u16>>());

    // Wait out the released reservations, then check that site-restricted
    // FROM clauses still filter correctly even though routing is global.
    let horizon = fed.sim().now() + SimDuration::from_secs(8);
    fed.run_until(horizon);
    let q = fed
        .issue_query(
            NodeAddr(1),
            r#"SELECT 8 FROM "Ireland" WHERE GPU = true"#,
            None,
        )
        .unwrap();
    fed.settle();
    let rec = fed.query_record(NodeAddr(1), q).unwrap();
    assert_eq!(rec.result.len(), 1);
    assert_eq!(rec.result[0].site, SiteId(3));
}
