//! Policy scenarios from the paper's motivation (Fig. 1): history/credit
//! checks, rate limiting, lease expiry — all expressed as admin-written
//! active-attribute handlers, enforced during live queries.

use rbay_core::{Federation, RbayConfig};
use rbay_query::AttrValue;
use simnet::{NodeAddr, SimDuration, SimTime, Topology};

/// These scenarios re-query the same node repeatedly; the customers are
/// "window shopping", so queries must not commit (hold) what they find.
fn fed(nodes: usize, seed: u64) -> Federation {
    let cfg = RbayConfig {
        commit_results: false,
        ..RbayConfig::default()
    };
    Federation::with_config(Topology::single_site(nodes, 0.5), seed, cfg)
}

fn maintain(fed: &mut Federation, rounds: u32) {
    fed.run_maintenance(rounds, SimDuration::from_millis(200));
    fed.settle();
}

fn wait_out_reservations(fed: &mut Federation) {
    let horizon = fed.sim().now() + SimDuration::from_secs(8);
    fed.run_until(horizon);
}

/// Kevin's policy: "prefers users who have good history logs, e.g. no
/// worrisome behavior". The AA keeps a per-caller strike table; three
/// strikes and the caller is refused.
#[test]
fn history_credit_check_with_strikes() {
    let mut fed = fed(30, 41);
    fed.post_resource(NodeAddr(3), "Cassandra", AttrValue::str("2.0"));
    fed.install_node_aa(
        NodeAddr(3),
        r#"
        AA = {Strikes = {}}
        function onGet(caller, password)
            local s = AA.Strikes[caller]
            if s ~= nil and s >= 3 then
                return nil
            end
            -- A missing password is worrisome behavior: one strike.
            if password == nil then
                if s == nil then s = 0 end
                AA.Strikes[caller] = s + 1
            end
            return true
        end
    "#,
    );
    fed.settle();
    maintain(&mut fed, 4);

    // Three password-less queries succeed but accumulate strikes...
    for round in 0..3 {
        let id = fed
            .issue_query(
                NodeAddr(9),
                r#"SELECT 1 FROM * WHERE Cassandra = "2.0""#,
                None,
            )
            .unwrap();
        fed.settle();
        assert!(
            fed.query_record(NodeAddr(9), id).unwrap().satisfied,
            "round {round} still within tolerance"
        );
        wait_out_reservations(&mut fed);
    }
    // ...the fourth is refused.
    let id = fed
        .issue_query(
            NodeAddr(9),
            r#"SELECT 1 FROM * WHERE Cassandra = "2.0""#,
            None,
        )
        .unwrap();
    fed.settle();
    assert!(
        !fed.query_record(NodeAddr(9), id).unwrap().satisfied,
        "three strikes and out"
    );
    // A different caller is unaffected (per-caller history).
    let id = fed
        .issue_query(
            NodeAddr(14),
            r#"SELECT 1 FROM * WHERE Cassandra = "2.0""#,
            None,
        )
        .unwrap();
    fed.settle();
    assert!(fed.query_record(NodeAddr(14), id).unwrap().satisfied);
}

/// A rate limiter: the AA admits at most two grants per clock window,
/// combining persistent handler state with the injected virtual clock.
#[test]
fn rate_limiting_policy_uses_the_clock() {
    let mut fed = fed(30, 43);
    fed.post_resource(NodeAddr(5), "GPU", AttrValue::Bool(true));
    fed.install_node_aa(
        NodeAddr(5),
        r#"
        AA = {WindowMs = 30000, WindowStart = 0, Grants = 0}
        function onGet(caller, password)
            if now_ms - AA.WindowStart > AA.WindowMs then
                AA.WindowStart = now_ms
                AA.Grants = 0
            end
            if AA.Grants >= 2 then
                return nil
            end
            AA.Grants = AA.Grants + 1
            return true
        end
    "#,
    );
    fed.settle();
    maintain(&mut fed, 4);

    let mut outcomes = Vec::new();
    for _ in 0..3 {
        let id = fed
            .issue_query(NodeAddr(20), "SELECT 1 FROM * WHERE GPU = true", None)
            .unwrap();
        fed.settle();
        outcomes.push(fed.query_record(NodeAddr(20), id).unwrap().satisfied);
        wait_out_reservations(&mut fed);
    }
    assert_eq!(outcomes[0..2], [true, true], "first two within budget");
    // The third query ran after ~16s of reservation waits; if still
    // inside the window it is denied. Use explicit timing instead: query
    // right away in a fresh window far in the future.
    fed.run_until(SimTime::from_secs(120));
    let id = fed
        .issue_query(NodeAddr(20), "SELECT 1 FROM * WHERE GPU = true", None)
        .unwrap();
    fed.settle();
    assert!(
        fed.query_record(NodeAddr(20), id).unwrap().satisfied,
        "a fresh window admits again"
    );
}

/// A lease policy: `onTimer` expires the sharing offer by rewriting the
/// AA's own state once the virtual clock passes the lease end.
#[test]
fn lease_expiry_via_on_timer() {
    let mut fed = fed(30, 45);
    fed.post_resource(NodeAddr(7), "FPGA", AttrValue::Bool(true));
    fed.install_node_aa(
        NodeAddr(7),
        r#"
        AA = {LeaseEndMs = 30000, Open = true}
        function onTimer()
            if now_ms > AA.LeaseEndMs then
                AA.Open = false
            end
        end
        function onGet(caller, password)
            if AA.Open then
                return true
            end
            return nil
        end
    "#,
    );
    fed.settle();
    maintain(&mut fed, 2);

    let id = fed
        .issue_query(NodeAddr(12), "SELECT 1 FROM * WHERE FPGA = true", None)
        .unwrap();
    fed.settle();
    assert!(
        fed.query_record(NodeAddr(12), id).unwrap().satisfied,
        "lease active"
    );
    wait_out_reservations(&mut fed);

    // Push the clock past the lease end and run the periodic timer.
    fed.run_until(SimTime::from_secs(31));
    maintain(&mut fed, 2);
    let id = fed
        .issue_query(NodeAddr(12), "SELECT 1 FROM * WHERE FPGA = true", None)
        .unwrap();
    fed.settle();
    assert!(
        !fed.query_record(NodeAddr(12), id).unwrap().satisfied,
        "lease expired via onTimer"
    );
}

/// A buggy handler is contained: its script error denies access (fail
/// closed) without disturbing the node or the rest of the query.
#[test]
fn buggy_handlers_fail_closed() {
    let mut fed = fed(30, 47);
    fed.post_resource(NodeAddr(2), "GPU", AttrValue::Bool(true));
    fed.post_resource(NodeAddr(8), "GPU", AttrValue::Bool(true));
    // Node 2's handler indexes a nil table — a runtime error on every get.
    fed.install_node_aa(
        NodeAddr(2),
        r#"
        function onGet(caller, password)
            return missing_table.field
        end
    "#,
    );
    fed.settle();
    maintain(&mut fed, 4);

    let id = fed
        .issue_query(NodeAddr(20), "SELECT 2 FROM * WHERE GPU = true", None)
        .unwrap();
    fed.settle();
    let rec = fed.query_record(NodeAddr(20), id).unwrap();
    // Only the healthy node can be granted.
    assert!(!rec.satisfied);
    assert_eq!(rec.result.len(), 1);
    assert_eq!(rec.result[0].addr, NodeAddr(8));
    assert!(
        fed.node(NodeAddr(2)).host.aa_errors > 0,
        "error was counted"
    );
}

/// The same buggy logic wrapped in `pcall` lets the admin degrade
/// gracefully instead of failing closed.
#[test]
fn pcall_lets_policies_catch_their_own_bugs() {
    let mut fed = fed(30, 49);
    fed.post_resource(NodeAddr(4), "GPU", AttrValue::Bool(true));
    fed.install_node_aa(
        NodeAddr(4),
        r#"
        function fragile_check(caller)
            return missing_table.field
        end
        function onGet(caller, password)
            local r = pcall(fragile_check, caller)
            if r.ok then
                return r.value
            end
            -- The fancy check failed; fall back to allowing access.
            return true
        end
    "#,
    );
    fed.settle();
    maintain(&mut fed, 4);

    let id = fed
        .issue_query(NodeAddr(21), "SELECT 1 FROM * WHERE GPU = true", None)
        .unwrap();
    fed.settle();
    assert!(fed.query_record(NodeAddr(21), id).unwrap().satisfied);
}
