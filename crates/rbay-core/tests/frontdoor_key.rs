//! Property tests for the front-door cache key (`frontdoor::query_key`).
//!
//! Semantically identical Zql queries — predicate order, whitespace,
//! keyword case, equivalent literal spellings (`10` vs `10.0`), site-name
//! case and duplication — must map to the same key, and distinct
//! normalized queries must not collide on the generated corpus.

use proptest::collection::vec;
use proptest::option;
use proptest::prelude::*;
use rbay_core::query_key;
use rbay_query::{parse_query, AttrValue, CmpOp, FromClause, Predicate, Query, SortDir};
use std::collections::BTreeMap;

fn attr_name() -> impl Strategy<Value = String> {
    "[A-Za-z_][A-Za-z0-9_]{0,10}".prop_filter("not a keyword", |s| {
        ![
            "SELECT", "FROM", "WHERE", "AND", "GROUPBY", "ASC", "DESC", "true", "false", "NodeId",
        ]
        .iter()
        .any(|k| k.eq_ignore_ascii_case(s))
    })
}

fn literal() -> impl Strategy<Value = AttrValue> {
    prop_oneof![
        (-100_000i64..100_000).prop_map(|n| AttrValue::Num(n as f64)),
        "[A-Za-z0-9._-]{0,12}".prop_map(AttrValue::Str),
        any::<bool>().prop_map(AttrValue::Bool),
    ]
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn predicate() -> impl Strategy<Value = Predicate> {
    (attr_name(), cmp_op(), literal()).prop_map(|(attr, op, value)| Predicate { attr, op, value })
}

fn query() -> impl Strategy<Value = Query> {
    (
        1u32..1000,
        prop_oneof![
            Just(FromClause::AllSites),
            vec("[A-Za-z][A-Za-z0-9_]{0,8}", 1..4).prop_map(FromClause::Sites),
        ],
        vec(predicate(), 0..4),
        option::of((
            attr_name(),
            prop_oneof![Just(SortDir::Asc), Just(SortDir::Desc)],
        )),
    )
        .prop_map(|(k, from, predicates, order_by)| Query {
            k,
            from,
            predicates,
            order_by,
        })
}

/// Renders `q` back to Zql with cosmetic noise: permuted predicates,
/// extra whitespace, mixed keyword case, duplicated / re-cased sites,
/// and `N.0` spellings for integer literals. The result still parses to
/// a semantically identical query.
fn noisy_render(q: &Query, rot: usize, shout: bool, pad: bool) -> String {
    let ws = if pad { "   " } else { " " };
    let kw = |s: &str| {
        if shout {
            s.to_uppercase()
        } else {
            s.to_lowercase()
        }
    };
    let mut s = format!("{}{ws}{}{ws}{}{ws}", kw("SELECT"), q.k, kw("FROM"));
    match &q.from {
        FromClause::AllSites => s.push('*'),
        FromClause::Sites(sites) => {
            let mut rendered: Vec<String> = sites
                .iter()
                .map(|site| {
                    if shout {
                        format!("\"{}\"", site.to_uppercase())
                    } else {
                        format!("\"{}\"", site.to_lowercase())
                    }
                })
                .collect();
            // Duplicate the first site: FROM a, b ≡ FROM a, b, a.
            rendered.push(rendered[0].clone());
            let n = rendered.len();
            rendered.rotate_left(rot % n);
            s.push_str(&rendered.join(&format!(",{ws}")));
        }
    }
    if !q.predicates.is_empty() {
        let mut preds: Vec<String> = q
            .predicates
            .iter()
            .map(|p| {
                let val = match &p.value {
                    AttrValue::Num(n) if n.fract() == 0.0 && pad => format!("{n:.1}"),
                    AttrValue::Str(s) => format!("\"{s}\""),
                    v => v.to_string(),
                };
                format!("{}{ws}{}{ws}{}", p.attr, p.op.as_str(), val)
            })
            .collect();
        let n = preds.len();
        preds.rotate_left(rot % n);
        s.push_str(&format!(
            "{ws}{}{ws}{}",
            kw("WHERE"),
            preds.join(&format!("{ws}{}{ws}", kw("AND")))
        ));
    }
    if let Some((attr, dir)) = &q.order_by {
        let d = match dir {
            SortDir::Asc => kw("ASC"),
            SortDir::Desc => kw("DESC"),
        };
        s.push_str(&format!("{ws}{}{ws}{attr}{ws}{d}", kw("GROUPBY")));
    }
    s
}

/// The canonical normal form a key is supposed to fingerprint: sorted
/// deduped predicates (via canonical literal rendering), lowercased
/// sorted deduped sites, k, and order_by.
fn normal_form(q: &Query) -> String {
    let mut sites = match &q.from {
        FromClause::AllSites => vec!["*".to_string()],
        FromClause::Sites(s) => s.iter().map(|x| x.to_lowercase()).collect(),
    };
    sites.sort();
    sites.dedup();
    let mut preds: Vec<String> = q
        .predicates
        .iter()
        .map(|p| format!("{}\t{}\t{}", p.attr, p.op.as_str(), p.value.canonical()))
        .collect();
    preds.sort();
    preds.dedup();
    format!(
        "{}|{:?}|{:?}|{:?}",
        q.k,
        sites,
        preds,
        q.order_by
            .as_ref()
            .map(|(a, d)| (a.clone(), matches!(d, SortDir::Asc)))
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Cosmetic rewrites of the same query — reordered predicates, extra
    /// whitespace, keyword case, `10.0` for `10`, re-cased and duplicated
    /// site lists — all hash to one cache key.
    #[test]
    fn equivalent_spellings_share_a_key(
        q in query(),
        rot in 0usize..8,
        shout in any::<bool>(),
        pad in any::<bool>(),
    ) {
        let baseline = query_key(&q);
        let noisy = noisy_render(&q, rot, shout, pad);
        let reparsed = parse_query(&noisy)
            .map_err(|e| TestCaseError::fail(format!("{e} for `{noisy}`")))?;
        prop_assert_eq!(query_key(&reparsed), baseline);
    }

    /// Two queries share a key only when their normal forms agree: the
    /// key never conflates semantically different queries.
    #[test]
    fn distinct_queries_do_not_collide(a in query(), b in query()) {
        if query_key(&a) == query_key(&b) {
            prop_assert_eq!(normal_form(&a), normal_form(&b));
        }
    }

    /// Corpus-level check: within one batch of generated queries, keys
    /// partition the corpus exactly as normal forms do.
    #[test]
    fn keys_partition_like_normal_forms(qs in vec(query(), 1..20)) {
        let mut by_key: BTreeMap<String, String> = BTreeMap::new();
        for q in &qs {
            let nf = normal_form(q);
            if let Some(prev) = by_key.insert(query_key(q), nf.clone()) {
                prop_assert_eq!(prev, nf);
            }
        }
    }
}
