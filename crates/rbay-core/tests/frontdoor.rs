//! End-to-end front-door tests over the full simulated stack: cache hits,
//! single-flight coalescing, admission shedding, geo redirection, and —
//! the acceptance criterion — no stale result after an invalidation
//! multicast propagates.

use rbay_core::frontdoor::FrontdoorConfig;
use rbay_core::{Federation, FrontdoorOutcome, RbayConfig};
use rbay_query::AttrValue;
use simnet::{NodeAddr, SimDuration, SiteId, Topology};

fn fd_config() -> FrontdoorConfig {
    FrontdoorConfig {
        cache_ttl: SimDuration::from_millis(60_000),
        cache_capacity: 64,
        max_pending: 8,
        retry_after: SimDuration::from_millis(100),
    }
}

/// A single-site federation with GPU resources on the given nodes and the
/// front door live on the site's gateways.
fn gpu_federation(holders: &[u32], seed: u64) -> Federation {
    let cfg = RbayConfig {
        frontdoor_invalidation: true,
        ..RbayConfig::default()
    };
    let mut fed = Federation::with_config(Topology::single_site(40, 0.5), seed, cfg);
    for h in holders {
        fed.post_resource(NodeAddr(*h), "GPU", AttrValue::Bool(true));
    }
    fed.settle();
    fed.run_maintenance(4, SimDuration::from_millis(200));
    fed.enable_frontdoor(fd_config());
    fed.settle();
    fed.run_maintenance(2, SimDuration::from_millis(200));
    fed.settle();
    fed
}

#[test]
fn second_identical_query_is_a_cache_hit() {
    let mut fed = gpu_federation(&[10, 20], 1);
    let zql = "SELECT 2 FROM * WHERE GPU = true";
    let first = fed.frontdoor_query(NodeAddr(5), zql, None).unwrap();
    let FrontdoorOutcome::Pending {
        gateway,
        id,
        coalesced,
    } = first
    else {
        panic!("cold cache must walk: {first:?}");
    };
    assert!(!coalesced);
    fed.settle();
    let rec = fed.query_record(gateway, id).unwrap();
    assert!(rec.satisfied, "walk failed: {rec:?}");

    // Same question, different client, sloppier spelling: cache hit.
    let again = fed
        .frontdoor_query(NodeAddr(17), "select 2 from * where GPU = true ;", None)
        .unwrap();
    match again {
        FrontdoorOutcome::Cached { result, satisfied } => {
            assert!(satisfied);
            let mut addrs: Vec<u32> = result.iter().map(|c| c.addr.0).collect();
            addrs.sort();
            assert_eq!(addrs, vec![10, 20]);
        }
        other => panic!("expected cached, got {other:?}"),
    }
    let stats = fed.frontdoor_stats(gateway).unwrap();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 1);
    assert_eq!(fed.recorder().global_count("fd_hit"), 0, "obs disabled");
}

#[test]
fn concurrent_identical_queries_coalesce_onto_one_walk() {
    let mut fed = gpu_federation(&[10, 20], 2);
    let zql = "SELECT 1 FROM * WHERE GPU = true";
    let first = fed.frontdoor_query(NodeAddr(5), zql, None).unwrap();
    let FrontdoorOutcome::Pending {
        gateway,
        id,
        coalesced: false,
    } = first
    else {
        panic!("expected a fresh walk: {first:?}");
    };
    // Before the walk completes, two more clients ask the same question.
    for client in [6u32, 7] {
        let next = fed.frontdoor_query(NodeAddr(client), zql, None).unwrap();
        match next {
            FrontdoorOutcome::Pending {
                gateway: g,
                id: shared,
                coalesced,
            } => {
                assert!(coalesced, "identical in-flight query must coalesce");
                assert_eq!(g, gateway);
                assert_eq!(shared, id, "waiters share the leader walk");
            }
            other => panic!("expected coalesce, got {other:?}"),
        }
    }
    fed.settle();
    let rec = fed.query_record(gateway, id).unwrap();
    assert!(rec.satisfied);
    let stats = fed.frontdoor_stats(gateway).unwrap();
    assert_eq!(stats.misses, 1, "one walk served three clients");
    assert_eq!(stats.coalesced, 2);
}

#[test]
fn overload_sheds_with_retry_after_and_recovers() {
    let cfg = RbayConfig {
        frontdoor_invalidation: true,
        ..RbayConfig::default()
    };
    let mut fed = Federation::with_config(Topology::single_site(40, 0.5), 3, cfg);
    for i in 0..8u32 {
        fed.post_resource(NodeAddr(i), &format!("res{i}"), AttrValue::Bool(true));
    }
    fed.settle();
    fed.run_maintenance(4, SimDuration::from_millis(200));
    fed.enable_frontdoor(FrontdoorConfig {
        max_pending: 2,
        ..fd_config()
    });
    fed.settle();

    // Burst of distinct queries without letting any complete: the first
    // two are admitted, the rest shed.
    let mut shed = 0;
    for i in 0..6u32 {
        let out = fed
            .frontdoor_query(
                NodeAddr(30),
                &format!("SELECT 1 FROM * WHERE res{i} = true"),
                None,
            )
            .unwrap();
        match out {
            FrontdoorOutcome::Pending { .. } => {}
            FrontdoorOutcome::Shed { retry_after } => {
                assert_eq!(retry_after, SimDuration::from_millis(100));
                shed += 1;
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    assert_eq!(shed, 4, "max_pending=2 admits two of six");
    // After the in-flight walks drain, admission reopens.
    fed.settle();
    let out = fed
        .frontdoor_query(NodeAddr(30), "SELECT 1 FROM * WHERE res5 = true", None)
        .unwrap();
    assert!(
        matches!(out, FrontdoorOutcome::Pending { .. }),
        "admission must recover after completion: {out:?}"
    );
}

/// The acceptance criterion: once an attribute update propagates, a cached
/// result that depended on it is never served again.
#[test]
fn no_stale_result_after_invalidation_propagates() {
    let mut fed = gpu_federation(&[10, 20], 4);
    let zql = "SELECT 2 FROM * WHERE GPU = true";
    let first = fed.frontdoor_query(NodeAddr(5), zql, None).unwrap();
    let FrontdoorOutcome::Pending { gateway, id, .. } = first else {
        panic!("cold cache must walk");
    };
    fed.settle();
    assert!(fed.query_record(gateway, id).unwrap().satisfied);
    // Prime the cache and prove it serves.
    assert!(matches!(
        fed.frontdoor_query(NodeAddr(6), zql, None).unwrap(),
        FrontdoorOutcome::Cached {
            satisfied: true,
            ..
        }
    ));

    // Node 20's GPU goes away. The update multicasts an invalidation over
    // the `__frontdoor` tree; settle lets it propagate.
    fed.update_attr(NodeAddr(20), "GPU", AttrValue::Bool(false));
    fed.settle();
    let stats = fed.frontdoor_stats(gateway).unwrap();
    assert!(stats.invalidations >= 1, "invalidation reached the gateway");

    // The same query must now re-walk and see the shrunken inventory —
    // a stale cache would still claim two GPUs.
    let after = fed.frontdoor_query(NodeAddr(7), zql, None).unwrap();
    let FrontdoorOutcome::Pending {
        gateway: g2,
        id: id2,
        coalesced: false,
    } = after
    else {
        panic!("stale read: cache served after invalidation: {after:?}");
    };
    fed.settle();
    let rec = fed.query_record(g2, id2).unwrap();
    assert!(!rec.satisfied, "only one GPU remains, k=2 must fail");
    assert!(rec.result.len() < 2, "stale inventory leaked into result");
}

#[test]
fn redirection_targets_the_lowest_rtt_site() {
    let cfg = RbayConfig {
        frontdoor_invalidation: true,
        ..RbayConfig::default()
    };
    let mut fed = Federation::with_config(Topology::aws_ec2_8_sites(6), 5, cfg);
    // Every client is redirected to its own site (the matrix diagonal is
    // always the minimum in Table II).
    let n = fed.sim().topology().node_count() as u32;
    for client in (0..n).step_by(7) {
        let home = fed.sim().topology().site_of(NodeAddr(client));
        assert_eq!(fed.frontdoor_site_for(NodeAddr(client)), home);
    }
    // And the frontdoor gateway used is one of that site's gateways.
    fed.enable_frontdoor(fd_config());
    fed.settle();
    fed.run_maintenance(2, SimDuration::from_millis(200));
    fed.settle();
    fed.post_resource(NodeAddr(1), "GPU", AttrValue::Bool(true));
    fed.settle();
    let out = fed
        .frontdoor_query(NodeAddr(2), "SELECT 1 FROM * WHERE GPU = true", None)
        .unwrap();
    let FrontdoorOutcome::Pending { gateway, .. } = out else {
        panic!("cold cache must walk");
    };
    let gw_site = fed.sim().topology().site_of(gateway);
    assert_eq!(gw_site, SiteId(0), "client 2 lives in site 0");
}

/// The obs plane carries the `fd_*` counter series once enabled.
#[test]
fn obs_counters_flow_for_hits_and_misses() {
    let mut fed = gpu_federation(&[10, 20], 6);
    let _rec = fed.enable_obs(4096);
    let zql = "SELECT 2 FROM * WHERE GPU = true";
    let FrontdoorOutcome::Pending { .. } = fed.frontdoor_query(NodeAddr(5), zql, None).unwrap()
    else {
        panic!("cold cache must walk");
    };
    fed.settle();
    let _ = fed.frontdoor_query(NodeAddr(6), zql, None).unwrap();
    let snap = fed.recorder().snapshot();
    assert_eq!(snap.count("fd_miss"), 1);
    assert_eq!(snap.count("fd_hit"), 1);
    assert_eq!(snap.count("fd_fill"), 1);
}
