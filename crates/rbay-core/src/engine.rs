//! The query engine: the five-step protocol of the paper's Fig. 7, driven
//! from the issuing node.
//!
//! 1. Probe the root of every anchor tree (per target site) for its size.
//! 2. Collect the sizes.
//! 3. Anycast into the smallest tree with a `k`-slot buffer.
//! 4. Tree members check predicates and `onGet`, reserve themselves, and
//!    fill slots until `k` are found or the tree is exhausted.
//! 5. Commit the chosen nodes; release the rest. Conflicts retry under
//!    truncated exponential backoff.

use crate::host::{query_timer_token, Op, RbayHost, TIMER_KIND_RETRY, TIMER_KIND_TIMEOUT};
use crate::types::{
    Candidate, QueryId, QueryPending, QueryRecord, RbayEvent, RbayPayload, SearchState,
};
use rbay_query::{AttrValue, FromClause, Query, SortDir};
use simnet::{SimDuration, SiteId};
use std::cmp::Ordering;
use std::rc::Rc;

/// Orders two optional sort keys: present before absent, then by
/// [`AttrValue::cmp_total`] — an explicit total order (NaN sorts last,
/// kinds rank `Bool < Num < Str`), so the result of a GROUPBY sort does
/// not depend on the arrival order of candidates and `sort_by` can never
/// panic on a totality violation.
fn cmp_keys(a: &Option<AttrValue>, b: &Option<AttrValue>) -> Ordering {
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Greater,
        (Some(_), None) => Ordering::Less,
        (Some(x), Some(y)) => x.cmp_total(y),
    }
}

impl RbayHost {
    /// Resolves a FROM clause to site ids. Unknown site names are dropped
    /// and repeated names deduplicated; use
    /// [`RbayHost::resolve_sites_report`] to also learn which names did
    /// not resolve.
    pub fn resolve_sites(&self, from: &FromClause) -> Vec<SiteId> {
        self.resolve_sites_report(from).0
    }

    /// Resolves a FROM clause to site ids, reporting the unknown names.
    ///
    /// A repeated site name (`FROM "Tokyo", "tokyo"`) resolves once —
    /// duplicating it would double the probe fan-out and make the query
    /// wait on a second answer from the same site. An unknown name
    /// resolves to nothing but is returned in the second component so the
    /// issuer can surface it ([`crate::QueryRecord::unknown_sites`])
    /// instead of silently searching fewer sites than the user asked for.
    pub fn resolve_sites_report(&self, from: &FromClause) -> (Vec<SiteId>, Vec<String>) {
        match from {
            FromClause::AllSites => (
                (0..self.site_names.len() as u16).map(SiteId).collect(),
                Vec::new(),
            ),
            FromClause::Sites(names) => {
                let mut resolved: Vec<SiteId> = Vec::new();
                let mut unknown: Vec<String> = Vec::new();
                for name in names {
                    match self
                        .site_names
                        .iter()
                        .position(|s| s.eq_ignore_ascii_case(name))
                    {
                        Some(i) => {
                            let site = SiteId(i as u16);
                            if !resolved.contains(&site) {
                                resolved.push(site);
                            }
                        }
                        None => {
                            if !unknown.iter().any(|u| u.eq_ignore_ascii_case(name)) {
                                unknown.push(name.clone());
                            }
                        }
                    }
                }
                (resolved, unknown)
            }
        }
    }

    /// Issues a query from this node (protocol step 1). Returns its id.
    /// Results arrive asynchronously; read them from
    /// [`RbayHost::queries`] after the simulation settles.
    pub fn issue_query(&mut self, query: Query, password: Option<String>) -> QueryId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = QueryId::new(self.addr, seq);
        let query = Rc::new(query);
        let anchor_trees: Vec<String> = query.anchors().map(|p| self.naming.tree_for(p)).collect();
        let (_, unknown_sites) = self.resolve_sites_report(&query.from);
        let record = QueryRecord {
            id,
            query: Rc::clone(&query),
            anchor_trees,
            password,
            issued_at: self.now,
            completed_at: None,
            attempts: 0,
            result: Vec::new(),
            satisfied: false,
            unknown_sites,
            pending: QueryPending::default(),
        };
        self.queries.insert(id, record);
        self.start_attempt(id);
        id
    }

    /// Launches (or relaunches) the probe fan-out for a query, arming a
    /// per-attempt timeout.
    fn start_attempt(&mut self, id: QueryId) {
        let Some(rec) = self.queries.get(&id) else {
            return;
        };
        let seq = (id.0 & 0xFFFF_FFFF) as u32;
        let node = self.addr;
        let attempt = rec.attempts;
        self.obs.count(node, "query_attempt");
        self.obs.record_with(|at| simnet::ObsEvent::QueryAttempt {
            at,
            node,
            seq,
            attempt,
        });
        self.ops.push_back(Op::Timer {
            delay: self.cfg.query_timeout,
            token: query_timer_token(seq, rec.attempts, TIMER_KIND_TIMEOUT),
        });
        let Some(rec) = self.queries.get(&id) else {
            return;
        };
        let query = Rc::clone(&rec.query);
        let anchors = rec.anchor_trees.clone();
        let sites = self.resolve_sites(&query.from);
        if anchors.is_empty() || sites.is_empty() {
            // Nothing to search: complete unsatisfied immediately.
            self.complete_query(id, Vec::new());
            return;
        }
        let rec = self.queries.get_mut(&id).expect("record exists");
        rec.pending = QueryPending {
            probes: sites
                .iter()
                .map(|s| (*s, vec![None; anchors.len()]))
                .collect(),
            searches: Vec::new(),
            found: Vec::new(),
        };
        let attempt = rec.attempts;
        let my_site = self.site;
        let my_addr = self.addr;
        for site in sites {
            if site == my_site {
                for (i, tree) in anchors.iter().enumerate() {
                    let topic = self.tree_topic(tree, site);
                    self.ops.push_back(Op::Probe {
                        topic,
                        scope: self.routing_scope(site),
                        payload: RbayPayload::SizeProbe {
                            query_id: id,
                            tree_idx: i as u8,
                            reply_to: my_addr,
                            site,
                        },
                    });
                }
            } else {
                let gateway = self.gateway_for(site, attempt);
                self.ops.push_back(Op::Direct {
                    to: gateway,
                    payload: RbayPayload::RemoteProbe {
                        query_id: id,
                        reply_to: my_addr,
                        site,
                        trees: anchors.clone(),
                    },
                });
            }
        }
    }

    /// Records one tree-size probe answer (protocol step 2). When a site
    /// has all its answers, the search step launches there.
    pub fn record_probe(
        &mut self,
        query_id: QueryId,
        tree_idx: u8,
        site: SiteId,
        size: Option<u64>,
        exists: bool,
    ) {
        let Some(rec) = self.queries.get_mut(&query_id) else {
            return;
        };
        if rec.completed_at.is_some() {
            return;
        }
        let Some(entry) = rec.pending.probes.iter_mut().find(|(s, _)| *s == site) else {
            return;
        };
        if let Some(slot) = entry.1.get_mut(tree_idx as usize) {
            *slot = Some((size, exists));
        }
        if !entry.1.iter().all(|s| s.is_some()) {
            return;
        }
        // All probes for this site are in: pick the smallest existing tree.
        let sizes: Vec<(usize, Option<u64>, bool)> = entry
            .1
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let (size, exists) = s.expect("checked complete");
                (i, size, exists)
            })
            .collect();
        rec.pending.probes.retain(|(s, _)| *s != site);
        let best = sizes
            .iter()
            .filter(|(_, _, exists)| *exists)
            .min_by_key(|(_, size, _)| size.unwrap_or(u64::MAX));
        let Some(&(best_idx, _, _)) = best else {
            // No anchor tree exists in this site: it contributes nothing.
            self.maybe_finalize(query_id);
            return;
        };
        let query = Rc::clone(&rec.query);
        let password = rec.password.clone();
        let attempt = rec.attempts;
        rec.pending.searches.push(site);
        let tree = rec.anchor_trees[best_idx].clone();
        let state = SearchState {
            query_id,
            reply_to: self.addr,
            query,
            password,
            slots: Vec::new(),
        };
        if site == self.site {
            let topic = self.tree_topic(&tree, site);
            self.ops.push_back(Op::Anycast {
                topic,
                scope: self.routing_scope(site),
                payload: RbayPayload::Search(state),
            });
        } else {
            let gateway = self.gateway_for(site, attempt);
            self.ops.push_back(Op::Direct {
                to: gateway,
                payload: RbayPayload::RemoteSearch { state, tree },
            });
        }
    }

    /// Records one site's search outcome (protocol step 4 completion).
    pub fn record_site_result(
        &mut self,
        query_id: QueryId,
        site: SiteId,
        slots: Vec<Candidate>,
        _satisfied: bool,
    ) {
        let Some(rec) = self.queries.get_mut(&query_id) else {
            return;
        };
        if rec.completed_at.is_some() {
            // Late result after timeout/finish: free those reservations.
            for c in &slots {
                self.ops.push_back(Op::Direct {
                    to: c.addr,
                    payload: RbayPayload::Release { query_id },
                });
            }
            return;
        }
        // Re-anycast idempotence: a retried query can be answered by both
        // the old root's in-flight search and the promoted replica root.
        // Only one reply per site per attempt counts; surplus reservations
        // are freed so they neither leak slots nor double-count in recall.
        if !rec.pending.searches.contains(&site) {
            for c in &slots {
                self.ops.push_back(Op::Direct {
                    to: c.addr,
                    payload: RbayPayload::Release { query_id },
                });
            }
            return;
        }
        rec.pending.searches.retain(|s| *s != site);
        let mut dup = Vec::new();
        for c in slots {
            if rec.pending.found.iter().any(|f| f.addr == c.addr) {
                dup.push(c.addr);
            } else {
                rec.pending.found.push(c);
            }
        }
        for addr in dup {
            self.ops.push_back(Op::Direct {
                to: addr,
                payload: RbayPayload::Release { query_id },
            });
        }
        self.maybe_finalize(query_id);
    }

    /// Completes the attempt if nothing is outstanding.
    fn maybe_finalize(&mut self, query_id: QueryId) {
        let Some(rec) = self.queries.get(&query_id) else {
            return;
        };
        if rec.completed_at.is_some()
            || !rec.pending.probes.is_empty()
            || !rec.pending.searches.is_empty()
        {
            return;
        }
        self.finalize_attempt(query_id);
    }

    /// Step 5: commit/release, or schedule a backoff retry.
    fn finalize_attempt(&mut self, query_id: QueryId) {
        let Some(rec) = self.queries.get_mut(&query_id) else {
            return;
        };
        let k = rec.query.k as usize;
        let mut found = std::mem::take(&mut rec.pending.found);
        if let Some((_, dir)) = &rec.query.order_by {
            let dir = *dir;
            found.sort_by(|a, b| {
                let ord = cmp_keys(&a.sort_key, &b.sort_key);
                match dir {
                    SortDir::Asc => ord,
                    SortDir::Desc => ord.reverse(),
                }
            });
        }
        if found.len() >= k {
            let (chosen, extra) = found.split_at(k);
            let chosen = chosen.to_vec();
            let commit = self.cfg.commit_results;
            for c in &chosen {
                self.ops.push_back(Op::Direct {
                    to: c.addr,
                    payload: if commit {
                        RbayPayload::Commit { query_id }
                    } else {
                        RbayPayload::Release { query_id }
                    },
                });
            }
            for c in extra {
                self.ops.push_back(Op::Direct {
                    to: c.addr,
                    payload: RbayPayload::Release { query_id },
                });
            }
            self.complete_query(query_id, chosen);
            return;
        }
        // Not enough candidates: release everything and retry with
        // truncated exponential backoff, or give up with a partial result.
        let attempts = {
            let rec = self.queries.get_mut(&query_id).expect("record exists");
            rec.attempts += 1;
            rec.attempts
        };
        for c in &found {
            self.ops.push_back(Op::Direct {
                to: c.addr,
                payload: RbayPayload::Release { query_id },
            });
        }
        if attempts >= self.cfg.max_attempts {
            self.complete_query(query_id, found);
            return;
        }
        // Deterministic pseudo-random slot count in [0, 2^attempts - 1].
        let h = query_id
            .0
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(attempts as u64)
            .rotate_left(17);
        let window = 1u64 << attempts.min(16);
        let slots = h % window;
        let delay = self.cfg.backoff_slot.saturating_mul(slots.max(1));
        self.ops.push_back(Op::Timer {
            delay,
            token: query_timer_token(
                (query_id.0 & 0xFFFF_FFFF) as u32,
                attempts,
                TIMER_KIND_RETRY,
            ),
        });
    }

    fn complete_query(&mut self, query_id: QueryId, result: Vec<Candidate>) {
        let now = self.now;
        let Some(rec) = self.queries.get_mut(&query_id) else {
            return;
        };
        let k = rec.query.k as usize;
        rec.satisfied = result.len() >= k;
        rec.result = result;
        rec.completed_at = Some(now);
        rec.pending = QueryPending::default();
        let satisfied = rec.satisfied;
        self.events.push(RbayEvent::QueryDone {
            query_id,
            issued_at: rec.issued_at,
            completed_at: now,
            satisfied,
        });
        let node = self.addr;
        let seq = (query_id.0 & 0xFFFF_FFFF) as u32;
        self.obs.count(node, "query_done");
        self.obs.record_with(|at| simnet::ObsEvent::QueryDone {
            at,
            node,
            seq,
            satisfied,
        });
        // Front-door completion: a leader walk fills the result cache and
        // releases its single-flight slot (coalesced waiters poll this
        // record directly, so no explicit fan-out message is needed).
        if self.frontdoor.is_some() {
            let (result, attrs) = {
                let rec = &self.queries[&query_id];
                (
                    rec.result.clone(),
                    crate::frontdoor::query_attrs(&rec.query),
                )
            };
            if let Some(fd) = self.frontdoor.as_mut() {
                if fd.complete(query_id, result, satisfied, attrs, now) {
                    self.obs.count(node, "fd_fill");
                }
            }
        }
    }

    /// Handles a query timer (timeout or backoff retry). Timers carry the
    /// attempt they were armed for; firings from superseded attempts are
    /// ignored.
    pub fn on_query_timer(&mut self, seq: u32, attempt: u32, kind: u64) {
        let id = QueryId::new(self.addr, seq);
        let Some(rec) = self.queries.get(&id) else {
            return;
        };
        if rec.completed_at.is_some() || rec.attempts & 0xFF != attempt {
            return;
        }
        match kind {
            TIMER_KIND_RETRY => self.start_attempt(id),
            TIMER_KIND_TIMEOUT => {
                // Release whatever arrived. If attempts remain and the
                // attempt fell short of k, retry — a silent or mid-repair
                // site (e.g. a dead rendezvous root whose successor is
                // still promoting) should not end the query; retries
                // rotate to the site's next gateway and re-anycast along
                // the healed route.
                let k = rec.query.k as usize;
                let found = rec.pending.found.clone();
                for c in &found {
                    self.ops.push_back(Op::Direct {
                        to: c.addr,
                        payload: RbayPayload::Release { query_id: id },
                    });
                }
                let rec = self.queries.get_mut(&id).expect("record exists");
                rec.attempts += 1;
                if found.len() < k && rec.attempts < self.cfg.max_attempts {
                    self.start_attempt(id);
                } else {
                    self.complete_query(id, found);
                }
            }
            _ => {}
        }
    }

    /// The latency of a completed query, if it finished.
    pub fn query_latency(&self, id: QueryId) -> Option<SimDuration> {
        let rec = self.queries.get(&id)?;
        let done = rec.completed_at?;
        Some(done.saturating_since(rec.issued_at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::RbayConfig;
    use aascript::SharedSandbox;
    use pastry::NodeId;
    use rbay_query::parse_query;
    use simnet::{NodeAddr, SimTime};

    fn host_with_sites(n: u16) -> RbayHost {
        RbayHost::new(
            Rc::new(RbayConfig::default()),
            NodeId(1),
            NodeAddr(0),
            SiteId(0),
            SharedSandbox::new(),
            (0..n).map(|i| vec![NodeAddr(i as u32 * 10)]).collect(),
            (0..n).map(|i| format!("site{i}")).collect(),
        )
    }

    fn drain_ops(h: &mut RbayHost) -> Vec<Op> {
        std::mem::take(&mut h.ops).into_iter().collect()
    }

    #[test]
    fn resolve_sites_handles_star_and_names() {
        let h = host_with_sites(3);
        assert_eq!(
            h.resolve_sites(&FromClause::AllSites),
            vec![SiteId(0), SiteId(1), SiteId(2)]
        );
        assert_eq!(
            h.resolve_sites(&FromClause::Sites(vec!["SITE2".into(), "nope".into()])),
            vec![SiteId(2)]
        );
    }

    #[test]
    fn resolve_sites_dedupes_and_reports_unknown() {
        let h = host_with_sites(3);
        // Repeats (case-insensitive) collapse; unknowns are reported once.
        let from = FromClause::Sites(vec![
            "site2".into(),
            "SITE2".into(),
            "site0".into(),
            "nope".into(),
            "NOPE".into(),
            "gone".into(),
        ]);
        let (resolved, unknown) = h.resolve_sites_report(&from);
        assert_eq!(resolved, vec![SiteId(2), SiteId(0)], "first-seen order");
        assert_eq!(unknown, vec!["nope".to_string(), "gone".to_string()]);
        assert_eq!(h.resolve_sites(&from), vec![SiteId(2), SiteId(0)]);
    }

    #[test]
    fn unknown_sites_land_on_the_query_record() {
        let mut h = host_with_sites(2);
        let q = Query {
            k: 1,
            from: FromClause::Sites(vec!["site1".into(), "atlantis".into()]),
            predicates: vec![rbay_query::Predicate {
                attr: "GPU".into(),
                op: rbay_query::CmpOp::Eq,
                value: AttrValue::Bool(true),
            }],
            order_by: None,
        };
        let id = h.issue_query(q, None);
        assert_eq!(h.queries[&id].unknown_sites, vec!["atlantis".to_string()]);
    }

    #[test]
    fn nan_sort_keys_sort_last_regardless_of_arrival_order() {
        let mk = |addr: u32, key: f64| Candidate {
            id: NodeId(addr as u128),
            addr: NodeAddr(addr),
            site: SiteId(0),
            sort_key: Some(AttrValue::Num(key)),
        };
        let run = |order: Vec<Candidate>| {
            let mut h = host_with_sites(1);
            let q = parse_query("SELECT 2 FROM * WHERE a = 1 GROUPBY load ASC").unwrap();
            let id = h.issue_query(q, None);
            drain_ops(&mut h);
            h.record_probe(id, 0, SiteId(0), Some(10), true);
            drain_ops(&mut h);
            h.record_site_result(id, SiteId(0), order, true);
            h.queries[&id]
                .result
                .iter()
                .map(|c| c.addr.0)
                .collect::<Vec<u32>>()
        };
        let a = run(vec![mk(1, f64::NAN), mk(2, 5.0), mk(3, 1.0)]);
        let b = run(vec![mk(3, 1.0), mk(1, f64::NAN), mk(2, 5.0)]);
        assert_eq!(a, vec![3, 2], "NaN never outranks a real key");
        assert_eq!(a, b, "result is arrival-order independent");
    }

    #[test]
    fn issue_query_probes_local_and_remote_sites() {
        let mut h = host_with_sites(2);
        let q = parse_query("SELECT 1 FROM * WHERE GPU = true").unwrap();
        h.issue_query(q, None);
        let ops = drain_ops(&mut h);
        // Local site: direct probe; remote site: RemoteProbe to gateway;
        // plus the timeout timer.
        assert!(ops.iter().any(|o| matches!(o, Op::Probe { .. })));
        assert!(ops.iter().any(|o| matches!(
            o,
            Op::Direct {
                to: NodeAddr(10),
                payload: RbayPayload::RemoteProbe { .. }
            }
        )));
        assert!(ops.iter().any(|o| matches!(o, Op::Timer { .. })));
    }

    #[test]
    fn smallest_existing_tree_wins_the_probe_round() {
        let mut h = host_with_sites(1);
        let q = parse_query("SELECT 1 FROM * WHERE a = 1 AND b = 2").unwrap();
        let id = h.issue_query(q, None);
        drain_ops(&mut h);
        // Tree 0 has 100 members; tree 1 has 5 → search must target tree 1
        // (= "b=2").
        h.record_probe(id, 0, SiteId(0), Some(100), true);
        h.record_probe(id, 1, SiteId(0), Some(5), true);
        let ops = drain_ops(&mut h);
        let anycasts: Vec<&Op> = ops
            .iter()
            .filter(|o| matches!(o, Op::Anycast { .. }))
            .collect();
        assert_eq!(anycasts.len(), 1);
        let Op::Anycast { topic, .. } = anycasts[0] else {
            unreachable!()
        };
        assert_eq!(*topic, h.tree_topic("b=2", SiteId(0)));
    }

    #[test]
    fn missing_trees_complete_queries_unsatisfied() {
        let mut h = host_with_sites(1);
        let q = parse_query("SELECT 1 FROM * WHERE nope = 1").unwrap();
        let id = h.issue_query(q, None);
        drain_ops(&mut h);
        h.record_probe(id, 0, SiteId(0), None, false);
        // With max_attempts retries exhausted only after several rounds;
        // here no tree exists so the site contributes nothing and the
        // attempt finalizes unsatisfied → backoff timer queued.
        let rec = &h.queries[&id];
        assert!(rec.completed_at.is_none());
        assert_eq!(rec.attempts, 1);
        let ops = drain_ops(&mut h);
        assert!(ops.iter().any(|o| matches!(o, Op::Timer { .. })));
    }

    #[test]
    fn results_sort_by_groupby_direction_and_commit_k() {
        let mut h = host_with_sites(1);
        let q = parse_query("SELECT 2 FROM * WHERE a = 1 GROUPBY CPU_utilization DESC").unwrap();
        let id = h.issue_query(q, None);
        drain_ops(&mut h);
        h.record_probe(id, 0, SiteId(0), Some(10), true);
        drain_ops(&mut h);
        let mk = |addr: u32, key: f64| Candidate {
            id: NodeId(addr as u128),
            addr: NodeAddr(addr),
            site: SiteId(0),
            sort_key: Some(AttrValue::Num(key)),
        };
        h.record_site_result(
            id,
            SiteId(0),
            vec![mk(1, 5.0), mk(2, 9.0), mk(3, 7.0)],
            true,
        );
        let rec = &h.queries[&id];
        assert!(rec.satisfied);
        let picked: Vec<u32> = rec.result.iter().map(|c| c.addr.0).collect();
        assert_eq!(picked, vec![2, 3], "DESC: highest keys first");
        let ops = drain_ops(&mut h);
        let commits: Vec<u32> = ops
            .iter()
            .filter_map(|o| match o {
                Op::Direct {
                    to,
                    payload: RbayPayload::Commit { .. },
                } => Some(to.0),
                _ => None,
            })
            .collect();
        let releases: Vec<u32> = ops
            .iter()
            .filter_map(|o| match o {
                Op::Direct {
                    to,
                    payload: RbayPayload::Release { .. },
                } => Some(to.0),
                _ => None,
            })
            .collect();
        assert_eq!(commits, vec![2, 3]);
        assert_eq!(releases, vec![1]);
    }

    #[test]
    fn results_sort_lexicographically_on_string_keys() {
        let mut h = host_with_sites(1);
        let q = parse_query("SELECT 2 FROM * WHERE a = 1 GROUPBY OS ASC").unwrap();
        let id = h.issue_query(q, None);
        drain_ops(&mut h);
        h.record_probe(id, 0, SiteId(0), Some(10), true);
        drain_ops(&mut h);
        let mk = |addr: u32, key: Option<&str>| Candidate {
            id: NodeId(addr as u128),
            addr: NodeAddr(addr),
            site: SiteId(0),
            sort_key: key.map(AttrValue::str),
        };
        h.record_site_result(
            id,
            SiteId(0),
            vec![mk(1, Some("Ubuntu")), mk(2, None), mk(3, Some("CentOS"))],
            true,
        );
        let rec = &h.queries[&id];
        assert!(rec.satisfied);
        let picked: Vec<u32> = rec.result.iter().map(|c| c.addr.0).collect();
        // ASC lexicographic; missing keys sort last.
        assert_eq!(picked, vec![3, 1]);
    }

    #[test]
    fn shortfall_triggers_backoff_then_gives_up_partial() {
        let mut h = host_with_sites(1);
        let q = parse_query("SELECT 5 FROM * WHERE a = 1").unwrap();
        let id = h.issue_query(q, None);
        for round in 1..=h.cfg.max_attempts {
            drain_ops(&mut h);
            h.record_probe(id, 0, SiteId(0), Some(2), true);
            drain_ops(&mut h);
            let only = Candidate {
                id: NodeId(9),
                addr: NodeAddr(9),
                site: SiteId(0),
                sort_key: None,
            };
            h.record_site_result(id, SiteId(0), vec![only], true);
            let rec = &h.queries[&id];
            if round < h.cfg.max_attempts {
                assert!(rec.completed_at.is_none(), "round {round} should retry");
                assert_eq!(rec.attempts, round);
                // The retry timer is armed; simulate its firing.
                let att = h.queries[&id].attempts;
                h.on_query_timer((id.0 & 0xFFFF_FFFF) as u32, att, TIMER_KIND_RETRY);
            } else {
                assert!(rec.completed_at.is_some(), "gave up after max attempts");
                assert!(!rec.satisfied);
                assert_eq!(rec.result.len(), 1, "partial result reported");
            }
        }
    }

    #[test]
    fn timeout_completes_with_what_arrived() {
        let mut h = host_with_sites(2);
        h.now = SimTime::from_millis(100);
        let q = parse_query("SELECT 1 FROM * WHERE a = 1").unwrap();
        let id = h.issue_query(q, None);
        drain_ops(&mut h);
        // Only the local site answers; the remote site never does.
        h.record_probe(id, 0, SiteId(0), Some(3), true);
        drain_ops(&mut h);
        let c = Candidate {
            id: NodeId(3),
            addr: NodeAddr(3),
            site: SiteId(0),
            sort_key: None,
        };
        h.record_site_result(id, SiteId(0), vec![c], true);
        assert!(h.queries[&id].completed_at.is_none(), "site1 still pending");
        h.now = SimTime::from_millis(5_200);
        let att = h.queries[&id].attempts;
        h.on_query_timer((id.0 & 0xFFFF_FFFF) as u32, att, TIMER_KIND_TIMEOUT);
        let rec = &h.queries[&id];
        assert!(rec.completed_at.is_some());
        assert_eq!(rec.result.len(), 1);
        assert!(rec.satisfied, "k=1 was reached despite the missing site");
    }

    #[test]
    fn timeout_with_unsatisfied_partial_retries() {
        let mut h = host_with_sites(2);
        h.now = SimTime::from_millis(100);
        let q = parse_query("SELECT 2 FROM * WHERE a = 1").unwrap();
        let id = h.issue_query(q, None);
        drain_ops(&mut h);
        h.record_probe(id, 0, SiteId(0), Some(3), true);
        drain_ops(&mut h);
        let c = Candidate {
            id: NodeId(3),
            addr: NodeAddr(3),
            site: SiteId(0),
            sort_key: None,
        };
        // One slot arrives, but k=2 and the other site is silent — e.g.
        // its rendezvous root died mid-repair. The timeout must release
        // the partial and re-issue along the healed route, not complete
        // unsatisfied on the first attempt.
        h.record_site_result(id, SiteId(0), vec![c], true);
        h.now = SimTime::from_millis(5_200);
        let att = h.queries[&id].attempts;
        h.on_query_timer((id.0 & 0xFFFF_FFFF) as u32, att, TIMER_KIND_TIMEOUT);
        let rec = &h.queries[&id];
        assert!(rec.completed_at.is_none(), "shortfall must retry");
        assert_eq!(rec.attempts, 1);
        let ops = drain_ops(&mut h);
        assert!(
            ops.iter().any(|o| matches!(
                o,
                Op::Direct {
                    to: NodeAddr(3),
                    payload: RbayPayload::Release { .. }
                }
            )),
            "partial reservation released before the retry"
        );
        assert!(
            ops.iter().any(|o| matches!(o, Op::Probe { .. })),
            "retry re-probes"
        );
    }

    #[test]
    fn duplicate_site_result_is_released_not_double_counted() {
        let mut h = host_with_sites(2);
        let q = parse_query("SELECT 2 FROM * WHERE a = 1").unwrap();
        let id = h.issue_query(q, None);
        drain_ops(&mut h);
        h.record_probe(id, 0, SiteId(0), Some(3), true);
        drain_ops(&mut h);
        let c = |n: u32| Candidate {
            id: NodeId(n as u128),
            addr: NodeAddr(n),
            site: SiteId(0),
            sort_key: None,
        };
        h.record_site_result(id, SiteId(0), vec![c(1)], false);
        assert_eq!(h.queries[&id].pending.found.len(), 1);
        drain_ops(&mut h);
        // The same site answers again — the old root's in-flight reply
        // plus the promoted replica's. The echo must not double-count.
        h.record_site_result(id, SiteId(0), vec![c(1), c(2)], false);
        let rec = &h.queries[&id];
        assert!(rec.completed_at.is_none());
        assert_eq!(rec.pending.found.len(), 1, "echo not double-counted");
        let ops = drain_ops(&mut h);
        let released: Vec<u32> = ops
            .iter()
            .filter_map(|o| match o {
                Op::Direct {
                    to,
                    payload: RbayPayload::Release { .. },
                } => Some(to.0),
                _ => None,
            })
            .collect();
        assert_eq!(released, vec![1, 2], "echoed reservations freed");
    }

    #[test]
    fn late_results_release_reservations() {
        let mut h = host_with_sites(1);
        let q = parse_query("SELECT 1 FROM * WHERE a = 1").unwrap();
        let id = h.issue_query(q, None);
        drain_ops(&mut h);
        h.record_probe(id, 0, SiteId(0), Some(3), true);
        drain_ops(&mut h);
        let c = |n: u32| Candidate {
            id: NodeId(n as u128),
            addr: NodeAddr(n),
            site: SiteId(0),
            sort_key: None,
        };
        h.record_site_result(id, SiteId(0), vec![c(1)], true);
        assert!(h.queries[&id].completed_at.is_some());
        drain_ops(&mut h);
        // A duplicate/late echo now arrives.
        h.record_site_result(id, SiteId(0), vec![c(2)], true);
        let ops = drain_ops(&mut h);
        assert!(ops.iter().any(|o| matches!(
            o,
            Op::Direct {
                to: NodeAddr(2),
                payload: RbayPayload::Release { .. }
            }
        )));
    }
}
