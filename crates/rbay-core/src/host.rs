//! The RBAY node application: the key-value attribute map, the active
//! attribute runtime binding, reservations, and the [`ScribeHost`]
//! callbacks that implement the node-side of the query protocol.
//!
//! Host callbacks never send messages themselves; they queue [`Op`]s which
//! the enclosing actor drains with full access to the Pastry/Scribe state
//! (see [`crate::actor`]).

use crate::frontdoor::{query_key, Frontdoor, FrontdoorConfig, FrontdoorDecision};
use crate::naming::HybridNaming;
use crate::types::{Candidate, QueryId, QueryRecord, RbayEvent, RbayPayload, SearchState};
use aascript::analysis::{has_errors, Diagnostic, LintOptions};
use aascript::{AaInstance, Script, SharedSandbox, Value};
use pastry::NodeId;
use rbay_query::{AttrValue, Query};
use rbay_store::{Store, WalRecord};
use scribe::{AggValue, ScribeHost, TopicId, Visit};
use simnet::obs::{ObsEvent, Recorder};
use simnet::{NodeAddr, SimDuration, SimTime, SiteId, TimerToken};
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

/// Tunables of the RBAY layer.
///
/// ```
/// use rbay_core::RbayConfig;
/// use simnet::SimDuration;
///
/// let cfg = RbayConfig {
///     failure_detection: true,
///     heartbeat_timeout: SimDuration::from_millis(500),
///     ..RbayConfig::default()
/// };
/// assert!(cfg.site_isolation, "isolation is on by default");
/// ```
#[derive(Debug, Clone)]
pub struct RbayConfig {
    /// How long a reservation holds before expiring un-committed
    /// (the paper's "short time window").
    pub reserve_ttl: SimDuration,
    /// Give up waiting for probe/search answers after this long.
    pub query_timeout: SimDuration,
    /// Base slot for the truncated exponential backoff on conflicts.
    pub backoff_slot: SimDuration,
    /// Maximum query attempts before reporting a partial result.
    pub max_attempts: u32,
    /// Instruction budget per AA handler invocation.
    pub aa_budget: u64,
    /// Which aascript engine executes AA handlers. Defaults to the
    /// bytecode VM; the tree-walker remains available as a reference
    /// oracle (and for A/B benchmarking).
    pub aa_engine: aascript::Engine,
    /// Name under which RBAY trees are created (the "creator" of TreeIds).
    pub creator: String,
    /// Whether satisfied queries commit their chosen nodes (step 5). The
    /// latency experiments turn this off so repeated measurement queries
    /// do not exhaust the inventory ("if the customer decides not to take
    /// them, the locks are released").
    pub commit_results: bool,
    /// Administrative isolation (§III.E): when true, per-site trees route
    /// within their site (site-scoped convergence, per-site roots). When
    /// false, trees keep their per-site names but rendezvous on the global
    /// ring — the deployment measured in Fig. 11, where joins and
    /// deliveries traverse cross-region overlay hops.
    pub site_isolation: bool,
    /// Heartbeat-based failure detection: when true, each maintenance
    /// round pings this node's overlay neighbours; a peer that has not
    /// answered within `heartbeat_timeout` is declared failed, its routing
    /// entries removed, and its trees repaired. (Churn handling — the
    /// paper's future-work evaluation, §VI.)
    pub failure_detection: bool,
    /// How long an unanswered heartbeat may stay outstanding.
    pub heartbeat_timeout: SimDuration,
    /// When set, every tree also aggregates statistics of this attribute
    /// alongside its size: `Multi[Count, Mean, Min, Max]` rolled up to the
    /// root ("the average value of all nodes' attributes", §II.B.3).
    pub aggregate_attr: Option<String>,
    /// What install does with `aalint` findings on a submitted AA script.
    pub lint_policy: LintPolicy,
    /// Extra globals this deployment injects into AA environments (via
    /// `set_global`) beyond the standard `now_ms`/`attrs`/`sha1hex`; the
    /// linter treats reads of these as defined.
    pub lint_externs: Vec<String>,
    /// Front-door cache coherence: when true, every `post_resource` /
    /// `update_attr` emits an [`RbayPayload::Invalidate`] multicast over
    /// the site-local `__frontdoor` tree (plus one Direct per remote site's
    /// gateway, which re-multicasts there), so gateway result caches never
    /// serve a result whose inputs changed. Off by default — deployments
    /// without a front door should not pay the write-path fan-out.
    pub frontdoor_invalidation: bool,
}

/// Install-time enforcement level for static analysis of AA scripts
/// (RBAY accepts arbitrary client code into the information plane, so the
/// host vets it before instantiation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintPolicy {
    /// Refuse installation when the linter reports any error-severity
    /// diagnostic (warnings still install, but are recorded).
    Deny,
    /// Install regardless, recording all diagnostics in
    /// [`RbayHost::lint_reports`]. The default: existing deployments keep
    /// working while operators gain visibility.
    #[default]
    Warn,
    /// Skip analysis entirely.
    Off,
}

/// Why an AA script was rejected at install time.
#[derive(Debug)]
pub enum InstallError {
    /// The source failed to parse or compile.
    Compile(aascript::CompileError),
    /// The linter found error-severity diagnostics and the policy is
    /// [`LintPolicy::Deny`].
    Lint(Vec<Diagnostic>),
    /// Top-level code raised while instantiating the script.
    Runtime(aascript::RuntimeError),
}

impl std::fmt::Display for InstallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstallError::Compile(e) => write!(f, "compile error: {e}"),
            InstallError::Lint(diags) => {
                write!(f, "rejected by lint policy:")?;
                for d in diags {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            InstallError::Runtime(e) => write!(f, "instantiation error: {e}"),
        }
    }
}

impl std::error::Error for InstallError {}

/// What [`RbayHost::attach_store`] recovered from a durable store (and
/// what it refused to re-install).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RestoreSummary {
    /// Attributes restored into the key-value map.
    pub attrs: usize,
    /// Handler sources re-compiled, re-linted, and re-installed.
    pub handlers: usize,
    /// Handler sources rejected on restore and quarantined (see
    /// [`RbayHost::quarantined`]).
    pub quarantined: usize,
    /// Tree subscriptions queued for re-join.
    pub subs: usize,
    /// Committed reservations re-held.
    pub committed: usize,
    /// WAL records the store replayed at open.
    pub replay_records: u64,
    /// Wall-clock microseconds the open spent replaying.
    pub replay_micros: u64,
}

impl From<aascript::CompileError> for InstallError {
    fn from(e: aascript::CompileError) -> Self {
        InstallError::Compile(e)
    }
}

impl From<aascript::RuntimeError> for InstallError {
    fn from(e: aascript::RuntimeError) -> Self {
        InstallError::Runtime(e)
    }
}

impl Default for RbayConfig {
    fn default() -> Self {
        RbayConfig {
            reserve_ttl: SimDuration::from_millis(2_000),
            query_timeout: SimDuration::from_millis(5_000),
            backoff_slot: SimDuration::from_millis(100),
            max_attempts: 5,
            aa_budget: 10_000,
            aa_engine: aascript::Engine::default(),
            creator: "rbay".to_owned(),
            commit_results: true,
            site_isolation: true,
            failure_detection: false,
            heartbeat_timeout: SimDuration::from_millis(1_500),
            aggregate_attr: None,
            lint_policy: LintPolicy::default(),
            lint_externs: Vec::new(),
            frontdoor_invalidation: false,
        }
    }
}

/// Name of the per-site control tree carrying front-door cache
/// invalidations (gateways subscribe on [`RbayHost::enable_frontdoor`]).
pub const FRONTDOOR_TREE: &str = "__frontdoor";

/// A deferred operation queued by host callbacks and executed by the actor.
#[derive(Debug)]
pub enum Op {
    /// Subscribe this node to a tree.
    Subscribe {
        /// Tree to join.
        topic: TopicId,
        /// Site scope.
        scope: Option<SiteId>,
    },
    /// Leave a tree.
    Unsubscribe {
        /// Tree to leave.
        topic: TopicId,
    },
    /// Probe a tree root for its aggregate.
    Probe {
        /// Tree to probe.
        topic: TopicId,
        /// Site scope.
        scope: Option<SiteId>,
        /// Probe payload.
        payload: RbayPayload,
    },
    /// Launch an anycast walk.
    Anycast {
        /// Tree to walk.
        topic: TopicId,
        /// Site scope.
        scope: Option<SiteId>,
        /// Walk payload.
        payload: RbayPayload,
    },
    /// Multicast to every member of a tree.
    Multicast {
        /// Tree to cover.
        topic: TopicId,
        /// Site scope.
        scope: Option<SiteId>,
        /// Data payload.
        payload: RbayPayload,
    },
    /// Send a payload straight to a node.
    Direct {
        /// Destination.
        to: NodeAddr,
        /// Payload.
        payload: RbayPayload,
    },
    /// Arm a timer on this node.
    Timer {
        /// Delay from now.
        delay: SimDuration,
        /// Token passed back on expiry.
        token: TimerToken,
    },
    /// (Re-)insert a peer into the Pastry routing state — issued when a
    /// heartbeat proves alive a peer that a false-positive failure repair
    /// may have evicted.
    LearnPeer {
        /// The peer's overlay identity.
        info: pastry::NodeInfo,
    },
}

/// Every this many heartbeat rounds, suspected peers are re-pinged once.
/// A corpse never answers, so the cost is bounded by the suspected-list
/// size; a recovered peer's Pong is the only liveness proof that can
/// reach a suspecter the peer itself does not know about.
pub const SUSPECT_PROBE_PERIOD: u64 = 4;

/// Timer token kinds (low two bits of the token).
pub const TIMER_KIND_TIMEOUT: u64 = 1;
/// Retry (backoff) timer kind.
pub const TIMER_KIND_RETRY: u64 = 2;

/// Builds a query-timer token from a query sequence number, the attempt
/// it belongs to, and the kind. Stale timers from earlier attempts are
/// recognized (and ignored) by the attempt field.
pub fn query_timer_token(seq: u32, attempt: u32, kind: u64) -> TimerToken {
    TimerToken(((seq as u64) << 10) | (((attempt as u64) & 0xFF) << 2) | kind)
}

/// Splits a timer token into `(seq, attempt, kind)`.
pub fn split_timer_token(token: TimerToken) -> (u32, u32, u64) {
    (
        (token.0 >> 10) as u32,
        ((token.0 >> 2) & 0xFF) as u32,
        token.0 & 0b11,
    )
}

/// The per-node RBAY application state.
#[derive(Debug)]
pub struct RbayHost {
    /// Virtual time as of the current dispatch (refreshed by the actor).
    pub now: SimTime,
    /// Shared configuration.
    pub cfg: Rc<RbayConfig>,
    /// This node's ring id.
    pub id: NodeId,
    /// This node's address.
    pub addr: NodeAddr,
    /// This node's site.
    pub site: SiteId,
    /// The key-value map of resource attributes (paper §III.A).
    pub attrs: BTreeMap<String, AttrValue>,
    /// Per-attribute active attributes.
    pub attr_aas: BTreeMap<String, AaInstance>,
    /// The node-level policy AA (invoked when no attribute AA applies).
    pub node_aa: Option<AaInstance>,
    /// Shared sealed stdlib for AA instantiation.
    pub sandbox: SharedSandbox,
    /// Current reservation, if any: `(holder, expires_at)`.
    pub reservation: Option<(QueryId, SimTime)>,
    /// Queries whose reservations were committed on this node.
    pub committed: Vec<QueryId>,
    /// Queries issued by this node.
    pub queries: BTreeMap<QueryId, QueryRecord>,
    /// Local sequence for query ids.
    pub next_seq: u32,
    /// Gateway ("border router") addresses of each site, indexed by
    /// SiteId. Several per site: query retries rotate through them, so a
    /// failed border router only costs one timed-out attempt.
    pub gateways: Vec<Vec<NodeAddr>>,
    /// Site names, indexed by SiteId (resolves FROM clauses).
    pub site_names: Vec<String>,
    /// Names of trees whose membership is decided by AA handlers each
    /// maintenance round (onSubscribe/onUnsubscribe).
    pub dynamic_trees: Vec<String>,
    /// Hybrid naming links (minor attribute → major tree, §III.C).
    pub naming: HybridNaming,
    /// Timestamped events for the measurement harnesses.
    pub events: Vec<RbayEvent>,
    /// Join-request times awaiting their JoinAck (Fig. 11).
    pub sub_requested: BTreeMap<TopicId, SimTime>,
    /// Latest answers to admin stats probes: tree name → (aggregate,
    /// exists, as-of time).
    pub tree_stats: BTreeMap<String, (Option<AggValue>, bool, SimTime)>,
    /// Outstanding heartbeats: peer → send time.
    pub pending_pings: BTreeMap<NodeAddr, SimTime>,
    /// Peers this node has declared failed (for diagnostics and so a
    /// node is only declared once).
    pub suspected: Vec<NodeAddr>,
    /// Peers found dead this dispatch; the actor runs the routing-layer
    /// repairs for them after the callback returns.
    pub newly_failed: Vec<NodeAddr>,
    /// Heartbeat nonce counter.
    next_nonce: u64,
    /// Heartbeat round counter, used to pace suspected-peer probes.
    hb_round: u64,
    /// Deferred operations for the actor to execute.
    pub ops: VecDeque<Op>,
    /// Count of `onGet` denials (diagnostics).
    pub aa_denials: u64,
    /// Count of AA runtime errors (budget exhaustion etc.).
    pub aa_errors: u64,
    /// Lint diagnostics from installed scripts, per install: `(label,
    /// diagnostics)` where `label` is `"node"` or the attribute name.
    /// Populated under [`LintPolicy::Warn`] (all diagnostics) and
    /// [`LintPolicy::Deny`] (warnings of accepted scripts).
    pub lint_reports: Vec<(String, Vec<Diagnostic>)>,
    /// Observability-plane handle; disabled (a no-op) by default.
    pub obs: Recorder,
    /// The query front door (result cache, single-flight, admission
    /// control); `None` unless [`RbayHost::enable_frontdoor`] ran — only
    /// gateway nodes carry one.
    pub frontdoor: Option<Box<Frontdoor>>,
    /// Durable state engine (DESIGN.md §18); `None` for in-memory nodes
    /// (the default — simulator federations never persist). When present,
    /// every mutating path appends a WAL record before acknowledging.
    pub store: Option<Box<Store>>,
    /// Handler sources recovered from the store but rejected on restore
    /// (re-lint under the current policy, or compile/instantiation
    /// failure): `(label, diagnostic)`. The source stays durable so a
    /// policy fix plus a restart can still install it; the running node
    /// simply operates without the handler.
    pub quarantined: Vec<(String, String)>,
}

impl RbayHost {
    /// Creates an idle host.
    pub fn new(
        cfg: Rc<RbayConfig>,
        id: NodeId,
        addr: NodeAddr,
        site: SiteId,
        sandbox: SharedSandbox,
        gateways: Vec<Vec<NodeAddr>>,
        site_names: Vec<String>,
    ) -> Self {
        RbayHost {
            now: SimTime::ZERO,
            cfg,
            id,
            addr,
            site,
            attrs: BTreeMap::new(),
            attr_aas: BTreeMap::new(),
            node_aa: None,
            sandbox,
            reservation: None,
            committed: Vec::new(),
            queries: BTreeMap::new(),
            next_seq: 0,
            gateways,
            site_names,
            dynamic_trees: Vec::new(),
            naming: HybridNaming::new(),
            events: Vec::new(),
            sub_requested: BTreeMap::new(),
            tree_stats: BTreeMap::new(),
            pending_pings: BTreeMap::new(),
            suspected: Vec::new(),
            newly_failed: Vec::new(),
            next_nonce: 0,
            hb_round: 0,
            ops: VecDeque::new(),
            aa_denials: 0,
            aa_errors: 0,
            lint_reports: Vec::new(),
            obs: Recorder::default(),
            frontdoor: None,
            store: None,
            quarantined: Vec::new(),
        }
    }

    /// The scoped topic of the `attr=value` tree in `site`.
    pub fn tree_topic(&self, tree_name: &str, site: SiteId) -> TopicId {
        TopicId::scoped(tree_name, &self.cfg.creator, site)
    }

    /// This node's overlay identity (carried in heartbeat messages).
    pub fn self_info(&self) -> pastry::NodeInfo {
        pastry::NodeInfo {
            id: self.id,
            addr: self.addr,
            site: self.site,
        }
    }

    /// This node's contribution to each tree it subscribes to: its unit
    /// count, plus statistics of the configured aggregate attribute.
    pub fn tree_local_value(&self) -> AggValue {
        match &self.cfg.aggregate_attr {
            None => AggValue::Count(1),
            Some(attr) => {
                let reading = self.attrs.get(attr).and_then(|v| match v {
                    rbay_query::AttrValue::Num(n) => Some(*n),
                    _ => None,
                });
                let (mean, min, max) = match reading {
                    Some(x) => (
                        AggValue::Mean { sum: x, count: 1 },
                        AggValue::Min(x),
                        AggValue::Max(x),
                    ),
                    // Identity contributions: a node without the attribute
                    // affects the count but not the statistics.
                    None => (
                        AggValue::Mean { sum: 0.0, count: 0 },
                        AggValue::Min(f64::INFINITY),
                        AggValue::Max(f64::NEG_INFINITY),
                    ),
                };
                AggValue::Multi(vec![AggValue::Count(1), mean, min, max])
            }
        }
    }

    /// The border router used to reach `site` on the given attempt:
    /// retries rotate through the site's gateway list.
    pub fn gateway_for(&self, site: SiteId, attempt: u32) -> NodeAddr {
        let list = &self.gateways[site.0 as usize];
        list[attempt as usize % list.len()]
    }

    /// The routing scope for operations on `site`'s trees: the site itself
    /// under administrative isolation, or unrestricted global routing.
    pub fn routing_scope(&self, site: SiteId) -> Option<SiteId> {
        if self.cfg.site_isolation {
            Some(site)
        } else {
            None
        }
    }

    /// Appends one durable record — *before* the enclosing mutation is
    /// acknowledged to anyone. A no-op for in-memory hosts, and for
    /// records that would not change the durable image (the store dedupes,
    /// so per-round dynamic-tree re-joins and idempotent updates cost
    /// nothing). Store I/O errors are counted but never crash the host:
    /// the node degrades to in-memory behaviour instead of dropping live
    /// traffic.
    fn persist(&mut self, rec: WalRecord) {
        let Some(store) = self.store.as_mut() else {
            return;
        };
        let snaps_before = store.stats().snapshots;
        match store.append(&rec) {
            Ok(false) => {}
            Ok(true) => {
                let stats = store.stats();
                let node = self.addr;
                self.obs.count(node, "store_append");
                self.obs.record_with(|at| ObsEvent::StoreAppend {
                    at,
                    node,
                    kind: rec.kind(),
                    wal_records: stats.wal_records,
                });
                if stats.snapshots > snaps_before {
                    self.obs.count(node, "store_snapshot");
                    self.obs.record_with(|at| ObsEvent::StoreSnapshot {
                        at,
                        node,
                        snapshots: stats.snapshots,
                    });
                }
            }
            Err(_) => {
                let node = self.addr;
                self.obs.count(node, "store_append_err");
            }
        }
    }

    /// Adopts a durable store and restores its recovered image into this
    /// host: attributes land directly, recovered handler sources are
    /// re-compiled and **re-linted under the current policy** (a source
    /// that was admitted under `Warn` but fails under `Deny` is
    /// quarantined, not installed), subscriptions are queued as joins
    /// (the per-round retry machinery handles pre-join timing), and
    /// committed reservations are re-held. Call before the node joins the
    /// overlay.
    pub fn attach_store(&mut self, store: Box<Store>) -> RestoreSummary {
        let state = store.state().clone();
        let stats = store.stats();
        self.store = Some(store);
        let node = self.addr;
        self.obs
            .count_n(node, "store_replay_records", stats.replay_records);
        self.obs.record_with(|at| ObsEvent::StoreReplay {
            at,
            node,
            records: stats.replay_records,
            micros: stats.replay_micros,
        });
        let mut summary = RestoreSummary {
            attrs: state.attrs.len(),
            replay_records: stats.replay_records,
            replay_micros: stats.replay_micros,
            ..RestoreSummary::default()
        };
        // No invalidation multicast for restored attributes: the values
        // are not new, so any front-door entry caching them is still
        // coherent.
        self.attrs.extend(state.attrs);
        if let Some(src) = &state.node_aa {
            match self.build_aa("node", src) {
                Ok(inst) => {
                    self.node_aa = Some(inst);
                    summary.handlers += 1;
                }
                Err(e) => self.quarantine_on_restore("node", &e, &mut summary),
            }
        }
        for (attr, src) in &state.attr_aas {
            match self.build_aa(attr, src) {
                Ok(inst) => {
                    self.attr_aas.insert(attr.clone(), inst);
                    summary.handlers += 1;
                }
                Err(e) => self.quarantine_on_restore(attr, &e, &mut summary),
            }
        }
        for (topic, scope) in &state.subs {
            self.sub_requested.insert(*topic, self.now);
            self.ops.push_back(Op::Subscribe {
                topic: *topic,
                scope: *scope,
            });
            summary.subs += 1;
        }
        summary.committed = state.committed.len();
        self.committed = state.committed.iter().map(|&q| QueryId(q)).collect();
        if let Some(q) = state.reserved {
            // Commits hold their reservation far beyond the protocol
            // horizon (release is explicit); re-hold it the same way.
            self.reservation = Some((QueryId(q), self.now + SimDuration::from_secs(3_600)));
        }
        summary
    }

    /// Records one restore-time handler rejection: diagnostic kept on the
    /// host, counter surfaced through the store stats, node keeps booting.
    fn quarantine_on_restore(
        &mut self,
        label: &str,
        err: &InstallError,
        summary: &mut RestoreSummary,
    ) {
        self.quarantined.push((label.to_owned(), err.to_string()));
        if let Some(store) = self.store.as_mut() {
            store.note_relint_reject();
        }
        let node = self.addr;
        self.obs.count(node, "restore_relint_rejects");
        self.obs
            .record_with(|at| ObsEvent::RestoreRelintReject { at, node });
        summary.quarantined += 1;
    }

    /// Sets an attribute locally and queues the subscription to its
    /// site-scoped `attr=value` tree.
    pub fn post_resource(&mut self, attr: &str, value: AttrValue) {
        let tree = self.naming.tree_for_post(attr, &value);
        let topic = self.tree_topic(&tree, self.site);
        let scope = self.routing_scope(self.site);
        self.persist(WalRecord::AttrPut {
            attr: attr.to_owned(),
            value: value.clone(),
        });
        self.persist(WalRecord::SubAdd { topic, scope });
        self.attrs.insert(attr.to_owned(), value);
        self.sub_requested.insert(topic, self.now);
        self.ops.push_back(Op::Subscribe { topic, scope });
        self.emit_invalidation(attr);
    }

    /// Updates an attribute value without touching tree membership (used
    /// by monitoring updates like utilization readings).
    pub fn update_attr(&mut self, attr: &str, value: AttrValue) {
        self.persist(WalRecord::AttrPut {
            attr: attr.to_owned(),
            value: value.clone(),
        });
        self.attrs.insert(attr.to_owned(), value);
        self.emit_invalidation(attr);
    }

    /// Write-path half of front-door cache coherence: purge this node's
    /// own cache (a gateway may change its own attributes), multicast the
    /// invalidation over the site-local `__frontdoor` tree, and hand one
    /// Direct to each remote site's gateway for local re-multicast. A
    /// no-op unless [`RbayConfig::frontdoor_invalidation`] is set.
    fn emit_invalidation(&mut self, attr: &str) {
        if !self.cfg.frontdoor_invalidation {
            return;
        }
        if let Some(fd) = self.frontdoor.as_mut() {
            fd.invalidate_attr(attr);
        }
        let topic = self.tree_topic(FRONTDOOR_TREE, self.site);
        let scope = self.routing_scope(self.site);
        self.ops.push_back(Op::Multicast {
            topic,
            scope,
            payload: RbayPayload::Invalidate {
                attr: attr.to_owned(),
                fanout: false,
            },
        });
        for s in 0..self.gateways.len() as u16 {
            let site = SiteId(s);
            if site == self.site {
                continue;
            }
            self.ops.push_back(Op::Direct {
                to: self.gateway_for(site, 0),
                payload: RbayPayload::Invalidate {
                    attr: attr.to_owned(),
                    fanout: true,
                },
            });
        }
    }

    /// Turns this node into a front-door gateway: installs the cache /
    /// single-flight / admission state and subscribes to the site-local
    /// `__frontdoor` invalidation tree. Call on gateway nodes once the
    /// overlay has converged (the subscription routes like any tree join).
    pub fn enable_frontdoor(&mut self, cfg: FrontdoorConfig) {
        self.frontdoor = Some(Box::new(Frontdoor::new(cfg)));
        let topic = self.tree_topic(FRONTDOOR_TREE, self.site);
        let scope = self.routing_scope(self.site);
        self.sub_requested.insert(topic, self.now);
        self.ops.push_back(Op::Subscribe { topic, scope });
    }

    /// Routes one client query through the front door: cache hit,
    /// coalesce onto an identical in-flight walk, launch a new walk, or
    /// shed under overload. Falls back to a plain [`RbayHost::issue_query`]
    /// when no front door is enabled, so callers need not special-case.
    pub fn frontdoor_query(
        &mut self,
        query: Query,
        password: Option<String>,
    ) -> crate::frontdoor::FrontdoorResponse {
        use crate::frontdoor::FrontdoorResponse;
        let node = self.addr;
        let Some(fd) = self.frontdoor.as_mut() else {
            let id = self.issue_query(query, password);
            return FrontdoorResponse::Pending {
                id,
                coalesced: false,
            };
        };
        let key = query_key(&query);
        match fd.begin(&key, self.now) {
            FrontdoorDecision::Hit { result, satisfied } => {
                self.obs.count(node, "fd_hit");
                FrontdoorResponse::Cached { result, satisfied }
            }
            FrontdoorDecision::Coalesce { leader } => {
                self.obs.count(node, "fd_coalesce");
                FrontdoorResponse::Pending {
                    id: leader,
                    coalesced: true,
                }
            }
            FrontdoorDecision::Shed { retry_after } => {
                // A shed is advisory back-pressure, never a query outcome:
                // the cache is untouched and recall accounting never sees
                // it. Distinguish sheds issued while the local overlay is
                // repairing (suspected peers outstanding) so operators can
                // tell overload from churn-induced retry-after.
                self.obs.count(node, "fd_shed");
                if !self.suspected.is_empty() {
                    self.obs.count(node, "fd_shed_repair");
                }
                FrontdoorResponse::Shed { retry_after }
            }
            FrontdoorDecision::Admit => {
                self.obs.count(node, "fd_miss");
                // Register the leader *before* issuing: anchorless queries
                // complete synchronously inside `issue_query`, and the
                // completion hook must already see the leader entry.
                let id = QueryId::new(self.addr, self.next_seq);
                self.frontdoor
                    .as_mut()
                    .expect("checked above")
                    .lead(key, id);
                let got = self.issue_query(query, password);
                debug_assert_eq!(got, id, "leader id must match issue order");
                FrontdoorResponse::Pending {
                    id,
                    coalesced: false,
                }
            }
        }
    }

    /// Extends an AA instance with RBAY's runtime primitives — currently
    /// `sha1hex(s)`, which enables the public/private-key authentication
    /// the paper sketches in §III.B: the AA stores `PubKey =
    /// sha1hex(secret)` and the query authenticates by presenting the
    /// secret.
    fn add_runtime_natives(inst: &AaInstance) {
        let f: aascript::NativeFn = std::rc::Rc::new(|args: &[Value]| {
            let s = match args.first() {
                Some(Value::Str(s)) => s.to_string(),
                other => aascript::display_value(other.unwrap_or(&Value::Nil)),
            };
            let digest = pastry::sha1::sha1(s.as_bytes());
            let hex: String = digest.iter().map(|b| format!("{b:02x}")).collect();
            Ok(Value::str(hex))
        });
        inst.set_global("sha1hex", Value::Native("sha1hex", f));
    }

    /// Lints a compiled script under this host's policy, recording
    /// diagnostics in [`Self::lint_reports`] under `label`. Returns the
    /// error diagnostics the installer must refuse on (empty unless the
    /// policy is [`LintPolicy::Deny`]).
    fn lint_script(&mut self, label: &str, script: &Script) -> Vec<Diagnostic> {
        if self.cfg.lint_policy == LintPolicy::Off {
            return Vec::new();
        }
        let mut externs: Vec<String> = ["now_ms", "attrs", "sha1hex"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        externs.extend(self.cfg.lint_externs.iter().cloned());
        let opts = LintOptions {
            budget: Some(self.cfg.aa_budget),
            externs,
        };
        let diags = script.analyze(&opts);
        if self.cfg.lint_policy == LintPolicy::Deny && has_errors(&diags) {
            return diags;
        }
        if !diags.is_empty() {
            self.lint_reports.push((label.to_owned(), diags));
        }
        Vec::new()
    }

    /// Compiles, lints, and instantiates one AA script.
    fn build_aa(&mut self, label: &str, src: &str) -> Result<AaInstance, InstallError> {
        let script = Script::compile(src)?.with_engine(self.cfg.aa_engine);
        let rejected = self.lint_script(label, &script);
        if !rejected.is_empty() {
            return Err(InstallError::Lint(rejected));
        }
        let inst = script.instantiate(&self.sandbox, self.cfg.aa_budget)?;
        Self::add_runtime_natives(&inst);
        Ok(inst)
    }

    /// Installs the node-level policy AA from source. The script is vetted
    /// by the `aalint` static analysis first, per
    /// [`RbayConfig::lint_policy`].
    ///
    /// # Errors
    ///
    /// Compile errors, lint rejections (under [`LintPolicy::Deny`]), or
    /// instantiation-time runtime errors.
    pub fn install_node_aa(&mut self, src: &str) -> Result<(), InstallError> {
        let inst = self.build_aa("node", src)?;
        self.persist(WalRecord::NodeAaInstall {
            source: src.to_owned(),
        });
        self.node_aa = Some(inst);
        Ok(())
    }

    /// Installs a per-attribute AA from source. The script is vetted by
    /// the `aalint` static analysis first, per [`RbayConfig::lint_policy`].
    ///
    /// # Errors
    ///
    /// Compile errors, lint rejections (under [`LintPolicy::Deny`]), or
    /// instantiation-time runtime errors.
    pub fn install_attr_aa(&mut self, attr: &str, src: &str) -> Result<(), InstallError> {
        let inst = self.build_aa(attr, src)?;
        self.persist(WalRecord::AttrAaInstall {
            attr: attr.to_owned(),
            source: src.to_owned(),
        });
        self.attr_aas.insert(attr.to_owned(), inst);
        Ok(())
    }

    /// The AA consulted for a query anchored at `attr`: the attribute's own
    /// AA if present, else the node AA.
    fn aa_for(&self, attr: Option<&str>) -> Option<&AaInstance> {
        attr.and_then(|a| self.attr_aas.get(a))
            .or(self.node_aa.as_ref())
    }

    /// Refreshes the runtime globals handlers may read: `now_ms` (virtual
    /// time) enables time-window policies like the paper's "available
    /// after 10:00 PM" example, and the node's current attribute map is
    /// exposed as the `attrs` table.
    fn refresh_aa_env(&self, aa: &AaInstance) {
        aa.set_global("now_ms", Value::Num(self.now.as_millis_f64()));
        let table = Value::table();
        if let Value::Table(t) = &table {
            let mut t = t.borrow_mut();
            for (k, v) in &self.attrs {
                t.set(
                    aascript::Key::Str(k.as_str().into()),
                    Self::attr_to_script(v),
                );
            }
        }
        aa.set_global("attrs", table);
    }

    /// Invokes `onGet` (paper Table I): returns whether access is granted.
    /// A missing handler grants by default; a runtime error denies.
    pub fn check_on_get(
        &mut self,
        anchor_attr: Option<&str>,
        caller: &str,
        password: Option<&str>,
    ) -> bool {
        let budget = self.cfg.aa_budget;
        let Some(aa) = self.aa_for(anchor_attr) else {
            return true;
        };
        if !aa.has_handler("onGet") {
            return true;
        }
        self.refresh_aa_env(aa);
        let args = [
            Value::str(caller),
            password.map(Value::str).unwrap_or(Value::Nil),
        ];
        match aa.invoke("onGet", &args, budget) {
            Ok(v) if v.truthy() => true,
            Ok(_) => {
                self.aa_denials += 1;
                false
            }
            Err(_) => {
                self.aa_errors += 1;
                false
            }
        }
    }

    /// Converts an [`AttrValue`] into a script value.
    pub fn attr_to_script(v: &AttrValue) -> Value {
        match v {
            AttrValue::Bool(b) => Value::Bool(*b),
            AttrValue::Num(n) => Value::Num(*n),
            AttrValue::Str(s) => Value::str(s),
        }
    }

    /// Converts a script value back into an [`AttrValue`] (functions and
    /// tables are stringified).
    pub fn script_to_attr(v: &Value) -> Option<AttrValue> {
        match v {
            Value::Nil => None,
            Value::Bool(b) => Some(AttrValue::Bool(*b)),
            Value::Num(n) => Some(AttrValue::Num(*n)),
            other => Some(AttrValue::Str(aascript::display_value(other))),
        }
    }

    /// Whether this node currently holds an un-expired reservation for a
    /// different query.
    pub fn is_reserved_against(&self, query: QueryId) -> bool {
        match self.reservation {
            Some((by, until)) => by != query && until > self.now,
            None => false,
        }
    }

    /// Releases whatever reservation this node holds, persisting the
    /// release first so a restart does not resurrect it. Operator control
    /// path; the query protocol releases via [`RbayPayload::Release`].
    pub fn release_reservation(&mut self) {
        if let Some((by, _)) = self.reservation {
            self.persist(WalRecord::Release { query: by.0 });
            self.reservation = None;
        }
    }

    /// One step of the search walk visiting this node (protocol step 4):
    /// check the full predicate, check the reservation, consult `onGet`,
    /// then reserve and fill a slot.
    fn visit_search(&mut self, state: &mut SearchState) -> Visit {
        let k = state.query.k as usize;
        if state.slots.len() >= k {
            return Visit::Stop;
        }
        let matches = state.query.matches_all(|attr| self.attrs.get(attr));
        if !matches {
            return Visit::Continue;
        }
        if self.is_reserved_against(state.query_id) {
            return Visit::Continue;
        }
        let anchor = state.query.anchors().next().map(|p| p.attr.clone());
        let caller = format!("{}", state.reply_to);
        if !self.check_on_get(anchor.as_deref(), &caller, state.password.as_deref()) {
            return Visit::Continue;
        }
        self.reservation = Some((state.query_id, self.now + self.cfg.reserve_ttl));
        let sort_key = state
            .query
            .order_by
            .as_ref()
            .and_then(|(attr, _)| self.attrs.get(attr).cloned());
        state.slots.push(Candidate {
            id: self.id,
            addr: self.addr,
            site: self.site,
            sort_key,
        });
        if state.slots.len() >= k {
            Visit::Stop
        } else {
            Visit::Continue
        }
    }

    /// Runs the periodic AA maintenance (paper Table I `onTimer`,
    /// `onSubscribe`, `onUnsubscribe`): fires `onTimer`, then lets the
    /// node AA decide membership of each dynamic tree.
    pub fn maintenance(&mut self) {
        let budget = self.cfg.aa_budget;
        // onTimer on every installed AA.
        if let Some(aa) = &self.node_aa {
            self.refresh_aa_env(aa);
            if aa.has_handler("onTimer") {
                let _ = aa.invoke("onTimer", &[], budget);
            }
        }
        for aa in self.attr_aas.values() {
            self.refresh_aa_env(aa);
            if aa.has_handler("onTimer") {
                let _ = aa.invoke("onTimer", &[], budget);
            }
        }
        // Membership checks for dynamic trees.
        let trees: Vec<String> = self.dynamic_trees.clone();
        for tree in trees {
            let topic = self.tree_topic(&tree, self.site);
            let (mut join, mut leave) = (false, false);
            if let Some(aa) = &self.node_aa {
                if aa.has_handler("onSubscribe") {
                    match aa.invoke("onSubscribe", &[Value::Nil, Value::str(&tree)], budget) {
                        Ok(v) => join = v.truthy(),
                        Err(_) => self.aa_errors += 1,
                    }
                }
                if aa.has_handler("onUnsubscribe") {
                    match aa.invoke("onUnsubscribe", &[Value::Nil, Value::str(&tree)], budget) {
                        Ok(v) => leave = v.truthy(),
                        Err(_) => self.aa_errors += 1,
                    }
                }
            }
            if join && !leave {
                let scope = self.routing_scope(self.site);
                // Deduped by the store after the first round.
                self.persist(WalRecord::SubAdd { topic, scope });
                self.sub_requested.entry(topic).or_insert(self.now);
                self.ops.push_back(Op::Subscribe { topic, scope });
            } else if leave {
                self.persist(WalRecord::SubRemove { topic });
                self.ops.push_back(Op::Unsubscribe { topic });
            }
        }
    }

    /// Re-issues subscriptions whose JOIN (or its ack) was lost: any tree
    /// we requested but never got attached to is joined again. Called each
    /// maintenance round; `attached` reports which requested topics are
    /// now attached.
    pub fn retry_pending_subscriptions(&mut self, attached: impl Fn(TopicId) -> bool) {
        let stale: Vec<TopicId> = self
            .sub_requested
            .keys()
            .copied()
            .filter(|t| !attached(*t))
            .collect();
        for topic in stale {
            let scope = self.routing_scope(self.site);
            self.ops.push_back(Op::Subscribe { topic, scope });
        }
    }

    /// Heartbeat bookkeeping for one maintenance round: expires overdue
    /// pings (declaring those peers failed), records fresh pings for
    /// `peers`, and probes suspected peers every
    /// [`SUSPECT_PROBE_PERIOD`]th round so a recovered node can prove
    /// itself alive to suspecters it does not know about. Returns the
    /// ping ops for the actor to send.
    pub fn heartbeat_round(&mut self, peers: &[NodeAddr]) {
        if !self.cfg.failure_detection {
            return;
        }
        // Any peer that owes us a pong past the deadline is dead.
        let deadline = self.cfg.heartbeat_timeout;
        let overdue: Vec<NodeAddr> = self
            .pending_pings
            .iter()
            .filter(|(_, sent)| self.now.saturating_since(**sent) > deadline)
            .map(|(p, _)| *p)
            .collect();
        for peer in overdue {
            self.pending_pings.remove(&peer);
            if !self.suspected.contains(&peer) {
                self.suspected.push(peer);
                self.newly_failed.push(peer);
                let detector = self.addr;
                self.obs.count(detector, "hb_expire");
                self.obs
                    .record_with(|at| ObsEvent::HeartbeatExpire { at, detector, peer });
            }
        }
        // Ping everyone we have not already pinged and not buried.
        for &peer in peers {
            if peer == self.addr
                || self.pending_pings.contains_key(&peer)
                || self.suspected.contains(&peer)
            {
                continue;
            }
            let nonce = self.next_nonce;
            self.next_nonce += 1;
            self.pending_pings.insert(peer, self.now);
            let from = self.addr;
            self.obs.count(from, "hb_send");
            self.obs
                .record_with(|at| ObsEvent::HeartbeatSend { at, from, to: peer });
            let info = self.self_info();
            self.ops.push_back(Op::Direct {
                to: peer,
                payload: RbayPayload::Ping { nonce, info },
            });
        }
        // Probe the suspected list at a slow cadence. Repair evicts a
        // declared peer from every table, so its suspecters stop pinging
        // it — but routing-table knowledge is asymmetric, and a recovered
        // peer that never knew its suspecter would otherwise stay buried
        // forever (gossip cannot re-insert it through the quarantine). A
        // corpse stays silent; a revived peer's Pong proves it alive.
        self.hb_round = self.hb_round.wrapping_add(1);
        if self.hb_round.is_multiple_of(SUSPECT_PROBE_PERIOD) {
            let targets: Vec<NodeAddr> = self
                .suspected
                .iter()
                .copied()
                .filter(|p| !self.pending_pings.contains_key(p))
                .collect();
            for peer in targets {
                let nonce = self.next_nonce;
                self.next_nonce += 1;
                self.pending_pings.insert(peer, self.now);
                let from = self.addr;
                self.obs.count(from, "suspect_probe");
                let info = self.self_info();
                self.ops.push_back(Op::Direct {
                    to: peer,
                    payload: RbayPayload::Ping { nonce, info },
                });
            }
        }
    }

    /// Clears any failure suspicion of `peer`: a message from the peer
    /// proves it alive, so a recovered (or falsely-declared) node must be
    /// re-pinged and re-grafted rather than stay buried forever.
    pub fn unsuspect(&mut self, peer: NodeAddr) {
        if self.suspected.is_empty() {
            return;
        }
        if let Some(i) = self.suspected.iter().position(|p| *p == peer) {
            self.suspected.swap_remove(i);
            // Drop any stale outstanding ping so the next heartbeat round
            // starts the peer with a clean slate.
            self.pending_pings.remove(&peer);
            let node = self.addr;
            self.obs.count(node, "unsuspect");
            self.obs
                .record_with(|at| ObsEvent::Unsuspect { at, node, peer });
        }
    }

    /// Total memory attributable to active attributes on this node
    /// (Fig. 8c accounting).
    pub fn aa_bytes(&self) -> usize {
        self.attr_aas
            .values()
            .map(|a| a.size_bytes())
            .sum::<usize>()
            + self.node_aa.as_ref().map(|a| a.size_bytes()).unwrap_or(0)
    }
}

impl ScribeHost<RbayPayload> for RbayHost {
    fn on_multicast(&mut self, _topic: TopicId, payload: &RbayPayload) {
        if let RbayPayload::Invalidate { attr, .. } = payload {
            if let Some(fd) = self.frontdoor.as_mut() {
                if fd.invalidate_attr(attr) > 0 {
                    let node = self.addr;
                    self.obs.count(node, "fd_invalidate");
                }
            }
            return;
        }
        let RbayPayload::Admin(cmd) = payload else {
            return;
        };
        self.events.push(RbayEvent::AdminDelivered {
            cmd_id: cmd.cmd_id,
            issued_at: cmd.issued_at,
            delivered_at: self.now,
        });
        // onDeliver: the handler may transform the delivered value before
        // it lands in the key-value map (paper Table I).
        let budget = self.cfg.aa_budget;
        let new_value = match self.aa_for(Some(&cmd.attr)) {
            Some(aa) if aa.has_handler("onDeliver") => {
                self.refresh_aa_env(aa);
                match aa.invoke(
                    "onDeliver",
                    &[Value::Nil, Self::attr_to_script(&cmd.payload)],
                    budget,
                ) {
                    Ok(v) => Self::script_to_attr(&v),
                    Err(_) => {
                        self.aa_errors += 1;
                        None
                    }
                }
            }
            _ => Some(cmd.payload.clone()),
        };
        if let Some(v) = new_value {
            self.persist(WalRecord::AttrPut {
                attr: cmd.attr.clone(),
                value: v.clone(),
            });
            self.attrs.insert(cmd.attr.clone(), v);
        }
    }

    fn on_anycast_visit(&mut self, _topic: TopicId, payload: &mut RbayPayload) -> Visit {
        match payload {
            RbayPayload::Search(state) => self.visit_search(state),
            _ => Visit::Continue,
        }
    }

    fn on_anycast_result(&mut self, _topic: TopicId, payload: RbayPayload, satisfied: bool) {
        let RbayPayload::Search(state) = payload else {
            return;
        };
        if state.reply_to == self.addr {
            // We are the querier: this was a local-site search.
            self.record_site_result(state.query_id, self.site, state.slots, satisfied);
        } else {
            // We are a gateway: echo the result to the querier.
            self.ops.push_back(Op::Direct {
                to: state.reply_to,
                payload: RbayPayload::SearchEcho {
                    query_id: state.query_id,
                    site: self.site,
                    slots: state.slots,
                    satisfied,
                },
            });
        }
    }

    fn on_probe_reply(
        &mut self,
        _topic: TopicId,
        payload: RbayPayload,
        agg: Option<AggValue>,
        exists: bool,
    ) {
        if let RbayPayload::StatsProbe { reply_to, tree } = payload {
            if reply_to == self.addr {
                self.tree_stats.insert(tree, (agg, exists, self.now));
            } else {
                self.ops.push_back(Op::Direct {
                    to: reply_to,
                    payload: RbayPayload::StatsEcho { tree, agg, exists },
                });
            }
            return;
        }
        let RbayPayload::SizeProbe {
            query_id,
            tree_idx,
            reply_to,
            site,
        } = payload
        else {
            return;
        };
        let size = agg.and_then(|a| a.as_count());
        if reply_to == self.addr {
            self.record_probe(query_id, tree_idx, site, size, exists);
        } else {
            self.ops.push_back(Op::Direct {
                to: reply_to,
                payload: RbayPayload::ProbeEcho {
                    query_id,
                    tree_idx,
                    site,
                    size,
                    exists,
                },
            });
        }
    }

    fn on_direct(&mut self, from: NodeAddr, payload: RbayPayload) {
        let _from = from;
        match payload {
            RbayPayload::ProbeEcho {
                query_id,
                tree_idx,
                site,
                size,
                exists,
            } => {
                self.record_probe(query_id, tree_idx, site, size, exists);
            }
            RbayPayload::SearchEcho {
                query_id,
                site,
                slots,
                satisfied,
            } => {
                self.record_site_result(query_id, site, slots, satisfied);
            }
            RbayPayload::RemoteProbe {
                query_id,
                reply_to,
                site,
                trees,
            } => {
                for (i, tree) in trees.iter().enumerate() {
                    let topic = self.tree_topic(tree, site);
                    self.ops.push_back(Op::Probe {
                        topic,
                        scope: self.routing_scope(site),
                        payload: RbayPayload::SizeProbe {
                            query_id,
                            tree_idx: i as u8,
                            reply_to,
                            site,
                        },
                    });
                }
            }
            RbayPayload::RemoteSearch { state, tree } => {
                let topic = self.tree_topic(&tree, self.site);
                self.ops.push_back(Op::Anycast {
                    topic,
                    scope: self.routing_scope(self.site),
                    payload: RbayPayload::Search(state),
                });
            }
            RbayPayload::Commit { query_id } => {
                if let Some((by, _)) = self.reservation {
                    if by == query_id {
                        self.persist(WalRecord::Commit { query: query_id.0 });
                        self.committed.push(query_id);
                        // Hold far beyond the protocol horizon; release is
                        // explicit from here on.
                        self.reservation =
                            Some((query_id, self.now + SimDuration::from_secs(3_600)));
                    }
                }
            }
            RbayPayload::Release { query_id } => {
                if let Some((by, _)) = self.reservation {
                    if by == query_id {
                        self.persist(WalRecord::Release { query: query_id.0 });
                        self.reservation = None;
                    }
                }
            }
            RbayPayload::StatsEcho { tree, agg, exists } => {
                self.tree_stats.insert(tree, (agg, exists, self.now));
            }
            RbayPayload::Ping { nonce, info } => {
                // The pinger may have been evicted from this node's
                // routing state by a false-positive repair; its heartbeat
                // proves it alive, so re-learn it.
                self.ops.push_back(Op::LearnPeer { info });
                let my_info = self.self_info();
                self.ops.push_back(Op::Direct {
                    to: _from,
                    payload: RbayPayload::Pong {
                        nonce,
                        info: my_info,
                    },
                });
            }
            RbayPayload::Pong { info, .. } => {
                self.pending_pings.remove(&_from);
                self.ops.push_back(Op::LearnPeer { info });
            }
            RbayPayload::Invalidate { attr, fanout } => {
                if let Some(fd) = self.frontdoor.as_mut() {
                    if fd.invalidate_attr(&attr) > 0 {
                        let node = self.addr;
                        self.obs.count(node, "fd_invalidate");
                    }
                }
                if fanout {
                    // Border-router relay: spread the invalidation to the
                    // rest of this site's gateways over the local tree.
                    let topic = self.tree_topic(FRONTDOOR_TREE, self.site);
                    let scope = self.routing_scope(self.site);
                    self.ops.push_back(Op::Multicast {
                        topic,
                        scope,
                        payload: RbayPayload::Invalidate {
                            attr,
                            fanout: false,
                        },
                    });
                }
            }
            _ => {}
        }
    }

    fn on_subscribed(&mut self, topic: TopicId) {
        if let Some(requested_at) = self.sub_requested.remove(&topic) {
            self.events.push(RbayEvent::Subscribed {
                topic,
                requested_at,
                attached_at: self.now,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbay_query::parse_query;

    fn host() -> RbayHost {
        RbayHost::new(
            Rc::new(RbayConfig::default()),
            NodeId(42),
            NodeAddr(7),
            SiteId(0),
            SharedSandbox::new(),
            vec![vec![NodeAddr(0)]],
            vec!["local".into()],
        )
    }

    fn search(k: u32, password: Option<&str>) -> SearchState {
        let q = parse_query(&format!(
            "SELECT {k} FROM * WHERE GPU = true AND CPU_utilization < 50 GROUPBY CPU_utilization ASC"
        ))
        .unwrap();
        SearchState {
            query_id: QueryId(99),
            reply_to: NodeAddr(1),
            query: Rc::new(q),
            password: password.map(str::to_owned),
            slots: Vec::new(),
        }
    }

    #[test]
    fn visit_fills_slot_when_predicates_hold() {
        let mut h = host();
        h.update_attr("GPU", AttrValue::Bool(true));
        h.update_attr("CPU_utilization", AttrValue::Num(10.0));
        let mut s = search(2, None);
        assert_eq!(h.visit_search(&mut s), Visit::Continue, "k=2 needs more");
        assert_eq!(s.slots.len(), 1);
        assert_eq!(s.slots[0].id, NodeId(42));
        assert_eq!(
            s.slots[0].sort_key,
            Some(AttrValue::Num(10.0)),
            "GROUPBY key captured"
        );
        assert!(h.reservation.is_some());
    }

    #[test]
    fn visit_stops_when_buffer_full() {
        let mut h = host();
        h.update_attr("GPU", AttrValue::Bool(true));
        h.update_attr("CPU_utilization", AttrValue::Num(10.0));
        let mut s = search(1, None);
        assert_eq!(h.visit_search(&mut s), Visit::Stop);
    }

    #[test]
    fn visit_skips_on_failed_predicate() {
        let mut h = host();
        h.update_attr("GPU", AttrValue::Bool(true));
        h.update_attr("CPU_utilization", AttrValue::Num(90.0));
        let mut s = search(1, None);
        assert_eq!(h.visit_search(&mut s), Visit::Continue);
        assert!(s.slots.is_empty());
        assert!(h.reservation.is_none());
    }

    #[test]
    fn visit_respects_foreign_reservation_until_expiry() {
        let mut h = host();
        h.update_attr("GPU", AttrValue::Bool(true));
        h.update_attr("CPU_utilization", AttrValue::Num(10.0));
        h.reservation = Some((QueryId(1), SimTime::from_millis(500)));
        h.now = SimTime::from_millis(100);
        let mut s = search(1, None);
        assert_eq!(h.visit_search(&mut s), Visit::Continue, "still locked");
        h.now = SimTime::from_millis(600);
        assert_eq!(h.visit_search(&mut s), Visit::Stop, "lock expired");
    }

    #[test]
    fn password_aa_gates_access() {
        let mut h = host();
        h.update_attr("GPU", AttrValue::Bool(true));
        h.update_attr("CPU_utilization", AttrValue::Num(10.0));
        h.install_node_aa(
            r#"
            AA = {Password = "sesame"}
            function onGet(caller, password)
                if password == AA.Password then
                    return true
                end
                return nil
            end
        "#,
        )
        .unwrap();
        let mut wrong = search(1, Some("guess"));
        assert_eq!(h.visit_search(&mut wrong), Visit::Continue);
        assert_eq!(h.aa_denials, 1);
        let mut right = search(1, Some("sesame"));
        assert_eq!(h.visit_search(&mut right), Visit::Stop);
    }

    #[test]
    fn commit_and_release_lifecycle() {
        let mut h = host();
        h.reservation = Some((QueryId(5), SimTime::from_millis(100)));
        h.on_direct(
            NodeAddr(0),
            RbayPayload::Commit {
                query_id: QueryId(5),
            },
        );
        assert_eq!(h.committed, vec![QueryId(5)]);
        // Commit from the wrong query does nothing.
        h.on_direct(
            NodeAddr(0),
            RbayPayload::Commit {
                query_id: QueryId(6),
            },
        );
        assert_eq!(h.committed.len(), 1);
        h.on_direct(
            NodeAddr(0),
            RbayPayload::Release {
                query_id: QueryId(5),
            },
        );
        assert!(h.reservation.is_none());
    }

    #[test]
    fn admin_multicast_updates_attribute_via_on_deliver() {
        let mut h = host();
        h.update_attr("price", AttrValue::Num(10.0));
        h.install_attr_aa(
            "price",
            r#"
            function onDeliver(caller, value)
                -- admins deliver a multiplier, not an absolute price
                return value * 2
            end
        "#,
        )
        .unwrap();
        h.now = SimTime::from_millis(50);
        h.on_multicast(
            TopicId::new("price", "rbay"),
            &RbayPayload::Admin(crate::types::AdminCommand {
                cmd_id: 1,
                attr: "price".into(),
                payload: AttrValue::Num(21.0),
                issued_at: SimTime::from_millis(10),
            }),
        );
        assert_eq!(h.attrs["price"], AttrValue::Num(42.0));
        assert!(matches!(
            h.events.last(),
            Some(RbayEvent::AdminDelivered { cmd_id: 1, .. })
        ));
    }

    #[test]
    fn admin_multicast_without_handler_sets_value_directly() {
        let mut h = host();
        h.on_multicast(
            TopicId::new("expiry", "rbay"),
            &RbayPayload::Admin(crate::types::AdminCommand {
                cmd_id: 2,
                attr: "expiry".into(),
                payload: AttrValue::str("22:00"),
                issued_at: SimTime::ZERO,
            }),
        );
        assert_eq!(h.attrs["expiry"], AttrValue::str("22:00"));
    }

    #[test]
    fn post_resource_queues_scoped_subscription() {
        let mut h = host();
        h.post_resource("GPU", AttrValue::Bool(true));
        assert_eq!(h.attrs["GPU"], AttrValue::Bool(true));
        let Some(Op::Subscribe { topic, scope }) = h.ops.front() else {
            panic!("expected a subscribe op");
        };
        assert_eq!(*scope, Some(SiteId(0)));
        assert_eq!(*topic, TopicId::scoped("GPU=true", "rbay", SiteId(0)));
    }

    #[test]
    fn dynamic_tree_membership_follows_on_subscribe() {
        let mut h = host();
        h.dynamic_trees.push("CPU_utilization<10".into());
        h.update_attr("CPU_utilization", AttrValue::Num(5.0));
        h.install_node_aa(
            r#"
            function onSubscribe(caller, topic)
                return utilization < 10
            end
            function onUnsubscribe(caller, topic)
                return utilization >= 10
            end
        "#,
        )
        .unwrap();
        // Expose the live reading to the script.
        h.node_aa
            .as_ref()
            .unwrap()
            .set_global("utilization", Value::Num(5.0));
        h.maintenance();
        assert!(matches!(h.ops.back(), Some(Op::Subscribe { .. })));
        h.ops.clear();
        h.node_aa
            .as_ref()
            .unwrap()
            .set_global("utilization", Value::Num(50.0));
        h.maintenance();
        assert!(matches!(h.ops.back(), Some(Op::Unsubscribe { .. })));
    }

    #[test]
    fn aa_bytes_counts_installed_handlers() {
        let mut h = host();
        assert_eq!(h.aa_bytes(), 0);
        h.install_attr_aa("a", "AA = {Password = \"x\"}").unwrap();
        let one = h.aa_bytes();
        assert!(one > 0);
        h.install_attr_aa("b", "AA = {Password = \"y\"}").unwrap();
        assert!(h.aa_bytes() > one);
    }
}

#[cfg(test)]
mod heartbeat_tests {
    use super::*;
    use aascript::SharedSandbox;
    use pastry::NodeId;
    use rbay_query::AttrValue;

    fn host() -> RbayHost {
        let cfg = RbayConfig {
            failure_detection: true,
            heartbeat_timeout: SimDuration::from_millis(400),
            aggregate_attr: Some("CPU_utilization".into()),
            ..RbayConfig::default()
        };
        RbayHost::new(
            Rc::new(cfg),
            NodeId(1),
            NodeAddr(0),
            SiteId(0),
            SharedSandbox::new(),
            vec![vec![NodeAddr(0), NodeAddr(1), NodeAddr(2)]],
            vec!["local".into()],
        )
    }

    fn peer_info(a: u32) -> pastry::NodeInfo {
        pastry::NodeInfo {
            id: NodeId(a as u128),
            addr: NodeAddr(a),
            site: SiteId(0),
        }
    }

    #[test]
    fn heartbeat_round_pings_new_peers_once() {
        let mut h = host();
        h.heartbeat_round(&[NodeAddr(5), NodeAddr(6)]);
        let pings: Vec<NodeAddr> = h
            .ops
            .iter()
            .filter_map(|op| match op {
                Op::Direct {
                    to,
                    payload: RbayPayload::Ping { .. },
                } => Some(*to),
                _ => None,
            })
            .collect();
        assert_eq!(pings, vec![NodeAddr(5), NodeAddr(6)]);
        h.ops.clear();
        // Outstanding peers are not re-pinged.
        h.heartbeat_round(&[NodeAddr(5), NodeAddr(6)]);
        assert!(h.ops.is_empty());
    }

    #[test]
    fn pong_clears_the_outstanding_ping() {
        use scribe::ScribeHost;
        let mut h = host();
        h.heartbeat_round(&[NodeAddr(5)]);
        h.on_direct(
            NodeAddr(5),
            RbayPayload::Pong {
                nonce: 0,
                info: peer_info(5),
            },
        );
        assert!(h.pending_pings.is_empty());
        // The peer can be pinged again later.
        h.ops.clear();
        h.heartbeat_round(&[NodeAddr(5)]);
        assert_eq!(h.ops.len(), 1);
    }

    #[test]
    fn overdue_pings_declare_failures_exactly_once() {
        let mut h = host();
        h.now = SimTime::from_millis(0);
        h.heartbeat_round(&[NodeAddr(5)]);
        h.now = SimTime::from_millis(1_000);
        h.heartbeat_round(&[]);
        assert_eq!(h.suspected, vec![NodeAddr(5)]);
        assert_eq!(h.newly_failed, vec![NodeAddr(5)]);
        h.newly_failed.clear();
        h.ops.clear();
        // A suspected peer is not re-declared and is dropped from the
        // regular ping set (it only gets the slow-cadence probe).
        h.heartbeat_round(&[NodeAddr(5)]);
        assert!(h.newly_failed.is_empty());
        assert!(h.ops.iter().all(|op| !matches!(
            op,
            Op::Direct {
                payload: RbayPayload::Ping { .. },
                ..
            }
        )));
    }

    #[test]
    fn unsuspect_restores_a_recovered_peer() {
        let mut h = host();
        h.now = SimTime::from_millis(0);
        h.heartbeat_round(&[NodeAddr(5)]);
        h.now = SimTime::from_millis(1_000);
        h.heartbeat_round(&[]);
        assert_eq!(h.suspected, vec![NodeAddr(5)]);
        // Any message from the peer proves it alive: it is un-suspected
        // and eligible for pinging again.
        h.unsuspect(NodeAddr(5));
        assert!(h.suspected.is_empty());
        assert!(h.pending_pings.is_empty());
        h.ops.clear();
        h.newly_failed.clear();
        h.heartbeat_round(&[NodeAddr(5)]);
        assert!(
            h.ops.iter().any(|op| matches!(
                op,
                Op::Direct {
                    to: NodeAddr(5),
                    payload: RbayPayload::Ping { .. },
                }
            )),
            "recovered peer must be pinged again"
        );
        // Un-suspecting a never-suspected peer is a no-op.
        h.unsuspect(NodeAddr(9));
        assert!(h.suspected.is_empty());
    }

    #[test]
    fn suspected_peers_are_probed_at_the_slow_cadence() {
        use crate::host::SUSPECT_PROBE_PERIOD;
        let mut h = host();
        h.now = SimTime::from_millis(0);
        h.heartbeat_round(&[NodeAddr(5)]);
        h.now = SimTime::from_millis(1_000);
        h.heartbeat_round(&[]);
        assert_eq!(h.suspected, vec![NodeAddr(5)]);
        h.ops.clear();
        h.newly_failed.clear();
        // Rounds up to the probe period send nothing to the corpse; the
        // period-th round re-pings it so a revived peer can answer and
        // clear the quarantine even on suspecters it never knew about.
        let mut probed_at = None;
        for round in 1..=SUSPECT_PROBE_PERIOD {
            h.now = SimTime::from_millis(1_000 + round * 1_000);
            h.heartbeat_round(&[]);
            if h.ops.iter().any(|op| {
                matches!(
                    op,
                    Op::Direct {
                        to: NodeAddr(5),
                        payload: RbayPayload::Ping { .. },
                    }
                )
            }) {
                probed_at = Some(round);
                break;
            }
        }
        assert!(
            probed_at.is_some_and(|r| r <= SUSPECT_PROBE_PERIOD),
            "suspected peer was never probed within a full period"
        );
        // The probe never re-declares the peer.
        assert!(h.newly_failed.is_empty());
    }

    #[test]
    fn ping_messages_are_answered_with_pongs() {
        use scribe::ScribeHost;
        let mut h = host();
        h.on_direct(
            NodeAddr(9),
            RbayPayload::Ping {
                nonce: 42,
                info: peer_info(9),
            },
        );
        // The pinger is re-learned (false-positive healing) and answered.
        assert!(matches!(
            h.ops.front(),
            Some(Op::LearnPeer { info }) if info.addr == NodeAddr(9)
        ));
        assert!(h.ops.iter().any(|op| matches!(
            op,
            Op::Direct {
                to: NodeAddr(9),
                payload: RbayPayload::Pong { nonce: 42, .. },
            }
        )));
    }

    #[test]
    fn gateway_rotation_wraps_through_the_list() {
        let h = host();
        assert_eq!(h.gateway_for(SiteId(0), 0), NodeAddr(0));
        assert_eq!(h.gateway_for(SiteId(0), 1), NodeAddr(1));
        assert_eq!(h.gateway_for(SiteId(0), 2), NodeAddr(2));
        assert_eq!(h.gateway_for(SiteId(0), 3), NodeAddr(0));
    }

    #[test]
    fn tree_local_value_reflects_the_aggregate_attr() {
        let mut h = host();
        // Without a reading: identity contributions besides the count.
        let v = h.tree_local_value();
        assert_eq!(v.as_count(), Some(1));
        assert_eq!(v.component(1).unwrap().as_f64(), 0.0);
        // With a reading.
        h.update_attr("CPU_utilization", AttrValue::Num(40.0));
        let v = h.tree_local_value();
        assert_eq!(v.component(1).unwrap().as_f64(), 40.0);
        assert_eq!(v.component(2).unwrap().as_f64(), 40.0);
        assert_eq!(v.component(3).unwrap().as_f64(), 40.0);
    }

    #[test]
    fn retry_pending_subscriptions_reissues_unattached_joins() {
        let mut h = host();
        let topic = h.tree_topic("GPU=true", SiteId(0));
        h.sub_requested.insert(topic, SimTime::ZERO);
        h.retry_pending_subscriptions(|_| false);
        assert!(matches!(h.ops.back(), Some(Op::Subscribe { .. })));
        h.ops.clear();
        // Attached topics are not retried.
        h.retry_pending_subscriptions(|_| true);
        assert!(h.ops.is_empty());
    }
}

#[cfg(test)]
mod lint_tests {
    use super::*;
    use aascript::analysis::LintId;

    fn host_with_policy(policy: LintPolicy) -> RbayHost {
        let cfg = RbayConfig {
            lint_policy: policy,
            ..RbayConfig::default()
        };
        RbayHost::new(
            Rc::new(cfg),
            NodeId(1),
            NodeAddr(0),
            SiteId(0),
            SharedSandbox::new(),
            vec![vec![NodeAddr(0)]],
            vec!["local".into()],
        )
    }

    #[test]
    fn deny_refuses_unknown_handler_name() {
        let mut h = host_with_policy(LintPolicy::Deny);
        let err = h
            .install_node_aa("AA = { onGte = function(q) return true end }")
            .unwrap_err();
        match err {
            InstallError::Lint(diags) => {
                assert!(diags.iter().any(|d| d.id == LintId::UnknownHandler));
                // Spanned: the diagnostic points into the source.
                assert!(diags.iter().all(|d| d.pos.line >= 1));
            }
            other => panic!("expected lint rejection, got {other}"),
        }
        assert!(h.node_aa.is_none(), "rejected script must not be installed");
    }

    #[test]
    fn deny_refuses_undefined_global_read() {
        let mut h = host_with_policy(LintPolicy::Deny);
        let src = "AA = { onGet = function(q) return threshhold < 10 end }";
        let err = h.install_attr_aa("GPU", src).unwrap_err();
        match err {
            InstallError::Lint(diags) => {
                assert!(diags.iter().any(|d| d.id == LintId::UndefinedGlobal));
            }
            other => panic!("expected lint rejection, got {other}"),
        }
        assert!(h.attr_aas.is_empty());
    }

    #[test]
    fn deny_refuses_over_budget_handler() {
        let cfg = RbayConfig {
            lint_policy: LintPolicy::Deny,
            aa_budget: 50,
            ..RbayConfig::default()
        };
        let mut h = RbayHost::new(
            Rc::new(cfg),
            NodeId(1),
            NodeAddr(0),
            SiteId(0),
            SharedSandbox::new(),
            vec![vec![NodeAddr(0)]],
            vec!["local".into()],
        );
        let src = "AA = { onGet = function(q)\n\
                   local s = 0\n\
                   for i = 1, 1000 do s = s + i end\n\
                   return s > 0 end }";
        let err = h.install_node_aa(src).unwrap_err();
        match err {
            InstallError::Lint(diags) => {
                assert!(diags.iter().any(|d| d.id == LintId::CostExceedsBudget));
            }
            other => panic!("expected lint rejection, got {other}"),
        }
    }

    #[test]
    fn warn_installs_and_surfaces_diagnostics() {
        let mut h = host_with_policy(LintPolicy::Warn);
        h.install_node_aa("AA = { onGte = function(q) return true end }")
            .unwrap();
        assert!(h.node_aa.is_some(), "Warn policy still installs");
        assert_eq!(h.lint_reports.len(), 1);
        let (label, diags) = &h.lint_reports[0];
        assert_eq!(label, "node");
        assert!(diags.iter().any(|d| d.id == LintId::UnknownHandler));
    }

    #[test]
    fn off_skips_analysis_entirely() {
        let mut h = host_with_policy(LintPolicy::Off);
        h.install_node_aa("AA = { onGte = function(q) return true end }")
            .unwrap();
        assert!(h.node_aa.is_some());
        assert!(h.lint_reports.is_empty());
    }

    #[test]
    fn clean_script_installs_under_deny_with_host_externs() {
        let mut h = host_with_policy(LintPolicy::Deny);
        // Reads now_ms (host-injected) and sha1hex (runtime native):
        // both are linted as externs, so Deny accepts this.
        let src = "AA = { onGet = function(q)\n\
                   if now_ms < 0 then return false end\n\
                   return sha1hex(\"x\") ~= \"\" end }";
        h.install_node_aa(src).unwrap();
        assert!(h.node_aa.is_some());
        assert!(h.lint_reports.is_empty(), "clean script: nothing to report");
    }

    #[test]
    fn deploy_specific_externs_suppress_undefined_global() {
        let cfg = RbayConfig {
            lint_policy: LintPolicy::Deny,
            lint_externs: vec!["utilization".into()],
            ..RbayConfig::default()
        };
        let mut h = RbayHost::new(
            Rc::new(cfg),
            NodeId(1),
            NodeAddr(0),
            SiteId(0),
            SharedSandbox::new(),
            vec![vec![NodeAddr(0)]],
            vec!["local".into()],
        );
        let src = "AA = { onGet = function(q) return utilization < 90 end }";
        h.install_node_aa(src).unwrap();
        assert!(h.node_aa.is_some());
    }

    #[test]
    fn compile_errors_are_typed() {
        let mut h = host_with_policy(LintPolicy::Warn);
        let err = h.install_node_aa("AA = {").unwrap_err();
        assert!(matches!(err, InstallError::Compile(_)));
    }
}

#[cfg(test)]
mod store_tests {
    use super::*;
    use rbay_store::FsyncPolicy;
    use std::path::{Path, PathBuf};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rbay-host-store-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fresh_host(policy: LintPolicy) -> RbayHost {
        let cfg = RbayConfig {
            lint_policy: policy,
            ..RbayConfig::default()
        };
        RbayHost::new(
            Rc::new(cfg),
            NodeId(1),
            NodeAddr(0),
            SiteId(0),
            SharedSandbox::new(),
            vec![vec![NodeAddr(0)]],
            vec!["local".into()],
        )
    }

    /// Boots a host against `dir`: the same `attach_store` call serves
    /// both first boot (empty store, no-op restore) and recovery.
    fn durable_host(dir: &Path, policy: LintPolicy) -> (RbayHost, RestoreSummary) {
        let mut h = fresh_host(policy);
        let (store, _) = rbay_store::Store::open(dir, FsyncPolicy::Never).unwrap();
        let summary = h.attach_store(Box::new(store));
        (h, summary)
    }

    #[test]
    fn restore_recovers_attrs_handlers_subs_and_commits() {
        let dir = tmp_dir("roundtrip");
        let committed_query = QueryId::new(NodeAddr(7), 3);
        {
            let (mut h, summary) = durable_host(&dir, LintPolicy::Warn);
            assert_eq!(
                (summary.attrs, summary.subs, summary.replay_records),
                (0, 0, 0)
            );
            h.post_resource("GPU", AttrValue::str("A100"));
            h.update_attr("CPU_utilization", AttrValue::Num(40.0));
            h.install_node_aa("AA = { onGet = function(q) return true end }")
                .unwrap();
            h.install_attr_aa("GPU", "AA = { onGet = function(q) return true end }")
                .unwrap();
            // A committed reservation, as the query protocol would leave it.
            h.reservation = Some((committed_query, SimTime::ZERO));
            h.on_direct(
                NodeAddr(7),
                RbayPayload::Commit {
                    query_id: committed_query,
                },
            );
        }
        let (mut h, summary) = durable_host(&dir, LintPolicy::Warn);
        assert_eq!(summary.attrs, 2);
        assert_eq!(summary.handlers, 2);
        assert_eq!(summary.quarantined, 0);
        assert_eq!(summary.subs, 1, "GPU=A100 tree re-joined");
        assert_eq!(summary.committed, 1);
        assert!(summary.replay_records >= 5);
        assert_eq!(h.attrs.get("GPU"), Some(&AttrValue::str("A100")));
        assert!(h.node_aa.is_some());
        assert!(h.attr_aas.contains_key("GPU"));
        assert_eq!(h.committed, vec![committed_query]);
        assert!(
            matches!(h.reservation, Some((q, _)) if q == committed_query),
            "committed reservation re-held"
        );
        // The restored subscription is queued as a join and tracked for
        // retry until attached.
        assert!(matches!(h.ops.pop_front(), Some(Op::Subscribe { .. })));
        assert_eq!(h.sub_requested.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Satellite: a handler admitted under `Warn` must be quarantined —
    /// not re-installed — when the node restarts under `Deny`, with the
    /// diagnostic recorded and boot completing normally.
    #[test]
    fn restore_relints_under_current_policy_and_quarantines() {
        let dir = tmp_dir("quarantine");
        // `onGte` is a typo'd handler name: UnknownHandler, a warning
        // under Warn but an error under Deny.
        let src = "AA = { onGte = function(q) return true end }";
        {
            let (mut h, _) = durable_host(&dir, LintPolicy::Warn);
            h.install_node_aa(src).unwrap();
            assert!(h.node_aa.is_some(), "Warn admits the handler");
        }
        let (mut h, summary) = durable_host(&dir, LintPolicy::Deny);
        assert!(h.node_aa.is_none(), "Deny restore must not re-install");
        assert_eq!(summary.quarantined, 1);
        assert_eq!(summary.handlers, 0);
        assert_eq!(h.quarantined.len(), 1);
        let (label, diag) = &h.quarantined[0];
        assert_eq!(label, "node");
        assert!(
            diag.contains("lint"),
            "diagnostic names the lint rejection: {diag}"
        );
        assert_eq!(h.store.as_ref().unwrap().stats().relint_rejects, 1);
        // The node still boots and serves: queries fall through to the
        // default-grant path with no handler installed.
        assert!(h.check_on_get(None, "caller", None));
        // The source stays durable: rebooting back under Warn re-installs.
        drop(h);
        let (h, summary) = durable_host(&dir, LintPolicy::Warn);
        assert!(h.node_aa.is_some(), "policy rollback restores the handler");
        assert_eq!(summary.quarantined, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn per_round_dynamic_joins_do_not_bloat_the_wal() {
        let dir = tmp_dir("dedupe");
        let (mut h, _) = durable_host(&dir, LintPolicy::Off);
        h.install_node_aa("AA = { onSubscribe = function(q, tree) return true end }")
            .unwrap();
        h.dynamic_trees.push("spot=idle".into());
        let before = h.store.as_ref().unwrap().stats().appends;
        for _ in 0..5 {
            h.maintenance();
        }
        let appends = h.store.as_ref().unwrap().stats().appends - before;
        assert_eq!(appends, 1, "five identical joins, one WAL record");
        assert!(h.store.as_ref().unwrap().stats().dedup_skips >= 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
