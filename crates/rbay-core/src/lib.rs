//! # rbay-core — the RBAY information plane
//!
//! The paper's primary contribution (§II–III): a decentralized information
//! plane that federates spare datacenter resources through DHT-based
//! aggregation trees, with admin-customized *active attributes* governing
//! which resource is exposed to whom, when, and how.
//!
//! A node is [`RbayNode`] = Pastry routing + Scribe trees + the
//! [`RbayHost`] application (key-value map, AA runtime, query engine).
//! [`Federation`] brings a whole deployment up over the `simnet`
//! simulator and exposes the eBay-style API: admins *post* resources with
//! policies, customers *query* with composite SQL-like predicates.
//!
//! ```
//! use rbay_core::Federation;
//! use rbay_query::AttrValue;
//! use simnet::{NodeAddr, Topology};
//!
//! let mut fed = Federation::new(Topology::single_site(32, 0.5), 7);
//! fed.post_resource(NodeAddr(3), "Matlab", AttrValue::str("9.0"));
//! fed.settle();
//! let q = fed
//!     .issue_query(NodeAddr(20), r#"SELECT 1 FROM * WHERE Matlab = "9.0""#, None)
//!     .unwrap();
//! fed.settle();
//! assert!(fed.query_record(NodeAddr(20), q).unwrap().satisfied);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actor;
mod engine;
mod federation;
pub mod frontdoor;
mod host;
mod naming;
mod pack;
mod transport;
mod types;
mod wire;

pub use actor::{RbayMsg, RbayNode};
pub use federation::{Federation, FrontdoorOutcome};
pub use frontdoor::{query_key, Frontdoor, FrontdoorConfig, FrontdoorResponse, FrontdoorStats};
pub use host::{
    InstallError, LintPolicy, Op, RbayConfig, RbayHost, RestoreSummary, FRONTDOOR_TREE,
};
pub use naming::HybridNaming;
pub use pack::{FrameSink, MemberCtx, Pack};
pub use transport::{NetAdapter, SimTransport};
pub use types::{
    AdminCommand, Candidate, QueryId, QueryPending, QueryRecord, RbayEvent, RbayPayload,
    SearchState,
};
