//! Application payloads and records of the RBAY layer.

use pastry::NodeId;
use rbay_query::{AttrValue, Query};
use scribe::TopicId;
use simnet::{MessageSize, NodeAddr, SimTime, SiteId};
use std::rc::Rc;

/// A unique query identifier: issuing node address in the high bits, local
/// sequence number in the low bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub u64);

impl QueryId {
    /// Builds an id from the issuing node and its local counter.
    pub fn new(origin: NodeAddr, seq: u32) -> Self {
        QueryId(((origin.0 as u64) << 32) | seq as u64)
    }
}

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{:x}", self.0)
    }
}

/// One candidate node discovered (and reserved) by a search.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The candidate's ring id (what `SELECT NodeId` returns).
    pub id: NodeId,
    /// Its transport address.
    pub addr: NodeAddr,
    /// Its site.
    pub site: SiteId,
    /// The value of the GROUPBY attribute at visit time, for ordering.
    pub sort_key: Option<AttrValue>,
}

/// The anycast payload of the search step: the query itself plus the buffer
/// of `k` candidate slots being filled along the walk (Fig. 7, step 3-4).
#[derive(Debug, Clone)]
pub struct SearchState {
    /// Which query this walk belongs to.
    pub query_id: QueryId,
    /// Node that must receive the final result.
    pub reply_to: NodeAddr,
    /// The parsed query (shared, not mutated).
    pub query: Rc<Query>,
    /// Optional password presented to `onGet` handlers.
    pub password: Option<String>,
    /// Candidates found so far.
    pub slots: Vec<Candidate>,
}

/// An admin command disseminated down a tree and handed to each member's
/// `onDeliver` handler (paper Table I).
#[derive(Debug, Clone, PartialEq)]
pub struct AdminCommand {
    /// Command sequence number (unique per admin).
    pub cmd_id: u64,
    /// The attribute the command concerns.
    pub attr: String,
    /// The payload handed to `onDeliver` (e.g. a new expiration time or
    /// price).
    pub payload: AttrValue,
    /// When the admin issued it (for the Fig. 11 latency measurement).
    pub issued_at: SimTime,
}

/// The RBAY application payload carried inside Scribe messages.
#[derive(Debug, Clone)]
pub enum RbayPayload {
    /// Step 1-2: probe a tree root for its size. Carried through
    /// `probe_root`; the reply's aggregate is the tree size.
    SizeProbe {
        /// Which query is probing.
        query_id: QueryId,
        /// Index of the probed tree in the query's anchor list.
        tree_idx: u8,
        /// Node that must receive the (possibly forwarded) answer.
        reply_to: NodeAddr,
        /// Site this probe concerns.
        site: SiteId,
    },
    /// Step 3-4: the anycast search walk.
    Search(SearchState),
    /// A gateway forwards a root-probe answer back to the querier.
    ProbeEcho {
        /// Which query.
        query_id: QueryId,
        /// Which anchor tree.
        tree_idx: u8,
        /// Site probed.
        site: SiteId,
        /// Tree size if the tree exists.
        size: Option<u64>,
        /// Whether the tree exists at its rendezvous node.
        exists: bool,
    },
    /// A gateway forwards a finished search back to the querier.
    SearchEcho {
        /// Which query.
        query_id: QueryId,
        /// Site searched.
        site: SiteId,
        /// Candidates reserved in that site.
        slots: Vec<Candidate>,
        /// Whether the buffer filled before the tree was exhausted.
        satisfied: bool,
    },
    /// Ask a remote site's gateway to run probes there on our behalf
    /// (administrative isolation: queries cross sites only through border
    /// routers, §III.E).
    RemoteProbe {
        /// Which query.
        query_id: QueryId,
        /// Who to answer.
        reply_to: NodeAddr,
        /// Site to probe (the gateway's own site).
        site: SiteId,
        /// Anchor tree names to probe.
        trees: Vec<String>,
    },
    /// Ask a remote site's gateway to run the search step there.
    RemoteSearch {
        /// The walk to run; `reply_to` inside names the original querier.
        state: SearchState,
        /// Anchor tree to search.
        tree: String,
    },
    /// Step 5: commit a reservation on a chosen node.
    Commit {
        /// The reserving query.
        query_id: QueryId,
    },
    /// Release a reservation that was not chosen.
    Release {
        /// The reserving query.
        query_id: QueryId,
    },
    /// Multicast admin command (policy changes, Fig. 11 onDeliver).
    Admin(AdminCommand),
    /// An admin's stats probe toward a tree root ("calculate a global view
    /// of the tree to the root … the size of the tree, the average value
    /// of all nodes' attributes", §II.B.3).
    StatsProbe {
        /// Who asked.
        reply_to: NodeAddr,
        /// The probed tree's textual name (echoed for bookkeeping).
        tree: String,
    },
    /// The answer to a [`RbayPayload::StatsProbe`], forwarded by the
    /// querier-side callback.
    StatsEcho {
        /// The probed tree's textual name.
        tree: String,
        /// Root aggregate, if the tree exists.
        agg: Option<scribe::AggValue>,
        /// Whether the tree exists.
        exists: bool,
    },
    /// Liveness heartbeat (failure detection between overlay neighbours).
    Ping {
        /// Sequence number echoed by the pong.
        nonce: u64,
        /// The sender's overlay identity, so a receiver that dropped it
        /// from its routing state (a false-positive failure repair) can
        /// re-learn it.
        info: pastry::NodeInfo,
    },
    /// Heartbeat acknowledgement.
    Pong {
        /// Echoed sequence number.
        nonce: u64,
        /// The responder's overlay identity (see [`RbayPayload::Ping`]).
        info: pastry::NodeInfo,
    },
    /// Front-door cache invalidation: `attr` changed somewhere, so every
    /// gateway must purge cached results that depend on it. Multicast over
    /// the site-local `__frontdoor` admin tree; sent Direct (with `fanout`)
    /// to one gateway per remote site, which re-multicasts locally —
    /// the same border-router pattern queries use under administrative
    /// isolation.
    Invalidate {
        /// The attribute whose value changed.
        attr: String,
        /// When true the receiving gateway re-multicasts the invalidation
        /// over its own site's `__frontdoor` tree.
        fanout: bool,
    },
}

impl MessageSize for RbayPayload {
    fn wire_size(&self) -> usize {
        match self {
            RbayPayload::SizeProbe { .. } => 16,
            RbayPayload::Search(s) | RbayPayload::RemoteSearch { state: s, .. } => {
                48 + s.slots.len() * 40 + s.query.predicates.len() * 32
            }
            RbayPayload::ProbeEcho { .. } => 24,
            RbayPayload::SearchEcho { slots, .. } => 16 + slots.len() * 40,
            RbayPayload::RemoteProbe { trees, .. } => {
                16 + trees.iter().map(|t| t.len()).sum::<usize>()
            }
            RbayPayload::Commit { .. } | RbayPayload::Release { .. } => 9,
            RbayPayload::Admin(c) => 24 + c.attr.len(),
            // nonce + NodeInfo (ring id, address, site).
            RbayPayload::Ping { .. } | RbayPayload::Pong { .. } => 33,
            RbayPayload::StatsProbe { tree, .. } => 5 + tree.len(),
            RbayPayload::StatsEcho { tree, .. } => 30 + tree.len(),
            RbayPayload::Invalidate { attr, .. } => 3 + attr.len(),
        }
    }
}

/// Lifecycle of one issued query, kept by the issuing node.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// The query id.
    pub id: QueryId,
    /// The parsed query.
    pub query: Rc<Query>,
    /// Resolved anchor tree names (after hybrid-naming links).
    pub anchor_trees: Vec<String>,
    /// Password presented to handlers.
    pub password: Option<String>,
    /// When the first attempt was issued.
    pub issued_at: SimTime,
    /// When the query finished (success, gave up, or timed out).
    pub completed_at: Option<SimTime>,
    /// Attempts made so far (for the exponential backoff).
    pub attempts: u32,
    /// Final committed candidates.
    pub result: Vec<Candidate>,
    /// Whether at least `k` candidates were found and committed.
    pub satisfied: bool,
    /// FROM-clause site names that did not resolve to any federated site —
    /// the query silently searched fewer sites than asked, so issuers
    /// (`trace_dump`, the `rbay-node` daemon) surface these to the user.
    pub unknown_sites: Vec<String>,
    /// Sites that still owe a probe/search answer for the current attempt.
    pub pending: QueryPending,
}

/// One collected probe answer: `(size if the tree exists, exists)`.
pub type ProbeAnswer = (Option<u64>, bool);

/// Per-attempt bookkeeping of outstanding probe/search responses.
#[derive(Debug, Clone, Default)]
pub struct QueryPending {
    /// Sites still being probed: `(site, per-tree answers collected)`.
    pub probes: Vec<(SiteId, Vec<Option<ProbeAnswer>>)>,
    /// Sites with a search in flight.
    pub searches: Vec<SiteId>,
    /// Per-site search outcomes collected this attempt.
    pub found: Vec<Candidate>,
}

/// Timestamped node-local events consumed by the measurement harnesses.
#[derive(Debug, Clone, PartialEq)]
pub enum RbayEvent {
    /// This node completed a tree subscription (Fig. 11 onSubscribe).
    Subscribed {
        /// Tree joined.
        topic: TopicId,
        /// When the join was requested.
        requested_at: SimTime,
        /// When the JoinAck / root promotion happened.
        attached_at: SimTime,
    },
    /// An admin command reached this node (Fig. 11 onDeliver).
    AdminDelivered {
        /// The command.
        cmd_id: u64,
        /// When it was issued.
        issued_at: SimTime,
        /// When it arrived here.
        delivered_at: SimTime,
    },
    /// A query this node issued completed.
    QueryDone {
        /// The query.
        query_id: QueryId,
        /// Issue time.
        issued_at: SimTime,
        /// Completion time.
        completed_at: SimTime,
        /// Whether it found its `k` nodes.
        satisfied: bool,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_ids_are_unique_per_origin_and_seq() {
        let a = QueryId::new(NodeAddr(1), 1);
        let b = QueryId::new(NodeAddr(1), 2);
        let c = QueryId::new(NodeAddr(2), 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, QueryId::new(NodeAddr(1), 1));
    }

    #[test]
    fn wire_size_scales_with_slots() {
        let q = Rc::new(rbay_query::parse_query("SELECT 3 FROM * WHERE a = 1").unwrap());
        let mk = |n: usize| {
            RbayPayload::Search(SearchState {
                query_id: QueryId(1),
                reply_to: NodeAddr(0),
                query: Rc::clone(&q),
                password: None,
                slots: vec![
                    Candidate {
                        id: NodeId(0),
                        addr: NodeAddr(0),
                        site: SiteId(0),
                        sort_key: None,
                    };
                    n
                ],
            })
        };
        assert!(mk(5).wire_size() > mk(1).wire_size());
    }
}
