//! [`Wire`] implementations for this crate's cross-node types
//! ([`RbayPayload`] and friends) — they live here rather than in
//! `rbay-wire` because the orphan rule wants impls next to the local side,
//! and `rbay-wire` cannot depend on this crate.
//!
//! Tag tables are in DESIGN.md §13. `SearchState.query` is an `Rc<Query>`
//! in memory purely for cheap intra-process cloning; on the wire it is a
//! plain `Query`, re-wrapped on decode.

use crate::frontdoor::FrontdoorStats;
use crate::types::{AdminCommand, Candidate, QueryId, RbayEvent, RbayPayload, SearchState};
use pastry::{NodeId, NodeInfo};
use rbay_query::{AttrValue, Query};
use rbay_wire::{Reader, Wire, WireError};
use scribe::{AggValue, TopicId};
use simnet::{NodeAddr, SimTime, SiteId};
use std::rc::Rc;

impl Wire for QueryId {
    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
    }
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(QueryId(u64::decode(r)?))
    }
}

impl Wire for FrontdoorStats {
    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.hits.encode_into(out);
        self.misses.encode_into(out);
        self.coalesced.encode_into(out);
        self.shed.encode_into(out);
        self.invalidations.encode_into(out);
        self.evictions.encode_into(out);
    }
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(FrontdoorStats {
            hits: u64::decode(r)?,
            misses: u64::decode(r)?,
            coalesced: u64::decode(r)?,
            shed: u64::decode(r)?,
            invalidations: u64::decode(r)?,
            evictions: u64::decode(r)?,
        })
    }
}

impl Wire for Candidate {
    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.id.encode_into(out);
        self.addr.encode_into(out);
        self.site.encode_into(out);
        self.sort_key.encode_into(out);
    }
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Candidate {
            id: NodeId::decode(r)?,
            addr: NodeAddr::decode(r)?,
            site: SiteId::decode(r)?,
            sort_key: Option::<AttrValue>::decode(r)?,
        })
    }
}

impl Wire for SearchState {
    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.query_id.encode_into(out);
        self.reply_to.encode_into(out);
        self.query.as_ref().encode_into(out);
        self.password.encode_into(out);
        self.slots.encode_into(out);
    }
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SearchState {
            query_id: QueryId::decode(r)?,
            reply_to: NodeAddr::decode(r)?,
            query: Rc::new(Query::decode(r)?),
            password: Option::<String>::decode(r)?,
            slots: Vec::<Candidate>::decode(r)?,
        })
    }
}

impl Wire for AdminCommand {
    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.cmd_id.encode_into(out);
        self.attr.encode_into(out);
        self.payload.encode_into(out);
        self.issued_at.encode_into(out);
    }
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(AdminCommand {
            cmd_id: u64::decode(r)?,
            attr: String::decode(r)?,
            payload: AttrValue::decode(r)?,
            issued_at: SimTime::decode(r)?,
        })
    }
}

/// Tag bytes for [`RbayPayload`] (DESIGN.md §13 table).
mod payload_tag {
    pub const SIZE_PROBE: u8 = 0;
    pub const SEARCH: u8 = 1;
    pub const PROBE_ECHO: u8 = 2;
    pub const SEARCH_ECHO: u8 = 3;
    pub const REMOTE_PROBE: u8 = 4;
    pub const REMOTE_SEARCH: u8 = 5;
    pub const COMMIT: u8 = 6;
    pub const RELEASE: u8 = 7;
    pub const ADMIN: u8 = 8;
    pub const STATS_PROBE: u8 = 9;
    pub const STATS_ECHO: u8 = 10;
    pub const PING: u8 = 11;
    pub const PONG: u8 = 12;
    pub const INVALIDATE: u8 = 13;
}

impl Wire for RbayPayload {
    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            RbayPayload::SizeProbe {
                query_id,
                tree_idx,
                reply_to,
                site,
            } => {
                out.push(payload_tag::SIZE_PROBE);
                query_id.encode_into(out);
                tree_idx.encode_into(out);
                reply_to.encode_into(out);
                site.encode_into(out);
            }
            RbayPayload::Search(state) => {
                out.push(payload_tag::SEARCH);
                state.encode_into(out);
            }
            RbayPayload::ProbeEcho {
                query_id,
                tree_idx,
                site,
                size,
                exists,
            } => {
                out.push(payload_tag::PROBE_ECHO);
                query_id.encode_into(out);
                tree_idx.encode_into(out);
                site.encode_into(out);
                size.encode_into(out);
                exists.encode_into(out);
            }
            RbayPayload::SearchEcho {
                query_id,
                site,
                slots,
                satisfied,
            } => {
                out.push(payload_tag::SEARCH_ECHO);
                query_id.encode_into(out);
                site.encode_into(out);
                slots.encode_into(out);
                satisfied.encode_into(out);
            }
            RbayPayload::RemoteProbe {
                query_id,
                reply_to,
                site,
                trees,
            } => {
                out.push(payload_tag::REMOTE_PROBE);
                query_id.encode_into(out);
                reply_to.encode_into(out);
                site.encode_into(out);
                trees.encode_into(out);
            }
            RbayPayload::RemoteSearch { state, tree } => {
                out.push(payload_tag::REMOTE_SEARCH);
                state.encode_into(out);
                tree.encode_into(out);
            }
            RbayPayload::Commit { query_id } => {
                out.push(payload_tag::COMMIT);
                query_id.encode_into(out);
            }
            RbayPayload::Release { query_id } => {
                out.push(payload_tag::RELEASE);
                query_id.encode_into(out);
            }
            RbayPayload::Admin(cmd) => {
                out.push(payload_tag::ADMIN);
                cmd.encode_into(out);
            }
            RbayPayload::StatsProbe { reply_to, tree } => {
                out.push(payload_tag::STATS_PROBE);
                reply_to.encode_into(out);
                tree.encode_into(out);
            }
            RbayPayload::StatsEcho { tree, agg, exists } => {
                out.push(payload_tag::STATS_ECHO);
                tree.encode_into(out);
                agg.encode_into(out);
                exists.encode_into(out);
            }
            RbayPayload::Ping { nonce, info } => {
                out.push(payload_tag::PING);
                nonce.encode_into(out);
                info.encode_into(out);
            }
            RbayPayload::Pong { nonce, info } => {
                out.push(payload_tag::PONG);
                nonce.encode_into(out);
                info.encode_into(out);
            }
            RbayPayload::Invalidate { attr, fanout } => {
                out.push(payload_tag::INVALIDATE);
                attr.encode_into(out);
                fanout.encode_into(out);
            }
        }
    }

    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let tag = r.byte()?;
        Ok(match tag {
            payload_tag::SIZE_PROBE => RbayPayload::SizeProbe {
                query_id: QueryId::decode(r)?,
                tree_idx: u8::decode(r)?,
                reply_to: NodeAddr::decode(r)?,
                site: SiteId::decode(r)?,
            },
            payload_tag::SEARCH => RbayPayload::Search(SearchState::decode(r)?),
            payload_tag::PROBE_ECHO => RbayPayload::ProbeEcho {
                query_id: QueryId::decode(r)?,
                tree_idx: u8::decode(r)?,
                site: SiteId::decode(r)?,
                size: Option::<u64>::decode(r)?,
                exists: bool::decode(r)?,
            },
            payload_tag::SEARCH_ECHO => RbayPayload::SearchEcho {
                query_id: QueryId::decode(r)?,
                site: SiteId::decode(r)?,
                slots: Vec::<Candidate>::decode(r)?,
                satisfied: bool::decode(r)?,
            },
            payload_tag::REMOTE_PROBE => RbayPayload::RemoteProbe {
                query_id: QueryId::decode(r)?,
                reply_to: NodeAddr::decode(r)?,
                site: SiteId::decode(r)?,
                trees: Vec::<String>::decode(r)?,
            },
            payload_tag::REMOTE_SEARCH => RbayPayload::RemoteSearch {
                state: SearchState::decode(r)?,
                tree: String::decode(r)?,
            },
            payload_tag::COMMIT => RbayPayload::Commit {
                query_id: QueryId::decode(r)?,
            },
            payload_tag::RELEASE => RbayPayload::Release {
                query_id: QueryId::decode(r)?,
            },
            payload_tag::ADMIN => RbayPayload::Admin(AdminCommand::decode(r)?),
            payload_tag::STATS_PROBE => RbayPayload::StatsProbe {
                reply_to: NodeAddr::decode(r)?,
                tree: String::decode(r)?,
            },
            payload_tag::STATS_ECHO => RbayPayload::StatsEcho {
                tree: String::decode(r)?,
                agg: Option::<AggValue>::decode(r)?,
                exists: bool::decode(r)?,
            },
            payload_tag::PING => RbayPayload::Ping {
                nonce: u64::decode(r)?,
                info: NodeInfo::decode(r)?,
            },
            payload_tag::PONG => RbayPayload::Pong {
                nonce: u64::decode(r)?,
                info: NodeInfo::decode(r)?,
            },
            payload_tag::INVALIDATE => RbayPayload::Invalidate {
                attr: String::decode(r)?,
                fanout: bool::decode(r)?,
            },
            tag => {
                return Err(WireError::BadTag {
                    what: "RbayPayload",
                    tag,
                })
            }
        })
    }
}

/// Tag bytes for [`RbayEvent`].
mod event_tag {
    pub const SUBSCRIBED: u8 = 0;
    pub const ADMIN_DELIVERED: u8 = 1;
    pub const QUERY_DONE: u8 = 2;
}

impl Wire for RbayEvent {
    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            RbayEvent::Subscribed {
                topic,
                requested_at,
                attached_at,
            } => {
                out.push(event_tag::SUBSCRIBED);
                topic.encode_into(out);
                requested_at.encode_into(out);
                attached_at.encode_into(out);
            }
            RbayEvent::AdminDelivered {
                cmd_id,
                issued_at,
                delivered_at,
            } => {
                out.push(event_tag::ADMIN_DELIVERED);
                cmd_id.encode_into(out);
                issued_at.encode_into(out);
                delivered_at.encode_into(out);
            }
            RbayEvent::QueryDone {
                query_id,
                issued_at,
                completed_at,
                satisfied,
            } => {
                out.push(event_tag::QUERY_DONE);
                query_id.encode_into(out);
                issued_at.encode_into(out);
                completed_at.encode_into(out);
                satisfied.encode_into(out);
            }
        }
    }

    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let tag = r.byte()?;
        Ok(match tag {
            event_tag::SUBSCRIBED => RbayEvent::Subscribed {
                topic: TopicId::decode(r)?,
                requested_at: SimTime::decode(r)?,
                attached_at: SimTime::decode(r)?,
            },
            event_tag::ADMIN_DELIVERED => RbayEvent::AdminDelivered {
                cmd_id: u64::decode(r)?,
                issued_at: SimTime::decode(r)?,
                delivered_at: SimTime::decode(r)?,
            },
            event_tag::QUERY_DONE => RbayEvent::QueryDone {
                query_id: QueryId::decode(r)?,
                issued_at: SimTime::decode(r)?,
                completed_at: SimTime::decode(r)?,
                satisfied: bool::decode(r)?,
            },
            tag => {
                return Err(WireError::BadTag {
                    what: "RbayEvent",
                    tag,
                })
            }
        })
    }
}
