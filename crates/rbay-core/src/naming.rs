//! The hybrid flexible naming scheme (paper §III.C).
//!
//! Creating an independent aggregation tree for every device property
//! would flood the platform with overlapping trees (`Intel CPU` and
//! `AMD CPU` both nest under `CPU`) and force all sites to learn every new
//! property name. Instead, admins *link* minor properties to an existing
//! **major tree**: posts and queries on the linked attribute are routed to
//! the major tree, and the minor property is checked as a residual
//! predicate during the anycast walk.

use rbay_query::{AttrValue, Predicate};
use std::collections::BTreeMap;

/// Per-node table of attribute → major-tree links.
///
/// ```
/// use rbay_core::HybridNaming;
/// use rbay_query::AttrValue;
///
/// let mut naming = HybridNaming::new();
/// naming.link("GPU_model", "GPU=true");
/// // Posts and queries on the minor attribute land in the major tree:
/// assert_eq!(
///     naming.tree_for_post("GPU_model", &AttrValue::str("K80")),
///     "GPU=true"
/// );
/// // Unlinked attributes keep their own `attr=value` trees:
/// assert_eq!(
///     naming.tree_for_post("Matlab", &AttrValue::str("9.0")),
///     "Matlab=9.0"
/// );
/// ```
#[derive(Debug, Clone, Default)]
pub struct HybridNaming {
    links: BTreeMap<String, String>,
}

impl HybridNaming {
    /// An empty table (every attribute gets its own `attr=value` tree).
    pub fn new() -> Self {
        HybridNaming::default()
    }

    /// Links `attr` to `major_tree`: future posts and queries on `attr`
    /// use the major tree instead of creating a new one.
    pub fn link(&mut self, attr: &str, major_tree: &str) {
        self.links.insert(attr.to_owned(), major_tree.to_owned());
    }

    /// Removes a link.
    pub fn unlink(&mut self, attr: &str) {
        self.links.remove(attr);
    }

    /// Whether `attr` is linked to a major tree.
    pub fn is_linked(&self, attr: &str) -> bool {
        self.links.contains_key(attr)
    }

    /// The tree an anchor predicate routes to: its major tree if linked,
    /// else the canonical `attr=value` tree.
    pub fn tree_for(&self, pred: &Predicate) -> String {
        match self.links.get(&pred.attr) {
            Some(major) => major.clone(),
            None => pred.tree_name(),
        }
    }

    /// The tree a resource post subscribes to.
    pub fn tree_for_post(&self, attr: &str, value: &AttrValue) -> String {
        match self.links.get(attr) {
            Some(major) => major.clone(),
            None => format!("{attr}={}", value.canonical()),
        }
    }

    /// Number of links installed.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether no links exist.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbay_query::CmpOp;

    fn pred(attr: &str, value: &str) -> Predicate {
        Predicate {
            attr: attr.into(),
            op: CmpOp::Eq,
            value: AttrValue::str(value),
        }
    }

    #[test]
    fn unlinked_attributes_get_their_own_tree() {
        let n = HybridNaming::new();
        assert_eq!(n.tree_for(&pred("GPU_model", "K80")), "GPU_model=K80");
        assert_eq!(
            n.tree_for_post("GPU_model", &AttrValue::str("K80")),
            "GPU_model=K80"
        );
    }

    #[test]
    fn linked_attributes_share_the_major_tree() {
        let mut n = HybridNaming::new();
        n.link("GPU_model", "GPU=true");
        n.link("GPU_core_size", "GPU=true");
        assert_eq!(n.tree_for(&pred("GPU_model", "K80")), "GPU=true");
        assert_eq!(
            n.tree_for_post("GPU_core_size", &AttrValue::Num(2496.0)),
            "GPU=true"
        );
        assert!(n.is_linked("GPU_model"));
        assert_eq!(n.len(), 2);
    }

    #[test]
    fn unlink_restores_dedicated_trees() {
        let mut n = HybridNaming::new();
        n.link("x", "major");
        n.unlink("x");
        assert!(!n.is_linked("x"));
        assert_eq!(n.tree_for(&pred("x", "1")), "x=1");
        assert!(n.is_empty());
    }
}
