//! Agent packing: many federation members in one OS process.
//!
//! The paper scales to 16,000 agents by packing ~100 agents per VM (§IV).
//! This module is the equivalent for the real-socket deployment: a
//! [`Pack`] owns a contiguous block of [`RbayNode`] members
//! (`NodeAddr(base) .. NodeAddr(base + len)`) and runs them all on the
//! daemon's main thread over **one** shared bus connection per peer
//! process:
//!
//! * messages between two members of the same pack short-circuit through
//!   an in-process loopback queue — no codec, no socket, no copy of the
//!   (non-`Send`, `Rc`-bearing) message value;
//! * messages leaving the pack are encoded once and handed to a
//!   [`FrameSink`] together with their `(from, to)` overlay addresses, so
//!   the transport can multiplex every member over the same sockets;
//! * timers are keyed `(slot, token)` — two members arming the same
//!   protocol token never collide.
//!
//! Backpressure follows the transport's drop-not-block rule: the loopback
//! queue is bounded and overflow drops messages (counted via
//! [`Pack::loopback_dropped`]); protocols above already tolerate loss.

use crate::actor::{RbayMsg, RbayNode};
use rbay_wire::{encode_frame, Transport};
use simnet::{NodeAddr, SimDuration, SimTime, TimerToken};
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::time::Instant;

/// Loopback queue cap (messages); overflow is dropped and counted.
const LOOPBACK_MAX: usize = 65_536;
/// Messages dispatched per [`Pack::pump`] call, bounding main-loop latency
/// even when members generate message storms.
const PUMP_BUDGET: usize = 100_000;

/// Where a pack's outbound (off-process) frames go. Implemented by
/// `rbay_wire::tcp::TcpBus`; tests use an in-memory vector.
pub trait FrameSink {
    /// Queues one encoded frame from hosted member `from` to remote
    /// member `to`. Must not block.
    fn send_frame(&mut self, from: NodeAddr, to: NodeAddr, frame: Vec<u8>);
}

impl FrameSink for rbay_wire::TcpBus {
    fn send_frame(&mut self, from: NodeAddr, to: NodeAddr, frame: Vec<u8>) {
        self.send_from(from, to, frame);
    }
}

/// State every member's transport view borrows: the loopback queue, the
/// shared clock, and the (slot-keyed) timer wheel.
struct PackShared {
    base: u32,
    len: u32,
    epoch: Instant,
    /// In-process deliveries: `(from, destination slot, message)`.
    loopback: VecDeque<(NodeAddr, u32, RbayMsg)>,
    /// Authoritative deadline per `(slot, token)`; the heap holds lazy
    /// duplicates skipped on pop.
    deadlines: HashMap<(u32, TimerToken), SimTime>,
    heap: BinaryHeap<std::cmp::Reverse<(SimTime, u32, TimerToken)>>,
    loopback_dropped: u64,
}

impl PackShared {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }

    fn slot_of(&self, addr: NodeAddr) -> Option<u32> {
        (addr.0 >= self.base && addr.0 < self.base + self.len).then(|| addr.0 - self.base)
    }
}

/// The [`Transport`] a packed member sees: local destinations loop back
/// in-process, remote ones are encoded into the [`FrameSink`], and timers
/// land in the pack's shared wheel under this member's slot.
pub struct MemberCtx<'a, S: FrameSink> {
    slot: u32,
    src: NodeAddr,
    shared: &'a mut PackShared,
    sink: &'a mut S,
}

impl<S: FrameSink> Transport<RbayMsg> for MemberCtx<'_, S> {
    fn send(&mut self, to: NodeAddr, msg: RbayMsg) {
        if let Some(slot) = self.shared.slot_of(to) {
            if self.shared.loopback.len() >= LOOPBACK_MAX {
                self.shared.loopback_dropped += 1;
            } else {
                self.shared.loopback.push_back((self.src, slot, msg));
            }
        } else {
            self.sink.send_frame(self.src, to, encode_frame(&msg));
        }
    }

    fn now(&self) -> SimTime {
        self.shared.now()
    }

    fn set_timer(&mut self, delay: SimDuration, token: TimerToken) {
        let at = SimTime::from_micros(self.shared.now().as_micros() + delay.as_micros());
        self.shared.deadlines.insert((self.slot, token), at);
        self.shared
            .heap
            .push(std::cmp::Reverse((at, self.slot, token)));
    }
}

/// A contiguous block of federation members hosted by one process.
pub struct Pack {
    members: Vec<RbayNode>,
    shared: PackShared,
}

/// Dispatches one message to a member with split borrows, so the member's
/// handlers can send (loopback or sink) while running.
fn dispatch<S: FrameSink>(
    members: &mut [RbayNode],
    shared: &mut PackShared,
    sink: &mut S,
    slot: u32,
    from: NodeAddr,
    msg: RbayMsg,
) {
    let src = NodeAddr(shared.base + slot);
    let mut ctx = MemberCtx {
        slot,
        src,
        shared,
        sink,
    };
    members[slot as usize].on_message_via(&mut ctx, from, msg);
}

impl Pack {
    /// Hosts `members` as overlay addresses `base .. base + members.len()`
    /// (member `i`'s own address must be `NodeAddr(base + i)`).
    pub fn new(base: u32, members: Vec<RbayNode>) -> Pack {
        let len = members.len() as u32;
        Pack {
            members,
            shared: PackShared {
                base,
                len,
                epoch: Instant::now(),
                loopback: VecDeque::new(),
                deadlines: HashMap::new(),
                heap: BinaryHeap::new(),
                loopback_dropped: 0,
            },
        }
    }

    /// First hosted overlay address.
    pub fn base(&self) -> u32 {
        self.shared.base
    }

    /// Number of hosted members.
    pub fn len(&self) -> u32 {
        self.shared.len
    }

    /// Whether the pack hosts no members.
    pub fn is_empty(&self) -> bool {
        self.shared.len == 0
    }

    /// The overlay address of slot `slot`.
    pub fn addr_of(&self, slot: u32) -> NodeAddr {
        NodeAddr(self.shared.base + slot)
    }

    /// The slot hosting `addr`, if this pack hosts it.
    pub fn slot_of(&self, addr: NodeAddr) -> Option<u32> {
        self.shared.slot_of(addr)
    }

    /// Immutable member access.
    pub fn member(&self, slot: u32) -> &RbayNode {
        &self.members[slot as usize]
    }

    /// Mutable member access (state inspection/mutation outside dispatch).
    pub fn member_mut(&mut self, slot: u32) -> &mut RbayNode {
        &mut self.members[slot as usize]
    }

    /// The pack's wall clock (shared by every member).
    pub fn now(&self) -> SimTime {
        self.shared.now()
    }

    /// Messages dropped on loopback overflow so far.
    pub fn loopback_dropped(&self) -> u64 {
        self.shared.loopback_dropped
    }

    /// Whether loopback deliveries are pending.
    pub fn has_loopback(&self) -> bool {
        !self.shared.loopback.is_empty()
    }

    /// Delivers one decoded off-process message to the member hosting
    /// `to`. Returns `false` (message dropped) if `to` is not hosted here.
    pub fn on_message<S: FrameSink>(
        &mut self,
        sink: &mut S,
        from: NodeAddr,
        to: NodeAddr,
        msg: RbayMsg,
    ) -> bool {
        let Some(slot) = self.shared.slot_of(to) else {
            return false;
        };
        dispatch(&mut self.members, &mut self.shared, sink, slot, from, msg);
        true
    }

    /// Drains pending loopback deliveries (which may enqueue more), up to
    /// an internal budget. Returns the number dispatched; call again when
    /// [`Pack::has_loopback`] remains true.
    pub fn pump<S: FrameSink>(&mut self, sink: &mut S) -> usize {
        let mut n = 0;
        while n < PUMP_BUDGET {
            let Some((from, slot, msg)) = self.shared.loopback.pop_front() else {
                break;
            };
            dispatch(&mut self.members, &mut self.shared, sink, slot, from, msg);
            n += 1;
        }
        n
    }

    /// Fires every expired timer on its owning member. Returns how many
    /// fired.
    pub fn fire_due<S: FrameSink>(&mut self, sink: &mut S) -> usize {
        let now = self.shared.now();
        let mut due: Vec<(u32, TimerToken)> = Vec::new();
        while let Some(std::cmp::Reverse((at, slot, token))) = self.shared.heap.peek().copied() {
            if at > now {
                break;
            }
            self.shared.heap.pop();
            if self.shared.deadlines.get(&(slot, token)) == Some(&at) {
                self.shared.deadlines.remove(&(slot, token));
                due.push((slot, token));
            }
        }
        let fired = due.len();
        for (slot, token) in due {
            let Pack { members, shared } = self;
            let src = NodeAddr(shared.base + slot);
            let mut ctx = MemberCtx {
                slot,
                src,
                shared,
                sink,
            };
            members[slot as usize].on_timer_via(&mut ctx, token);
        }
        fired
    }

    /// The earliest live deadline across all members, if any.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.shared.deadlines.values().min().copied()
    }

    /// Runs one maintenance round for member `slot`.
    pub fn maintenance_round<S: FrameSink>(&mut self, sink: &mut S, slot: u32) {
        let Pack { members, shared } = self;
        let src = NodeAddr(shared.base + slot);
        let mut ctx = MemberCtx {
            slot,
            src,
            shared,
            sink,
        };
        members[slot as usize].maintenance_round_via(&mut ctx);
    }

    /// (Re-)sends member `slot`'s Pastry join toward `bootstrap` (which
    /// may be another member of this pack — the join then rides loopback).
    pub fn join_member<S: FrameSink>(&mut self, sink: &mut S, slot: u32, bootstrap: NodeAddr) {
        let Pack { members, shared } = self;
        let src = NodeAddr(shared.base + slot);
        let mut ctx = MemberCtx {
            slot,
            src,
            shared,
            sink,
        };
        members[slot as usize].join_via(&mut ctx, bootstrap);
    }

    /// Runs `f` against member `slot` with a live transport view, then
    /// drains the member's deferred operations. Use for control-plane
    /// actions (post, install, issue-query) that may send messages.
    pub fn with_member<S: FrameSink, R>(
        &mut self,
        sink: &mut S,
        slot: u32,
        f: impl FnOnce(&mut RbayNode, &mut MemberCtx<'_, S>) -> R,
    ) -> R {
        let Pack { members, shared } = self;
        let src = NodeAddr(shared.base + slot);
        let mut ctx = MemberCtx {
            slot,
            src,
            shared,
            sink,
        };
        let node = &mut members[slot as usize];
        let r = f(node, &mut ctx);
        node.drain_ops_via(&mut ctx);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{RbayConfig, RbayHost};
    use aascript::SharedSandbox;
    use pastry::{NodeId, NodeInfo, PastryNode};
    use scribe::ScribeLayer;
    use simnet::SiteId;
    use std::rc::Rc;

    /// Captures off-process frames.
    #[derive(Default)]
    struct VecSink(Vec<(NodeAddr, NodeAddr, Vec<u8>)>);

    impl FrameSink for VecSink {
        fn send_frame(&mut self, from: NodeAddr, to: NodeAddr, frame: Vec<u8>) {
            self.0.push((from, to, frame));
        }
    }

    fn node(index: u32) -> RbayNode {
        let info = NodeInfo {
            id: NodeId::hash_of(format!("pack-test:{index}").as_bytes()),
            addr: NodeAddr(index),
            site: SiteId(0),
        };
        let host = RbayHost::new(
            Rc::new(RbayConfig::default()),
            info.id,
            info.addr,
            info.site,
            SharedSandbox::new(),
            vec![vec![NodeAddr(0)]],
            vec!["site0".into()],
        );
        RbayNode {
            pastry: PastryNode::new(info),
            scribe: ScribeLayer::new(),
            host,
        }
    }

    #[test]
    fn members_join_each_other_over_loopback() {
        let mut pack = Pack::new(0, (0..4).map(node).collect());
        let mut sink = VecSink::default();
        pack.member_mut(0).seed_as_bootstrap();
        for slot in 1..4 {
            pack.join_member(&mut sink, slot, NodeAddr(0));
        }
        // Joins and their replies ride the loopback queue only.
        let mut rounds = 0;
        while pack.has_loopback() {
            pack.pump(&mut sink);
            rounds += 1;
            assert!(rounds < 100, "loopback never quiesced");
        }
        for slot in 0..4 {
            assert!(
                pack.member(slot).pastry.is_joined(),
                "member {slot} not joined"
            );
        }
        assert!(
            sink.0.is_empty(),
            "intra-pack traffic must not reach the sink"
        );
        assert_eq!(pack.loopback_dropped(), 0);
    }

    #[test]
    fn remote_destinations_reach_the_sink_with_member_source() {
        let mut pack = Pack::new(10, vec![node(10), node(11)]);
        let mut sink = VecSink::default();
        // Member in slot 1 (addr 11) joins via a bootstrap outside the
        // pack: the join frame must leave through the sink, stamped with
        // the member's own address.
        pack.join_member(&mut sink, 1, NodeAddr(500));
        assert_eq!(sink.0.len(), 1);
        let (from, to, frame) = &sink.0[0];
        assert_eq!(*from, NodeAddr(11));
        assert_eq!(*to, NodeAddr(500));
        assert!(
            rbay_wire::decode_frame::<RbayMsg>(frame).is_ok(),
            "sink frames are complete encoded messages"
        );
    }

    #[test]
    fn misdirected_messages_are_refused() {
        let mut pack = Pack::new(0, vec![node(0)]);
        let mut sink = VecSink::default();
        pack.member_mut(0).seed_as_bootstrap();
        // Borrow a real message by round-tripping a join through the sink.
        let mut other = Pack::new(77, vec![node(77)]);
        other.join_member(&mut sink, 0, NodeAddr(0));
        let (_, _, frame) = sink.0.pop().unwrap();
        let msg = rbay_wire::decode_frame::<RbayMsg>(&frame).unwrap();
        assert!(!pack.on_message(&mut sink, NodeAddr(77), NodeAddr(99), msg));
    }

    #[test]
    fn timers_are_keyed_per_slot() {
        let mut pack = Pack::new(0, vec![node(0), node(1)]);
        let mut sink = VecSink::default();
        // Both slots arm the *same* protocol token: with per-slot keying
        // both must stay live and both must fire.
        for slot in 0..2 {
            pack.with_member(&mut sink, slot, |_, ctx| {
                ctx.set_timer(SimDuration::from_micros(0), TimerToken(42));
            });
        }
        assert!(pack.next_deadline().is_some());
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let mut fired = 0;
        while fired < 2 {
            fired += pack.fire_due(&mut sink);
            assert!(std::time::Instant::now() < deadline, "timers never fired");
        }
        assert_eq!(fired, 2, "one slot's timer clobbered the other's");
        assert_eq!(pack.next_deadline(), None);
    }
}
