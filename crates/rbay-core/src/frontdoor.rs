//! The gateway query front door: a read-path accelerator in front of the
//! overlay walk (ROADMAP item 2, modeled on Dynafed's volatile namespace).
//!
//! Four mechanisms, all host-resident so the same code runs over the
//! simulator and the TCP cluster:
//!
//! 1. **Normalized-query result cache** — [`query_key`] canonicalizes a
//!    parsed [`Query`] (predicate order, literal spelling, FROM-clause
//!    case/duplicates) into a stable key; results are cached with a
//!    per-entry TTL under an LRU capacity bound, and purged by
//!    invalidation multicasts when any referenced attribute changes.
//! 2. **Single-flight coalescing** — concurrent identical queries attach
//!    to the one in-flight overlay walk (the *leader*) instead of
//!    launching their own; completion fans the result out to everyone.
//! 3. **Admission control** — a bounded count of in-flight leader walks;
//!    beyond it the gateway sheds with a retry-after hint instead of
//!    collapsing under a query storm.
//! 4. **Geo-aware redirection** — [`lowest_rtt_site`] points a client at
//!    the frontdoor site with the smallest RTT (the Table II matrix in
//!    `simnet::topology` supplies real inter-region numbers).
//!
//! Cached results are served without re-running the reserve/commit
//! protocol: the front door is a *read* path (inventory lookups,
//! dashboards, repeated availability checks), not a substitute for the
//! five-step acquisition protocol.

use crate::types::{Candidate, QueryId};
use rbay_query::{AttrValue, FromClause, Query};
use simnet::{SimDuration, SimTime, SiteId};
use std::collections::BTreeMap;

/// Field separator inside cache keys: never appears in parsed attribute
/// names, operators, or canonical literals' *kind prefixes*, so composed
/// keys cannot collide across field boundaries.
const SEP: char = '\u{1f}';

/// Canonical, collision-resistant form of one literal. The kind prefix
/// keeps `true` (Bool) distinct from `"true"` (Str) and `10` (Num) distinct
/// from `"10"` (Str); [`AttrValue::canonical`] already renders `10.0` and
/// `10` identically, which is exactly the equivalence the cache wants.
fn value_key(v: &AttrValue) -> String {
    match v {
        AttrValue::Bool(b) => format!("b:{b}"),
        AttrValue::Num(_) => format!("n:{}", v.canonical()),
        AttrValue::Str(s) => format!("s:{s}"),
    }
}

/// Builds the normalized cache key of a parsed query.
///
/// Two queries get the same key iff they are semantically identical:
/// `SELECT k`, the FROM site set (case-insensitive, deduplicated, order
/// ignored), the predicate *set* (order ignored, duplicates collapsed,
/// literals compared by canonical form), and the GROUPBY clause all match.
/// Whitespace and keyword case never reach this function — the parser
/// already normalized them away.
pub fn query_key(q: &Query) -> String {
    let mut key = String::with_capacity(64);
    key.push_str(&q.k.to_string());
    key.push(SEP);
    match &q.from {
        FromClause::AllSites => key.push('*'),
        FromClause::Sites(names) => {
            let mut sites: Vec<String> = names.iter().map(|s| s.to_ascii_lowercase()).collect();
            sites.sort();
            sites.dedup();
            key.push_str(&sites.join(","));
        }
    }
    key.push(SEP);
    let mut preds: Vec<String> = q
        .predicates
        .iter()
        .map(|p| {
            format!(
                "{}{SEP}{}{SEP}{}",
                p.attr,
                p.op.as_str(),
                value_key(&p.value)
            )
        })
        .collect();
    preds.sort();
    preds.dedup();
    key.push_str(&preds.join("&"));
    key.push(SEP);
    if let Some((attr, dir)) = &q.order_by {
        key.push_str(attr);
        key.push(SEP);
        key.push_str(match dir {
            rbay_query::SortDir::Asc => "asc",
            rbay_query::SortDir::Desc => "desc",
        });
    }
    key
}

/// The attributes a query's answer depends on (predicates plus the GROUPBY
/// key) — an update to any of them must invalidate the cached result.
pub fn query_attrs(q: &Query) -> Vec<String> {
    let mut attrs: Vec<String> = q.predicates.iter().map(|p| p.attr.clone()).collect();
    if let Some((attr, _)) = &q.order_by {
        attrs.push(attr.clone());
    }
    attrs.sort();
    attrs.dedup();
    attrs
}

/// Picks the candidate site with the lowest RTT from `client` (ties break
/// toward the lower site id, so the choice is deterministic). Returns
/// `None` when `candidates` is empty.
pub fn lowest_rtt_site(
    client: SiteId,
    candidates: &[SiteId],
    rtt_ms: impl Fn(SiteId, SiteId) -> f64,
) -> Option<SiteId> {
    candidates.iter().copied().fold(None, |best, s| match best {
        None => Some(s),
        Some(b) => {
            let (rb, rs) = (rtt_ms(client, b), rtt_ms(client, s));
            if rs < rb || (rs == rb && s.0 < b.0) {
                Some(s)
            } else {
                Some(b)
            }
        }
    })
}

/// Tunables of one gateway's front door.
#[derive(Debug, Clone)]
pub struct FrontdoorConfig {
    /// How long a cached result stays servable (absent an invalidation).
    pub cache_ttl: SimDuration,
    /// Maximum cached entries; beyond it the least-recently-used entry is
    /// evicted.
    pub cache_capacity: usize,
    /// Maximum concurrent leader walks; beyond it new *distinct* queries
    /// are shed (hits and coalesced attachments are always admitted — they
    /// cost no overlay traffic).
    pub max_pending: usize,
    /// The retry-after hint returned with a shed response.
    pub retry_after: SimDuration,
}

impl Default for FrontdoorConfig {
    fn default() -> Self {
        FrontdoorConfig {
            cache_ttl: SimDuration::from_millis(10_000),
            cache_capacity: 1024,
            max_pending: 256,
            retry_after: SimDuration::from_millis(100),
        }
    }
}

/// Plain counters mirroring the obs-plane `fd_*` series, so the TCP
/// daemon (which runs without a `Recorder`) can surface them through
/// `ProcStatus`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontdoorStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that missed and launched a leader walk.
    pub misses: u64,
    /// Queries attached to an already-in-flight identical walk.
    pub coalesced: u64,
    /// Queries refused by admission control.
    pub shed: u64,
    /// Cache entries purged by attribute invalidations.
    pub invalidations: u64,
    /// Cache entries evicted by the LRU capacity bound.
    pub evictions: u64,
}

impl FrontdoorStats {
    /// Element-wise sum (for aggregating across a process's members).
    pub fn merge(&mut self, other: &FrontdoorStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.coalesced += other.coalesced;
        self.shed += other.shed;
        self.invalidations += other.invalidations;
        self.evictions += other.evictions;
    }
}

/// The front door's answer to one client query (what
/// `RbayHost::frontdoor_query` returns).
#[derive(Debug, Clone)]
pub enum FrontdoorResponse {
    /// Served from the cache — no overlay traffic.
    Cached {
        /// The cached candidate set.
        result: Vec<Candidate>,
        /// Whether the cached walk found its `k` nodes.
        satisfied: bool,
    },
    /// An overlay walk will answer: poll query `id` on the gateway. When
    /// `coalesced`, the walk was already in flight for an identical query.
    Pending {
        /// The (possibly shared) walk to wait on.
        id: QueryId,
        /// Whether this query attached to an existing walk.
        coalesced: bool,
    },
    /// Refused by admission control; retry after the hint.
    Shed {
        /// Suggested client backoff.
        retry_after: SimDuration,
    },
}

/// What the front door decided for one incoming query.
#[derive(Debug, Clone)]
pub enum FrontdoorDecision {
    /// Served from the cache.
    Hit {
        /// The cached candidate set.
        result: Vec<Candidate>,
        /// Whether the cached walk found its `k` nodes.
        satisfied: bool,
    },
    /// Attached to the in-flight walk `leader`; poll its record.
    Coalesce {
        /// The leader query to wait on.
        leader: QueryId,
    },
    /// Admitted as a new leader walk — the caller must issue the query and
    /// register it with [`Frontdoor::lead`].
    Admit,
    /// Refused: too many walks in flight. Retry after the hint.
    Shed {
        /// Suggested client backoff.
        retry_after: SimDuration,
    },
}

#[derive(Debug, Clone)]
struct CacheEntry {
    result: Vec<Candidate>,
    satisfied: bool,
    expires_at: SimTime,
    /// Attributes the result depends on (invalidation targets).
    attrs: Vec<String>,
    /// Last-touch tick for LRU eviction.
    touched: u64,
}

/// Per-gateway front door state: result cache, single-flight table, and
/// admission counters. Time is passed in explicitly ([`SimTime`] is virtual
/// time in the simulator and milliseconds-since-start in the daemon), so
/// the struct itself is transport-agnostic.
#[derive(Debug, Default)]
pub struct Frontdoor {
    /// Tunables.
    pub cfg: FrontdoorConfig,
    cache: BTreeMap<String, CacheEntry>,
    /// key → leader walk currently in flight for it.
    inflight: BTreeMap<String, QueryId>,
    /// leader walk → its key (reverse index for completion).
    leaders: BTreeMap<QueryId, String>,
    lru_clock: u64,
    /// Counter mirror of the obs `fd_*` series.
    pub stats: FrontdoorStats,
}

impl Frontdoor {
    /// Creates an empty front door.
    pub fn new(cfg: FrontdoorConfig) -> Self {
        Frontdoor {
            cfg,
            cache: BTreeMap::new(),
            inflight: BTreeMap::new(),
            leaders: BTreeMap::new(),
            lru_clock: 0,
            stats: FrontdoorStats::default(),
        }
    }

    /// Routes one incoming query (already canonicalized to `key`): cache
    /// hit, coalesce onto an in-flight walk, admit a new walk, or shed.
    pub fn begin(&mut self, key: &str, now: SimTime) -> FrontdoorDecision {
        self.lru_clock += 1;
        if let Some(entry) = self.cache.get_mut(key) {
            if entry.expires_at > now {
                entry.touched = self.lru_clock;
                self.stats.hits += 1;
                return FrontdoorDecision::Hit {
                    result: entry.result.clone(),
                    satisfied: entry.satisfied,
                };
            }
            self.cache.remove(key);
        }
        if let Some(leader) = self.inflight.get(key) {
            self.stats.coalesced += 1;
            return FrontdoorDecision::Coalesce { leader: *leader };
        }
        if self.leaders.len() >= self.cfg.max_pending {
            self.stats.shed += 1;
            return FrontdoorDecision::Shed {
                retry_after: self.cfg.retry_after,
            };
        }
        self.stats.misses += 1;
        FrontdoorDecision::Admit
    }

    /// Registers `id` as the leader walk for `key`. Call before issuing
    /// the query: a query with no anchors completes synchronously inside
    /// `issue_query`, and the completion hook must already find the leader.
    pub fn lead(&mut self, key: String, id: QueryId) {
        self.inflight.insert(key.clone(), id);
        self.leaders.insert(id, key);
    }

    /// Completion hook: if `id` was a leader walk, stores its result in
    /// the cache (evicting the LRU entry at capacity) and clears the
    /// single-flight slot. Returns `true` when `id` was frontdoor-led.
    pub fn complete(
        &mut self,
        id: QueryId,
        result: Vec<Candidate>,
        satisfied: bool,
        attrs: Vec<String>,
        now: SimTime,
    ) -> bool {
        let Some(key) = self.leaders.remove(&id) else {
            return false;
        };
        self.inflight.remove(&key);
        if self.cfg.cache_capacity == 0 {
            return true;
        }
        while self.cache.len() >= self.cfg.cache_capacity {
            let lru = self
                .cache
                .iter()
                .min_by_key(|(_, e)| e.touched)
                .map(|(k, _)| k.clone());
            match lru {
                Some(k) => {
                    self.cache.remove(&k);
                    self.stats.evictions += 1;
                }
                None => break,
            }
        }
        self.lru_clock += 1;
        self.cache.insert(
            key,
            CacheEntry {
                result,
                satisfied,
                expires_at: now + self.cfg.cache_ttl,
                attrs,
                touched: self.lru_clock,
            },
        );
        true
    }

    /// Purges every cached entry whose result depends on `attr`. Returns
    /// how many entries were dropped.
    pub fn invalidate_attr(&mut self, attr: &str) -> usize {
        let before = self.cache.len();
        self.cache.retain(|_, e| !e.attrs.iter().any(|a| a == attr));
        let dropped = before - self.cache.len();
        self.stats.invalidations += dropped as u64;
        dropped
    }

    /// Number of live cache entries (tests and diagnostics).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Number of in-flight leader walks (admission diagnostics).
    pub fn in_flight(&self) -> usize {
        self.leaders.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastry::NodeId;
    use rbay_query::parse_query;
    use simnet::NodeAddr;

    fn key_of(src: &str) -> String {
        query_key(&parse_query(src).unwrap())
    }

    fn cand(n: u32) -> Candidate {
        Candidate {
            id: NodeId(n as u128),
            addr: NodeAddr(n),
            site: SiteId(0),
            sort_key: None,
        }
    }

    fn fd(capacity: usize, max_pending: usize) -> Frontdoor {
        Frontdoor::new(FrontdoorConfig {
            cache_ttl: SimDuration::from_millis(1_000),
            cache_capacity: capacity,
            max_pending,
            retry_after: SimDuration::from_millis(50),
        })
    }

    #[test]
    fn key_ignores_predicate_order_whitespace_and_literal_spelling() {
        let a = key_of("SELECT 2 FROM * WHERE GPU = true AND CPU_utilization < 10.0");
        let b = key_of("select   2 from * where CPU_utilization < 10 and GPU = true ;");
        assert_eq!(a, b);
    }

    #[test]
    fn key_separates_value_kinds_and_site_case() {
        assert_ne!(
            key_of("SELECT 1 FROM * WHERE a = true"),
            key_of("SELECT 1 FROM * WHERE a = \"true\"")
        );
        assert_ne!(
            key_of("SELECT 1 FROM * WHERE a = 10"),
            key_of("SELECT 1 FROM * WHERE a = \"10\"")
        );
        assert_eq!(
            key_of("SELECT 1 FROM \"Tokyo\", \"tokyo\", \"Sydney\" WHERE a = 1"),
            key_of("SELECT 1 FROM \"sydney\", \"TOKYO\" WHERE a = 1")
        );
        assert_ne!(
            key_of("SELECT 1 FROM * WHERE a = 1"),
            key_of("SELECT 2 FROM * WHERE a = 1"),
            "k is part of the key"
        );
    }

    #[test]
    fn cache_hits_until_ttl_expires() {
        let mut fd = fd(8, 8);
        let t0 = SimTime::from_millis(0);
        assert!(matches!(fd.begin("k", t0), FrontdoorDecision::Admit));
        fd.lead("k".into(), QueryId(1));
        assert!(fd.complete(QueryId(1), vec![cand(1)], true, vec!["a".into()], t0));
        match fd.begin("k", SimTime::from_millis(999)) {
            FrontdoorDecision::Hit { result, satisfied } => {
                assert!(satisfied);
                assert_eq!(result.len(), 1);
            }
            other => panic!("expected hit, got {other:?}"),
        }
        assert!(
            matches!(
                fd.begin("k", SimTime::from_millis(1_000)),
                FrontdoorDecision::Admit
            ),
            "entry expired at ttl"
        );
        assert_eq!(fd.stats.hits, 1);
        assert_eq!(fd.stats.misses, 2);
    }

    #[test]
    fn single_flight_coalesces_and_fan_out_clears() {
        let mut fd = fd(8, 8);
        let t0 = SimTime::from_millis(0);
        assert!(matches!(fd.begin("k", t0), FrontdoorDecision::Admit));
        fd.lead("k".into(), QueryId(7));
        match fd.begin("k", t0) {
            FrontdoorDecision::Coalesce { leader } => assert_eq!(leader, QueryId(7)),
            other => panic!("expected coalesce, got {other:?}"),
        }
        assert_eq!(fd.in_flight(), 1);
        assert!(fd.complete(QueryId(7), vec![], false, vec![], t0));
        assert_eq!(fd.in_flight(), 0);
        assert!(
            matches!(fd.begin("k", t0), FrontdoorDecision::Hit { .. }),
            "negative results cache too"
        );
    }

    #[test]
    fn admission_sheds_beyond_max_pending() {
        let mut fd = fd(8, 1);
        let t0 = SimTime::from_millis(0);
        assert!(matches!(fd.begin("a", t0), FrontdoorDecision::Admit));
        fd.lead("a".into(), QueryId(1));
        match fd.begin("b", t0) {
            FrontdoorDecision::Shed { retry_after } => {
                assert_eq!(retry_after, SimDuration::from_millis(50));
            }
            other => panic!("expected shed, got {other:?}"),
        }
        // Coalescing onto the existing walk is still admitted.
        assert!(matches!(
            fd.begin("a", t0),
            FrontdoorDecision::Coalesce { .. }
        ));
        fd.complete(QueryId(1), vec![], false, vec![], t0);
        assert!(matches!(fd.begin("b", t0), FrontdoorDecision::Admit));
        assert_eq!(fd.stats.shed, 1);
    }

    #[test]
    fn lru_evicts_least_recently_touched() {
        let mut fd = fd(2, 8);
        let t0 = SimTime::from_millis(0);
        for (i, k) in ["a", "b"].iter().enumerate() {
            assert!(matches!(fd.begin(k, t0), FrontdoorDecision::Admit));
            fd.lead((*k).into(), QueryId(i as u64));
            fd.complete(QueryId(i as u64), vec![], true, vec![], t0);
        }
        // Touch "a" so "b" becomes the LRU entry.
        assert!(matches!(fd.begin("a", t0), FrontdoorDecision::Hit { .. }));
        assert!(matches!(fd.begin("c", t0), FrontdoorDecision::Admit));
        fd.lead("c".into(), QueryId(9));
        fd.complete(QueryId(9), vec![], true, vec![], t0);
        assert_eq!(fd.cache_len(), 2);
        assert!(matches!(fd.begin("a", t0), FrontdoorDecision::Hit { .. }));
        assert!(
            matches!(fd.begin("b", t0), FrontdoorDecision::Admit),
            "b was evicted"
        );
        assert_eq!(fd.stats.evictions, 1);
    }

    #[test]
    fn invalidation_purges_only_dependent_entries() {
        let mut fd = fd(8, 8);
        let t0 = SimTime::from_millis(0);
        fd.begin("gpu", t0);
        fd.lead("gpu".into(), QueryId(1));
        fd.complete(QueryId(1), vec![cand(1)], true, vec!["GPU".into()], t0);
        fd.begin("cpu", t0);
        fd.lead("cpu".into(), QueryId(2));
        fd.complete(QueryId(2), vec![cand(2)], true, vec!["CPU".into()], t0);
        assert_eq!(fd.invalidate_attr("GPU"), 1);
        assert!(matches!(fd.begin("gpu", t0), FrontdoorDecision::Admit));
        assert!(matches!(fd.begin("cpu", t0), FrontdoorDecision::Hit { .. }));
        assert_eq!(fd.stats.invalidations, 1);
    }

    #[test]
    fn query_attrs_cover_predicates_and_groupby() {
        let q = parse_query(
            "SELECT 1 FROM * WHERE GPU = true AND CPU_utilization < 50 GROUPBY RAM ASC",
        )
        .unwrap();
        assert_eq!(query_attrs(&q), vec!["CPU_utilization", "GPU", "RAM"]);
    }

    #[test]
    fn lowest_rtt_uses_the_matrix() {
        let m = simnet::topology::table2_rtt_matrix();
        let rtt = |a: SiteId, b: SiteId| m[a.0 as usize][b.0 as usize];
        let all: Vec<SiteId> = (0..8).map(SiteId).collect();
        // A client is always closest to its own site.
        for s in 0..8u16 {
            assert_eq!(lowest_rtt_site(SiteId(s), &all, rtt), Some(SiteId(s)));
        }
        // Tokyo (5) with its own site unavailable goes to the nearest
        // remaining region, not an arbitrary one.
        let others: Vec<SiteId> = (0..8).map(SiteId).filter(|s| s.0 != 5).collect();
        let picked = lowest_rtt_site(SiteId(5), &others, rtt).unwrap();
        for s in &others {
            assert!(rtt(SiteId(5), picked) <= rtt(SiteId(5), *s));
        }
        assert_eq!(lowest_rtt_site(SiteId(0), &[], rtt), None);
    }
}
