//! Backend adapters wiring [`rbay_wire::Transport`] into this crate's
//! protocol actors.
//!
//! [`SimTransport`] is the in-memory backend: it delegates straight to the
//! `simnet::Context` the actors have always used, so simulation behavior
//! is bit-for-bit unchanged. [`NetAdapter`] gives the sans-I/O `pastry`
//! and `scribe` layers (which speak [`pastry::Net`]) a view of *any*
//! transport — the simulator here, real sockets in `rbay-bench`'s
//! `rbay-node` daemon.

use crate::actor::RbayMsg;
use crate::types::RbayPayload;
use pastry::{Net, PastryMsg};
use rbay_wire::Transport;
use scribe::ScribeMsg;
use simnet::{Context, NodeAddr, SimDuration, SimTime, SiteId, TimerToken};

/// [`Transport`] over a `simnet::Context` — the delivery path every tier-1
/// test exercises.
pub struct SimTransport<'a, 'c> {
    ctx: &'a mut Context<'c, RbayMsg>,
}

impl<'a, 'c> SimTransport<'a, 'c> {
    /// Wraps a simulation context.
    pub fn new(ctx: &'a mut Context<'c, RbayMsg>) -> Self {
        SimTransport { ctx }
    }
}

impl Transport<RbayMsg> for SimTransport<'_, '_> {
    fn send(&mut self, to: NodeAddr, msg: RbayMsg) {
        self.ctx.send(to, msg);
    }

    fn now(&self) -> SimTime {
        self.ctx.now()
    }

    fn set_timer(&mut self, delay: SimDuration, token: TimerToken) {
        self.ctx.set_timer(delay, token);
    }

    fn rtt_ms(&self, a: SiteId, b: SiteId) -> f64 {
        self.ctx.topology().rtt_ms(a, b)
    }
}

/// Adapter giving the sans-I/O routing layers (`pastry::Net`) a view of
/// any [`Transport`] carrying [`RbayMsg`] frames.
pub struct NetAdapter<'t, T> {
    tr: &'t mut T,
}

impl<'t, T: Transport<RbayMsg>> NetAdapter<'t, T> {
    /// Borrows a transport for the duration of one protocol call.
    pub fn new(tr: &'t mut T) -> Self {
        NetAdapter { tr }
    }
}

impl<T: Transport<RbayMsg>> Net<ScribeMsg<RbayPayload>> for NetAdapter<'_, T> {
    fn send(&mut self, to: NodeAddr, msg: PastryMsg<ScribeMsg<RbayPayload>>) {
        self.tr.send(to, msg);
    }

    fn rtt_ms(&self, a: SiteId, b: SiteId) -> f64 {
        self.tr.rtt_ms(a, b)
    }
}
