//! The federation harness: brings up a whole RBAY deployment over the
//! simulator and offers the admin/customer API the paper describes —
//! post resources with policies, multicast policy changes, and issue
//! composite queries.

use crate::actor::RbayNode;
use crate::frontdoor::{lowest_rtt_site, FrontdoorConfig, FrontdoorResponse, FrontdoorStats};
use crate::host::{RbayConfig, RbayHost};
use crate::types::{AdminCommand, Candidate, QueryId, QueryRecord, RbayEvent, RbayPayload};
use aascript::SharedSandbox;
use pastry::{seed_overlay, NodeId, NodeInfo, PastryNode};
use rbay_query::{parse_query, AttrValue, ParseQueryError, Query};
use scribe::{ScribeLayer, TopicId};
use simnet::obs::Recorder;
use simnet::{NodeAddr, SimDuration, SimTime, Simulation, SiteId, Topology};
use std::collections::BTreeMap;
use std::rc::Rc;

/// A running federation: every topology node hosts a full RBAY stack over
/// a pre-converged Pastry overlay.
///
/// ```
/// use rbay_core::Federation;
/// use rbay_query::AttrValue;
/// use simnet::{NodeAddr, Topology};
///
/// let mut fed = Federation::new(Topology::single_site(32, 0.5), 42);
/// fed.post_resource(NodeAddr(3), "GPU", AttrValue::Bool(true));
/// fed.settle();
/// let q = fed.issue_query(NodeAddr(9), "SELECT 1 FROM * WHERE GPU = true", None).unwrap();
/// fed.settle();
/// let rec = fed.query_record(NodeAddr(9), q).unwrap();
/// assert!(rec.satisfied);
/// ```
pub struct Federation {
    sim: Simulation<RbayNode>,
    cfg: Rc<RbayConfig>,
    /// Mirror of each node's query counter (so ids are known at issue
    /// time).
    issued: BTreeMap<NodeAddr, u32>,
    next_cmd: u64,
    /// Shared observability recorder; disabled until
    /// [`Federation::enable_obs`].
    obs: Recorder,
    /// Linearized log of admin installs (`post_resource` /
    /// `update_attr`), in issue order — the ground-truth oracle
    /// `rbay-check` linearizes query results against.
    installs: Vec<(NodeAddr, String, AttrValue)>,
}

impl Federation {
    /// Builds a federation over `topology` with default configuration.
    pub fn new(topology: Topology, seed: u64) -> Self {
        Federation::with_config(topology, seed, RbayConfig::default())
    }

    /// Builds a federation with a custom [`RbayConfig`].
    pub fn with_config(topology: Topology, seed: u64, cfg: RbayConfig) -> Self {
        let cfg = Rc::new(cfg);
        let sandbox = SharedSandbox::new();
        // Border routers per site: the three lowest addresses (retries
        // rotate through them, so one failed gateway is survivable).
        let gateways: Vec<Vec<NodeAddr>> = (0..topology.site_count() as u16)
            .map(|s| {
                let mut nodes = topology.nodes_of_site(SiteId(s));
                nodes.sort();
                nodes.truncate(3);
                assert!(!nodes.is_empty(), "every site has nodes");
                nodes
            })
            .collect();
        let site_names: Vec<String> = (0..topology.site_count() as u16)
            .map(|s| topology.site(SiteId(s)).name.clone())
            .collect();

        let cfg2 = Rc::clone(&cfg);
        let topo2 = topology.clone();
        let mut sim = Simulation::new(topology, seed, move |addr| {
            let info = NodeInfo {
                id: NodeId::hash_of(format!("rbay-node:{}", addr.0).as_bytes()),
                addr,
                site: topo2.site_of(addr),
            };
            RbayNode {
                pastry: PastryNode::new(info),
                scribe: ScribeLayer::new(),
                host: RbayHost::new(
                    Rc::clone(&cfg2),
                    info.id,
                    addr,
                    info.site,
                    sandbox.clone(),
                    gateways.clone(),
                    site_names.clone(),
                ),
            }
        });

        // Seed the converged overlay (protocol joins remain available and
        // are tested separately; the evaluation runs over a stable
        // overlay, §IV.A).
        let mut nodes: Vec<PastryNode> = sim
            .actors()
            .map(|(_, a)| PastryNode::new(a.pastry.info()))
            .collect();
        let rtts = sim.topology().clone();
        seed_overlay(&mut nodes, |a, b| rtts.rtt_ms(a, b));
        for (i, n) in nodes.into_iter().enumerate() {
            sim.actor_mut(NodeAddr(i as u32)).pastry = n;
        }

        Federation {
            sim,
            cfg,
            issued: BTreeMap::new(),
            next_cmd: 0,
            obs: Recorder::default(),
            installs: Vec::new(),
        }
    }

    /// Turns on the observability plane for the whole federation: one
    /// shared [`Recorder`] (event buffer capped at `capacity`) is installed
    /// into the engine and every node's Pastry, Scribe, and host layers.
    /// Returns a handle onto the shared buffer.
    pub fn enable_obs(&mut self, capacity: usize) -> Recorder {
        let rec = Recorder::enabled(capacity);
        self.sim.set_recorder(rec.clone());
        for i in 0..self.sim.topology().node_count() as u32 {
            let a = self.sim.actor_mut(NodeAddr(i));
            a.pastry.set_recorder(rec.clone());
            a.scribe.set_recorder(rec.clone());
            a.host.obs = rec.clone();
        }
        self.obs = rec.clone();
        rec
    }

    /// The federation's observability recorder (disabled until
    /// [`Federation::enable_obs`]).
    pub fn recorder(&self) -> &Recorder {
        &self.obs
    }

    /// Membership of `topic` as the tree itself sees it: the number of
    /// parent→child edges (the sum of all `children` sets) over non-failed
    /// nodes. In a consistent tree this equals the number of attached
    /// non-root members; double-counted children inflate it.
    pub fn tree_edge_count(&self, topic: TopicId) -> usize {
        self.sim
            .actors()
            .filter(|(addr, _)| !self.sim.is_failed(*addr))
            .filter_map(|(_, a)| a.scribe.topic(topic))
            .map(|st| st.children.len())
            .sum()
    }

    /// The root's current aggregate count for `topic`, read from any live
    /// node that believes it is the tree's root (`None` when no live root
    /// exists or the root has no aggregate yet).
    pub fn tree_root_count(&self, topic: TopicId) -> Option<u64> {
        self.sim
            .actors()
            .filter(|(addr, _)| !self.sim.is_failed(*addr))
            .find(|(_, a)| a.scribe.topic(topic).is_some_and(|st| st.is_root))
            .and_then(|(_, a)| a.scribe.root_aggregate(topic))
            .and_then(|v| v.as_count())
    }

    /// Maximum depth of `topic`'s tree over live nodes: the longest
    /// parent-pointer chain from any member up to a root (capped at the
    /// node count to stay finite under transient parent cycles).
    pub fn tree_max_depth(&self, topic: TopicId) -> usize {
        let n = self.sim.topology().node_count();
        let parent_of: BTreeMap<NodeAddr, Option<NodeAddr>> = self
            .sim
            .actors()
            .filter(|(addr, _)| !self.sim.is_failed(*addr))
            .filter_map(|(addr, a)| a.scribe.topic(topic).map(|st| (addr, st.parent)))
            .collect();
        let mut max = 0usize;
        for start in parent_of.keys() {
            let mut depth = 0usize;
            let mut cur = *start;
            while depth < n {
                match parent_of.get(&cur).copied().flatten() {
                    Some(p) => {
                        depth += 1;
                        cur = p;
                    }
                    None => break,
                }
            }
            max = max.max(depth);
        }
        max
    }

    /// The underlying simulation (topology, clock, stats, actors).
    pub fn sim(&self) -> &Simulation<RbayNode> {
        &self.sim
    }

    /// Mutable access to the underlying simulation.
    pub fn sim_mut(&mut self) -> &mut Simulation<RbayNode> {
        &mut self.sim
    }

    /// The shared configuration.
    pub fn config(&self) -> &RbayConfig {
        &self.cfg
    }

    /// Admin API: posts a resource on `node` — sets the attribute and
    /// joins the site-scoped `attr=value` tree.
    pub fn post_resource(&mut self, node: NodeAddr, attr: &str, value: AttrValue) {
        let attr = attr.to_owned();
        self.installs.push((node, attr.clone(), value.clone()));
        let now = self.sim.now();
        self.sim.schedule_call(now, node, move |a, ctx| {
            a.host.now = ctx.now();
            a.host.post_resource(&attr, value);
            a.drain_ops(ctx);
        });
    }

    /// Admin API: updates an attribute reading without changing
    /// membership (e.g. a fresh utilization sample). Drains ops: under
    /// [`RbayConfig::frontdoor_invalidation`] the update multicasts a
    /// cache invalidation.
    pub fn update_attr(&mut self, node: NodeAddr, attr: &str, value: AttrValue) {
        let attr = attr.to_owned();
        self.installs.push((node, attr.clone(), value.clone()));
        let now = self.sim.now();
        self.sim.schedule_call(now, node, move |a, ctx| {
            a.host.now = ctx.now();
            a.host.update_attr(&attr, value);
            a.drain_ops(ctx);
        });
    }

    /// Admin API: installs the node-level policy AA. Compile errors panic
    /// the scheduled call (use valid scripts; the aascript crate exposes
    /// fallible compilation directly for validation).
    pub fn install_node_aa(&mut self, node: NodeAddr, src: &str) {
        let src = src.to_owned();
        let now = self.sim.now();
        self.sim.schedule_call(now, node, move |a, _ctx| {
            a.host
                .install_node_aa(&src)
                .expect("node AA script must compile and run");
        });
    }

    /// Admin API: installs a per-attribute AA.
    pub fn install_attr_aa(&mut self, node: NodeAddr, attr: &str, src: &str) {
        let (attr, src) = (attr.to_owned(), src.to_owned());
        let now = self.sim.now();
        self.sim.schedule_call(now, node, move |a, _ctx| {
            a.host
                .install_attr_aa(&attr, &src)
                .expect("attribute AA script must compile and run");
        });
    }

    /// Admin API: registers a dynamic tree on `node`, whose membership the
    /// node AA's `onSubscribe`/`onUnsubscribe` decide each maintenance
    /// round.
    pub fn register_dynamic_tree(&mut self, node: NodeAddr, tree: &str) {
        let tree = tree.to_owned();
        let now = self.sim.now();
        self.sim.schedule_call(now, node, move |a, _ctx| {
            a.host.dynamic_trees.push(tree);
        });
    }

    /// Admin API: multicasts a policy command to every member of
    /// `tree_name` in `site`; each member's `onDeliver` decides the new
    /// attribute value (Fig. 11 onDeliver). Returns the command id.
    pub fn admin_multicast(
        &mut self,
        admin: NodeAddr,
        site: SiteId,
        tree_name: &str,
        attr: &str,
        payload: AttrValue,
    ) -> u64 {
        let cmd_id = self.next_cmd;
        self.next_cmd += 1;
        let (tree_name, attr) = (tree_name.to_owned(), attr.to_owned());
        let now = self.sim.now();
        self.sim.schedule_call(now, admin, move |a, ctx| {
            a.host.now = ctx.now();
            let topic = a.host.tree_topic(&tree_name, site);
            let cmd = AdminCommand {
                cmd_id,
                attr,
                payload,
                issued_at: ctx.now(),
            };
            let scope = a.host.routing_scope(site);
            a.host.ops.push_back(crate::host::Op::Multicast {
                topic,
                scope,
                payload: RbayPayload::Admin(cmd),
            });
            a.drain_ops(ctx);
        });
        cmd_id
    }

    /// Admin API: probes the root of `tree_name` in `site` for its global
    /// view (size plus attribute statistics when
    /// [`crate::RbayConfig::aggregate_attr`] is configured). The answer
    /// lands in the probing node's [`RbayHost::tree_stats`] after
    /// [`Federation::settle`].
    pub fn probe_tree_stats(&mut self, node: NodeAddr, tree_name: &str, site: SiteId) {
        let tree = tree_name.to_owned();
        let now = self.sim.now();
        self.sim.schedule_call(now, node, move |a, ctx| {
            a.host.now = ctx.now();
            let topic = a.host.tree_topic(&tree, site);
            let scope = a.host.routing_scope(site);
            let me = a.host.addr;
            a.host.ops.push_back(crate::host::Op::Probe {
                topic,
                scope,
                payload: RbayPayload::StatsProbe { reply_to: me, tree },
            });
            a.drain_ops(ctx);
        });
    }

    /// Customer API: parses and issues a query from `node`. The returned
    /// id can be resolved with [`Federation::query_record`] once the
    /// simulation settles.
    ///
    /// # Errors
    ///
    /// Returns the parse error for malformed query text.
    pub fn issue_query(
        &mut self,
        node: NodeAddr,
        query: &str,
        password: Option<&str>,
    ) -> Result<QueryId, ParseQueryError> {
        let q = parse_query(query)?;
        Ok(self.issue_parsed_query(node, q, password))
    }

    /// Customer API: issues an already-parsed query.
    pub fn issue_parsed_query(
        &mut self,
        node: NodeAddr,
        query: Query,
        password: Option<&str>,
    ) -> QueryId {
        let seq = self.issued.entry(node).or_insert(0);
        let id = QueryId::new(node, *seq);
        *seq += 1;
        let password = password.map(str::to_owned);
        let now = self.sim.now();
        self.sim.schedule_call(now, node, move |a, ctx| {
            a.host.now = ctx.now();
            let got = a.host.issue_query(query, password);
            debug_assert_eq!(got, id, "federation id mirror out of sync");
            a.drain_ops(ctx);
        });
        id
    }

    /// Enables the query front door on every gateway of every site (the
    /// three lowest addresses per site) with the given tunables, and
    /// subscribes each to its site's `__frontdoor` invalidation tree.
    /// Build the federation with [`RbayConfig::frontdoor_invalidation`]
    /// set so writes keep those caches coherent; call `settle()` (or let
    /// traffic flow) so the tree joins complete.
    pub fn enable_frontdoor(&mut self, fcfg: FrontdoorConfig) {
        let now = self.sim.now();
        let sites = self.sim.topology().site_count() as u16;
        for s in 0..sites {
            let gws = self.sim.actor(NodeAddr(0)).host.gateways[s as usize].clone();
            for gw in gws {
                let fcfg = fcfg.clone();
                self.sim.schedule_call(now, gw, move |a, ctx| {
                    a.host.now = ctx.now();
                    a.host.enable_frontdoor(fcfg);
                    a.drain_ops(ctx);
                });
            }
        }
    }

    /// Geo-aware redirection: the site whose front door a client should
    /// talk to — the lowest-RTT site by the topology's matrix (for the
    /// AWS-8 preset, the paper's Table II numbers).
    pub fn frontdoor_site_for(&self, client: NodeAddr) -> SiteId {
        let topo = self.sim.topology();
        let client_site = topo.site_of(client);
        let all: Vec<SiteId> = (0..topo.site_count() as u16).map(SiteId).collect();
        lowest_rtt_site(client_site, &all, |a, b| topo.rtt_ms(a, b)).unwrap_or(client_site)
    }

    /// Customer API via the front door: redirects `client` to its
    /// lowest-RTT site's first gateway, then routes the query through
    /// that gateway's cache / single-flight / admission state. `Pending`
    /// outcomes resolve on the *gateway* — poll
    /// [`Federation::query_record`] with the returned gateway and id after
    /// [`Federation::settle`].
    ///
    /// # Errors
    ///
    /// Returns the parse error for malformed query text.
    pub fn frontdoor_query(
        &mut self,
        client: NodeAddr,
        query: &str,
        password: Option<&str>,
    ) -> Result<FrontdoorOutcome, ParseQueryError> {
        let q = parse_query(query)?;
        let site = self.frontdoor_site_for(client);
        let gateway = self.sim.actor(client).host.gateways[site.0 as usize][0];
        let now = self.sim.now();
        let password = password.map(str::to_owned);
        let response = {
            let a = self.sim.actor_mut(gateway);
            a.host.now = now;
            a.host.frontdoor_query(q, password)
        };
        // A new walk issued ops (probes, timers) synchronously into the
        // gateway's queue; drain them in-context, and keep the federation's
        // per-node id mirror in step with the gateway's sequence counter.
        if let FrontdoorResponse::Pending {
            coalesced: false, ..
        } = &response
        {
            *self.issued.entry(gateway).or_insert(0) += 1;
            self.sim.schedule_call(now, gateway, |a, ctx| {
                a.drain_ops(ctx);
            });
        }
        Ok(match response {
            FrontdoorResponse::Cached { result, satisfied } => {
                FrontdoorOutcome::Cached { result, satisfied }
            }
            FrontdoorResponse::Pending { id, coalesced } => FrontdoorOutcome::Pending {
                gateway,
                id,
                coalesced,
            },
            FrontdoorResponse::Shed { retry_after } => FrontdoorOutcome::Shed { retry_after },
        })
    }

    /// The front-door counters of `node` (`None` when it has no front
    /// door).
    pub fn frontdoor_stats(&self, node: NodeAddr) -> Option<FrontdoorStats> {
        self.sim
            .actor(node)
            .host
            .frontdoor
            .as_ref()
            .map(|fd| fd.stats)
    }

    /// Runs `rounds` maintenance rounds (AA timers + aggregation ticks) on
    /// every node, separated by `interval` so each round's messages land
    /// before the next.
    pub fn run_maintenance(&mut self, rounds: u32, interval: SimDuration) {
        for _ in 0..rounds {
            let now = self.sim.now();
            for i in 0..self.sim.topology().node_count() as u32 {
                self.sim.schedule_call(now, NodeAddr(i), |a, ctx| {
                    a.maintenance_round(ctx);
                });
            }
            self.sim.run_for(interval);
        }
    }

    /// Schedules `rounds` maintenance rounds on every node, `interval`
    /// apart, WITHOUT running the simulation. Under exploration mode the
    /// scheduled calls land in the exploration store, so the checker —
    /// not virtual time — decides how round work interleaves with
    /// queries, repairs, and faults.
    pub fn schedule_maintenance(&mut self, rounds: u32, interval: SimDuration) {
        let mut at = self.sim.now();
        for _ in 0..rounds {
            for i in 0..self.sim.topology().node_count() as u32 {
                self.sim.schedule_call(at, NodeAddr(i), |a, ctx| {
                    a.maintenance_round(ctx);
                });
            }
            at += interval;
        }
    }

    /// Lets all in-flight work drain (tree joins, queries, echoes).
    pub fn settle(&mut self) {
        self.sim.run_until_idle();
    }

    /// Runs until `deadline` (for experiments with open-loop load).
    pub fn run_until(&mut self, deadline: SimTime) {
        self.sim.run_until(deadline);
    }

    /// The query record kept by the issuing node.
    pub fn query_record(&self, node: NodeAddr, id: QueryId) -> Option<&QueryRecord> {
        self.sim.actor(node).host.queries.get(&id)
    }

    /// Every query id issued through the federation API, in issue order
    /// per node. The committed-query oracle walks this list: a query
    /// whose origin is still alive must eventually complete.
    pub fn issued_queries(&self) -> Vec<(NodeAddr, QueryId)> {
        self.issued
            .iter()
            .flat_map(|(&node, &count)| (0..count).map(move |seq| (node, QueryId::new(node, seq))))
            .collect()
    }

    /// The linearized admin install log (`post_resource` /
    /// `update_attr` calls in issue order): the ground truth the
    /// committed-query oracle checks recall against.
    pub fn install_log(&self) -> &[(NodeAddr, String, AttrValue)] {
        &self.installs
    }

    /// All measurement events recorded by `node`.
    pub fn events(&self, node: NodeAddr) -> &[RbayEvent] {
        &self.sim.actor(node).host.events
    }

    /// Direct access to a node (attributes, AAs, scribe state) for tests
    /// and harnesses.
    pub fn node(&self, addr: NodeAddr) -> &RbayNode {
        self.sim.actor(addr)
    }

    /// Mutable access to a node.
    pub fn node_mut(&mut self, addr: NodeAddr) -> &mut RbayNode {
        self.sim.actor_mut(addr)
    }
}

/// Outcome of a [`Federation::frontdoor_query`].
#[derive(Debug, Clone)]
pub enum FrontdoorOutcome {
    /// Answered from the gateway cache, no overlay traffic.
    Cached {
        /// The cached candidate set.
        result: Vec<Candidate>,
        /// Whether the cached walk found its `k` nodes.
        satisfied: bool,
    },
    /// A walk (new or shared) will answer on `gateway`; poll
    /// [`Federation::query_record`] after settling.
    Pending {
        /// Which gateway runs the walk.
        gateway: NodeAddr,
        /// The walk to poll.
        id: QueryId,
        /// Whether this query attached to an already-running walk.
        coalesced: bool,
    },
    /// Refused by admission control.
    Shed {
        /// Suggested client backoff.
        retry_after: SimDuration,
    },
}

impl std::fmt::Debug for Federation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Federation({} nodes, {} sites, t={})",
            self.sim.topology().node_count(),
            self.sim.topology().site_count(),
            self.sim.now()
        )
    }
}
