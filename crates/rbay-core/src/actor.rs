//! The actor embedding a full RBAY node: Pastry routing state, Scribe
//! trees, and the RBAY application host. Also drains the host's deferred
//! operation queue after every dispatch.
//!
//! All protocol logic is written against [`rbay_wire::Transport`] (the
//! `*_via` methods), so the same node runs over the in-memory simulator
//! (the [`simnet::Actor`] impl below, via `SimTransport`) or over real
//! sockets (`rbay-bench`'s `rbay-node` daemon, via `TcpTransport`).

use crate::host::{split_timer_token, Op, RbayHost};
use crate::transport::{NetAdapter, SimTransport};
use crate::types::RbayPayload;
use pastry::{LeafSet, PastryMsg, PastryNode, RoutingTable};
use rbay_wire::Transport;
use scribe::{ScribeApp, ScribeLayer, ScribeMsg};
use simnet::{Actor, Context, NodeAddr, TimerToken};

/// The message type on the wire: Pastry framing around Scribe framing
/// around RBAY payloads.
pub type RbayMsg = PastryMsg<ScribeMsg<RbayPayload>>;

/// One complete RBAY node.
#[derive(Debug)]
pub struct RbayNode {
    /// DHT routing state.
    pub pastry: PastryNode,
    /// Tree state.
    pub scribe: ScribeLayer,
    /// Application state.
    pub host: RbayHost,
}

impl RbayNode {
    /// Executes every queued host operation, with full access to the
    /// routing layers. Operations may enqueue further operations (e.g. a
    /// RemoteProbe handler queues probes); the loop runs until quiescence.
    pub fn drain_ops(&mut self, ctx: &mut Context<'_, RbayMsg>) {
        self.drain_ops_via(&mut SimTransport::new(ctx));
    }

    /// [`RbayNode::drain_ops`] over any transport.
    pub fn drain_ops_via<T: Transport<RbayMsg>>(&mut self, tr: &mut T) {
        let RbayNode {
            pastry,
            scribe,
            host,
        } = self;
        while let Some(op) = host.ops.pop_front() {
            let mut net = NetAdapter::new(tr);
            match op {
                Op::Subscribe { topic, scope } => {
                    scribe.subscribe(pastry, &mut net, host, topic, scope);
                    scribe.set_local_value(topic, host.tree_local_value());
                    // If the tree was already attached the subscribe was a
                    // no-op; drop any pending-join marker so the loss-retry
                    // logic does not re-join after a later unsubscribe.
                    if scribe
                        .topic(topic)
                        .is_some_and(|st| st.is_root || st.parent.is_some())
                    {
                        host.sub_requested.remove(&topic);
                    }
                }
                Op::Unsubscribe { topic } => {
                    scribe.unsubscribe::<RbayPayload, _>(pastry, &mut net, topic);
                }
                Op::Probe {
                    topic,
                    scope,
                    payload,
                } => {
                    scribe.probe_root(pastry, &mut net, host, topic, scope, payload);
                }
                Op::Anycast {
                    topic,
                    scope,
                    payload,
                } => {
                    scribe.anycast(pastry, &mut net, host, topic, scope, payload);
                }
                Op::Multicast {
                    topic,
                    scope,
                    payload,
                } => {
                    scribe.multicast(pastry, &mut net, host, topic, scope, payload);
                }
                Op::Direct { to, payload } => {
                    scribe.send_direct(&mut net, to, payload);
                }
                Op::LearnPeer { info } => {
                    pastry.insert_peer(&net, info);
                }
                Op::Timer { delay, token } => {
                    tr.set_timer(delay, token);
                }
            }
        }
    }

    /// Runs one maintenance round: AA `onTimer`/membership checks, an
    /// aggregation tick pushing tree aggregates one level rootward, and
    /// (when enabled) heartbeat-based failure detection over the node's
    /// overlay neighbours.
    pub fn maintenance_round(&mut self, ctx: &mut Context<'_, RbayMsg>) {
        self.maintenance_round_via(&mut SimTransport::new(ctx));
    }

    /// [`RbayNode::maintenance_round`] over any transport.
    pub fn maintenance_round_via<T: Transport<RbayMsg>>(&mut self, tr: &mut T) {
        self.host.now = tr.now();
        self.host.maintenance();
        // Re-join any tree whose JOIN traffic was lost in flight.
        {
            let scribe = &self.scribe;
            self.host.retry_pending_subscriptions(|t| {
                scribe
                    .topic(t)
                    .is_some_and(|st| st.is_root || st.parent.is_some())
            });
            // A subscribed topic left detached (parent cleared by a
            // NotChild NACK or a failure repair whose rejoin traffic was
            // then lost) must keep re-joining until it is attached again;
            // duplicate JoinAcks from the same parent are harmless.
            let detached: Vec<(scribe::TopicId, Option<simnet::SiteId>)> = self
                .scribe
                .topics()
                .filter(|(_, st)| st.subscribed && !st.is_root && st.parent.is_none())
                .map(|(t, st)| (*t, st.scope))
                .collect();
            for (topic, scope) in detached {
                self.host.ops.push_back(Op::Subscribe { topic, scope });
            }
        }
        // Refresh this node's contribution to every subscribed tree (the
        // aggregate attribute may have changed since the last round).
        let fresh = self.host.tree_local_value();
        let subscribed: Vec<scribe::TopicId> = self
            .scribe
            .topics()
            .filter(|(_, st)| st.subscribed)
            .map(|(t, _)| *t)
            .collect();
        for t in subscribed {
            self.scribe.set_local_value(t, fresh.clone());
        }
        {
            let mut net = NetAdapter::new(tr);
            self.scribe
                .aggregate_tick::<RbayPayload, _>(&mut self.pastry, &mut net);
        }
        // Peer-set anti-entropy: one Announce + leaf-set pull per round so
        // routing knowledge lost to concurrent joins or dropped frames
        // eventually heals (the join-time Announce is one-shot).
        {
            let mut net = NetAdapter::new(tr);
            self.pastry.gossip_round(&mut net);
        }
        if self.host.cfg.failure_detection {
            // Probe every peer in routing state plus tree parents/children
            // — the peers whose failure this node must react to. The
            // routing tables are included because a dead entry there
            // silently blackholes every Join/anycast routed through it:
            // unlike a leaf-set neighbour it is never consulted for
            // repair, so nothing else would ever notice the corpse.
            let mut peers: Vec<simnet::NodeAddr> =
                self.pastry.known_peers().iter().map(|e| e.addr).collect();
            for (_, st) in self.scribe.topics() {
                peers.extend(st.children.iter().copied());
                peers.extend(st.parent);
            }
            peers.sort();
            peers.dedup();
            self.host.heartbeat_round(&peers);
            self.repair_failures_via(tr);
        }
        self.drain_ops_via(tr);
    }

    /// Runs Pastry and Scribe repairs for peers the failure detector just
    /// declared dead.
    fn repair_failures_via<T: Transport<RbayMsg>>(&mut self, tr: &mut T) {
        let dead = std::mem::take(&mut self.host.newly_failed);
        for addr in dead {
            {
                let mut net = NetAdapter::new(tr);
                self.pastry.handle_failure(&mut net, addr);
            }
            let mut net = NetAdapter::new(tr);
            self.scribe
                .handle_failure(&mut self.pastry, &mut net, &mut self.host, addr);
        }
    }

    /// Dispatches one incoming message over any transport (what the
    /// [`Actor`] impl does for the simulator, and the daemon's event loop
    /// does for decoded TCP frames).
    pub fn on_message_via<T: Transport<RbayMsg>>(
        &mut self,
        tr: &mut T,
        from: NodeAddr,
        msg: RbayMsg,
    ) {
        self.host.now = tr.now();
        // Any message from a peer proves it alive: clear a false-positive
        // failure declaration so the peer is re-pinged and re-grafted
        // instead of staying buried forever.
        if !scribe::seeded_bug_active(3) {
            self.host.unsuspect(from);
        }
        {
            let RbayNode {
                pastry,
                scribe,
                host,
            } = self;
            let mut net = NetAdapter::new(tr);
            let mut app = ScribeApp {
                layer: scribe,
                host,
            };
            pastry.on_message(&mut net, &mut app, from, msg);
        }
        self.drain_ops_via(tr);
    }

    /// Fires one timer over any transport.
    pub fn on_timer_via<T: Transport<RbayMsg>>(&mut self, tr: &mut T, token: TimerToken) {
        self.host.now = tr.now();
        let (seq, attempt, kind) = split_timer_token(token);
        if kind != 0 {
            self.host.on_query_timer(seq, attempt, kind);
        }
        self.drain_ops_via(tr);
    }

    /// Sends this node's Pastry join request toward `bootstrap`. Safe to
    /// re-send each tick until [`PastryNode::is_joined`] turns true — join
    /// traffic may be lost on a real network.
    pub fn join_via<T: Transport<RbayMsg>>(&mut self, tr: &mut T, bootstrap: NodeAddr) {
        let mut net = NetAdapter::new(tr);
        self.pastry.join(&mut net, bootstrap);
    }

    /// Marks this node as the overlay's first member: joined, with empty
    /// routing state. Only the bootstrap daemon of a fresh deployment
    /// should call this; everyone else joins through it.
    pub fn seed_as_bootstrap(&mut self) {
        let id = self.pastry.info().id;
        self.pastry.seed_state(
            RoutingTable::new(id),
            LeafSet::new(id),
            RoutingTable::new(id),
            LeafSet::new(id),
        );
    }
}

impl Actor for RbayNode {
    type Msg = RbayMsg;

    fn on_message(&mut self, ctx: &mut Context<'_, RbayMsg>, from: NodeAddr, msg: RbayMsg) {
        self.on_message_via(&mut SimTransport::new(ctx), from, msg);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, RbayMsg>, token: TimerToken) {
        self.on_timer_via(&mut SimTransport::new(ctx), token);
    }
}
