//! # rbay-workloads — evaluation workload generators
//!
//! Reproduces the workload of the paper's §IV: Amazon EC2's instance-type
//! family as aggregation trees (23 types per site, Gaussian tree sizes),
//! per-node attribute inventories, password-checking `onGet` policies, and
//! the composite query mix (three attributes focused on one instance type,
//! with a location predicate spanning 1–8 sites).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rbay_core::Federation;
use rbay_query::AttrValue;
use simnet::{NodeAddr, SiteId};

/// The 23 EC2 instance types of the paper's footnote 1 (§IV.A).
pub const EC2_INSTANCE_TYPES: [&str; 23] = [
    "t2.micro",
    "t2.small",
    "t2.medium",
    "m3.medium",
    "m3.large",
    "m3.xlarge",
    "m3.2xlarge",
    "c3.large",
    "c3.xlarge",
    "c3.2xlarge",
    "c3.4xlarge",
    "c3.8xlarge",
    "g2.2xlarge",
    "r3.large",
    "r3.xlarge",
    "r3.2xlarge",
    "r3.4xlarge",
    "r3.8xlarge",
    "i2.xlarge",
    "i2.2xlarge",
    "i2.4xlarge",
    "i2.8xlarge",
    "hs1.8xlarge",
];

/// The password every workload AA checks (the evaluation invokes `onGet`
/// per query, "only checking if the password matches or not", §IV.A).
pub const WORKLOAD_PASSWORD: &str = "3053482032";

/// The Fig. 5-style password policy installed on workload nodes.
pub fn password_aa_script() -> String {
    format!(
        r#"
        AA = {{Password = "{WORKLOAD_PASSWORD}"}}
        function onGet(caller, password)
            if password == AA.Password then
                return true
            end
            return nil
        end
    "#
    )
}

/// A weighted mix over instance types. "The tree size follows a Gaussian
/// distribution — the center tree of c3.8xlarge has more members than the
/// edge tree of t2.micro or hs1.8xlarge" (§IV.A).
#[derive(Debug, Clone)]
pub struct InstanceMix {
    cumulative: Vec<f64>,
}

impl InstanceMix {
    /// The paper's Gaussian mix: weight peaks at the middle of the type
    /// list (`c3.8xlarge`, index 11) and decays toward both ends.
    pub fn gaussian() -> Self {
        let n = EC2_INSTANCE_TYPES.len();
        let center = 11.0; // c3.8xlarge
        let sigma = 4.5;
        let weights: Vec<f64> = (0..n)
            .map(|i| {
                let d = (i as f64 - center) / sigma;
                (-0.5 * d * d).exp()
            })
            .collect();
        Self::from_weights(&weights)
    }

    /// A uniform mix (each type equally likely).
    pub fn uniform() -> Self {
        Self::from_weights(&vec![1.0; EC2_INSTANCE_TYPES.len()])
    }

    /// Builds a mix from raw weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is not one non-negative weight per instance
    /// type with a positive sum.
    pub fn from_weights(weights: &[f64]) -> Self {
        assert_eq!(weights.len(), EC2_INSTANCE_TYPES.len());
        assert!(weights.iter().all(|w| *w >= 0.0));
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0);
        let mut acc = 0.0;
        let cumulative = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        InstanceMix { cumulative }
    }

    /// Samples an instance type.
    pub fn sample(&self, rng: &mut SmallRng) -> &'static str {
        let u: f64 = rng.gen();
        let idx = self
            .cumulative
            .iter()
            .position(|c| u <= *c)
            .unwrap_or(EC2_INSTANCE_TYPES.len() - 1);
        EC2_INSTANCE_TYPES[idx]
    }

    /// The probability mass of type `i`.
    pub fn weight(&self, i: usize) -> f64 {
        let prev = if i == 0 { 0.0 } else { self.cumulative[i - 1] };
        self.cumulative[i] - prev
    }
}

/// Scenario knobs for populating a federation.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Instance-type mix.
    pub mix: InstanceMix,
    /// Extra passive attributes per node (the paper runs 1,000/node; the
    /// default here is smaller to keep tests fast — benches raise it).
    pub extra_attrs_per_node: usize,
    /// Install the password `onGet` policy on every node.
    pub password_policy: bool,
    /// Give every node a CPU_utilization reading in [0, 100).
    pub utilization: bool,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            mix: InstanceMix::gaussian(),
            extra_attrs_per_node: 10,
            password_policy: true,
            utilization: true,
        }
    }
}

/// Populates `fed` with the EC2 evaluation workload: every node gets an
/// instance type (joining that site-scoped tree), a utilization reading,
/// `extra_attrs_per_node` passive attributes, and optionally the password
/// policy. Returns the instance type assigned to each node.
pub fn populate_ec2_federation(
    fed: &mut Federation,
    seed: u64,
    cfg: &ScenarioConfig,
) -> Vec<&'static str> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = fed.sim().topology().node_count();
    let script = password_aa_script();
    let mut assigned = Vec::with_capacity(n);
    for i in 0..n as u32 {
        let node = NodeAddr(i);
        let itype = cfg.mix.sample(&mut rng);
        assigned.push(itype);
        fed.post_resource(node, "instance", AttrValue::str(itype));
        if cfg.utilization {
            let util = rng.gen_range(0.0..100.0);
            fed.update_attr(node, "CPU_utilization", AttrValue::Num(util));
        }
        for a in 0..cfg.extra_attrs_per_node {
            fed.update_attr(node, &format!("attr{a}"), AttrValue::Num((a % 100) as f64));
        }
        if cfg.password_policy {
            fed.install_node_aa(node, &script);
        }
    }
    fed.settle();
    assigned
}

/// Generates the composite query mix of §IV.C: each query focuses on one
/// instance type, adds two residual attribute predicates, and varies its
/// location predicate over `n_sites` sites starting near the querier.
#[derive(Debug)]
pub struct QueryGen {
    rng: SmallRng,
    mix: InstanceMix,
    site_names: Vec<String>,
    extra_attrs: usize,
    /// Only query instance types in this index band (the Gaussian's
    /// center) — customers ask for the types that actually exist at the
    /// deployed scale. `None` samples the full mix.
    focus_band: Option<(usize, usize)>,
}

impl QueryGen {
    /// Creates a generator for a federation with the given site names.
    pub fn new(seed: u64, site_names: Vec<String>, extra_attrs: usize) -> Self {
        QueryGen {
            rng: SmallRng::seed_from_u64(seed),
            mix: InstanceMix::gaussian(),
            site_names,
            extra_attrs,
            focus_band: None,
        }
    }

    /// Restricts generated queries to instance types with indices in
    /// `lo..=hi` (the popular center of the Gaussian), re-normalized.
    pub fn focus_popular(mut self, lo: usize, hi: usize) -> Self {
        assert!(lo <= hi && hi < EC2_INSTANCE_TYPES.len());
        self.focus_band = Some((lo, hi));
        self
    }

    fn sample_type(&mut self) -> &'static str {
        match self.focus_band {
            None => self.mix.sample(&mut self.rng),
            Some((lo, hi)) => loop {
                let t = self.mix.sample(&mut self.rng);
                let idx = EC2_INSTANCE_TYPES
                    .iter()
                    .position(|x| *x == t)
                    .expect("sampled type exists");
                if (lo..=hi).contains(&idx) {
                    return t;
                }
            },
        }
    }

    /// One composite query: `SELECT k FROM <n_sites sites> WHERE instance =
    /// <type> AND attr_i >= 0 AND CPU_utilization < 100`. The residuals
    /// always pass, matching the paper's setup where queries succeed and
    /// latency is the measured quantity.
    pub fn composite(&mut self, home_site: SiteId, n_sites: usize, k: u32) -> String {
        let itype = self.sample_type();
        let total = self.site_names.len();
        let n_sites = n_sites.clamp(1, total);
        // The site list starts at the querier's home site and wraps.
        let sites: Vec<String> = (0..n_sites)
            .map(|off| {
                let idx = (home_site.0 as usize + off) % total;
                format!("\"{}\"", self.site_names[idx])
            })
            .collect();
        let from = if n_sites == total {
            "*".to_owned()
        } else {
            sites.join(", ")
        };
        let extra = if self.extra_attrs > 0 {
            let a = self.rng.gen_range(0..self.extra_attrs);
            format!(" AND attr{a} >= 0")
        } else {
            String::new()
        };
        format!(
            "SELECT {k} FROM {from} WHERE instance = \"{itype}\"{extra} AND CPU_utilization < 100"
        )
    }

    /// An atomic query for a single unique attribute (the Fig. 8a
    /// microbenchmark: "each of which randomly chooses to ask for one
    /// unique resource attribute").
    pub fn atomic(&mut self, attr_space: usize, k: u32) -> String {
        let a = self.rng.gen_range(0..attr_space.max(1));
        format!("SELECT {k} FROM * WHERE shared{a} = true")
    }
}

/// A Zipf(s) popularity distribution over ranks `0..n`, sampled by
/// inverse CDF. Rank 0 is the most popular item; `s = 0` degenerates to
/// uniform, `s ≈ 1` is the classic web-request skew.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let weights: Vec<f64> = (0..n).map(|r| 1.0 / ((r + 1) as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Zipf { cdf }
    }

    /// Samples a rank.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf
            .iter()
            .position(|c| u <= *c)
            .unwrap_or(self.cdf.len() - 1)
    }

    /// The probability mass of `rank`.
    pub fn weight(&self, rank: usize) -> f64 {
        let prev = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        self.cdf[rank] - prev
    }

    /// Number of ranks.
    pub fn population(&self) -> usize {
        self.cdf.len()
    }
}

/// One step of the closed-loop front-door workload.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadOp {
    /// Issue this Zql query (popularity-ranked: hot queries repeat often
    /// under Zipf skew, which is what makes a result cache pay off).
    Query(String),
    /// Update `attr` to `value` on some resource holder — the write path
    /// that triggers invalidation multicasts.
    Update {
        /// Attribute to overwrite.
        attr: String,
        /// New value (monotone counter, so every write is a real change).
        value: AttrValue,
    },
}

/// Closed-loop, popularity-skewed read/write workload for the query
/// front door (§tentpole of the front-door evaluation): reads draw a
/// query from a fixed population by Zipf rank, writes touch attributes
/// that cached queries depend on.
#[derive(Debug)]
pub struct ZipfWorkload {
    rng: SmallRng,
    zipf: Zipf,
    queries: Vec<String>,
    read_ratio: f64,
    write_attrs: Vec<String>,
    write_seq: u64,
}

impl ZipfWorkload {
    /// Builds the workload over a popularity-ranked query population
    /// (`queries[0]` is the hottest). `skew` is the Zipf exponent;
    /// `read_ratio` in `[0, 1]` is the fraction of ops that are queries;
    /// writes cycle over `write_attrs` (may be empty when
    /// `read_ratio == 1`).
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty, `read_ratio` is outside `[0, 1]`,
    /// or writes are possible with no attributes to write.
    pub fn new(
        seed: u64,
        queries: Vec<String>,
        skew: f64,
        read_ratio: f64,
        write_attrs: Vec<String>,
    ) -> Self {
        assert!(!queries.is_empty(), "need at least one query");
        assert!((0.0..=1.0).contains(&read_ratio));
        assert!(
            read_ratio >= 1.0 || !write_attrs.is_empty(),
            "writes need target attributes"
        );
        let zipf = Zipf::new(queries.len(), skew);
        ZipfWorkload {
            rng: SmallRng::seed_from_u64(seed),
            zipf,
            queries,
            read_ratio,
            write_attrs,
            write_seq: 0,
        }
    }

    /// The next operation of the closed loop.
    pub fn next_op(&mut self) -> WorkloadOp {
        if self.rng.gen::<f64>() < self.read_ratio {
            let rank = self.zipf.sample(&mut self.rng);
            WorkloadOp::Query(self.queries[rank].clone())
        } else {
            let i = self.rng.gen_range(0..self.write_attrs.len());
            self.write_seq += 1;
            WorkloadOp::Update {
                attr: self.write_attrs[i].clone(),
                value: AttrValue::Num(self.write_seq as f64),
            }
        }
    }

    /// Size of the query population.
    pub fn population(&self) -> usize {
        self.queries.len()
    }

    /// The popularity distribution.
    pub fn zipf(&self) -> &Zipf {
        &self.zipf
    }
}

/// A popularity-ranked query population over the EC2 workload: `n`
/// distinct queries asking for the Gaussian-popular instance types first,
/// varying `k` and the residual attribute so every rank is a distinct
/// cache key.
pub fn instance_query_population(n: usize, extra_attrs: usize) -> Vec<String> {
    let mix = InstanceMix::gaussian();
    // Instance types by descending popularity in the Gaussian mix.
    let mut by_pop: Vec<usize> = (0..EC2_INSTANCE_TYPES.len()).collect();
    by_pop.sort_by(|a, b| mix.weight(*b).total_cmp(&mix.weight(*a)));
    (0..n)
        .map(|rank| {
            let itype = EC2_INSTANCE_TYPES[by_pop[rank % by_pop.len()]];
            let k = 1 + (rank / by_pop.len()) as u32;
            let extra = if extra_attrs > 0 {
                format!(" AND attr{} >= 0", rank % extra_attrs)
            } else {
                String::new()
            };
            format!("SELECT {k} FROM * WHERE instance = \"{itype}\"{extra}")
        })
        .collect()
}

/// Convenience: the Table II site names (re-exported from simnet's preset).
pub fn aws8_site_names() -> Vec<String> {
    simnet::topology::AWS8_SITE_NAMES
        .iter()
        .map(|s| (*s).to_owned())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::Topology;

    #[test]
    fn gaussian_mix_peaks_at_center() {
        let mix = InstanceMix::gaussian();
        let center = mix.weight(11);
        let edge = mix.weight(0);
        assert!(center > edge * 3.0, "center {center} vs edge {edge}");
        let total: f64 = (0..23).map(|i| mix.weight(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_matches_weights_roughly() {
        let mix = InstanceMix::gaussian();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0u32; 23];
        for _ in 0..20_000 {
            let t = mix.sample(&mut rng);
            let idx = EC2_INSTANCE_TYPES.iter().position(|x| *x == t).unwrap();
            counts[idx] += 1;
        }
        assert!(counts[11] > counts[0] * 2, "{counts:?}");
        assert!(counts[11] > counts[22] * 2);
    }

    #[test]
    fn populate_builds_instance_trees() {
        let mut fed = Federation::new(Topology::single_site(40, 0.5), 7);
        let cfg = ScenarioConfig {
            extra_attrs_per_node: 3,
            password_policy: false,
            ..ScenarioConfig::default()
        };
        let assigned = populate_ec2_federation(&mut fed, 9, &cfg);
        assert_eq!(assigned.len(), 40);
        // Every node has its instance attr and extra attrs.
        for i in 0..40u32 {
            let host = &fed.node(NodeAddr(i)).host;
            assert_eq!(
                host.attrs.get("instance"),
                Some(&AttrValue::str(assigned[i as usize]))
            );
            assert!(host.attrs.contains_key("attr0"));
            assert!(host.attrs.contains_key("CPU_utilization"));
        }
    }

    #[test]
    fn populated_federation_answers_instance_queries() {
        let mut fed = Federation::new(Topology::single_site(60, 0.5), 8);
        let cfg = ScenarioConfig {
            extra_attrs_per_node: 2,
            ..ScenarioConfig::default()
        };
        let assigned = populate_ec2_federation(&mut fed, 10, &cfg);
        fed.run_maintenance(4, simnet::SimDuration::from_millis(200));
        fed.settle();
        // Query for some assigned type with the right password.
        let target = assigned[0];
        let expected = assigned.iter().filter(|t| **t == target).count();
        let q = fed
            .issue_query(
                NodeAddr(30),
                &format!("SELECT 1 FROM * WHERE instance = \"{target}\""),
                Some(WORKLOAD_PASSWORD),
            )
            .unwrap();
        fed.settle();
        let rec = fed.query_record(NodeAddr(30), q).unwrap();
        assert!(
            rec.satisfied,
            "type {target} has {expected} holders: {rec:?}"
        );
    }

    #[test]
    fn zipf_concentrates_mass_on_low_ranks() {
        let z = Zipf::new(100, 1.0);
        assert!(z.weight(0) > z.weight(10) * 5.0);
        let total: f64 = (0..100).map(|r| z.weight(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // s = 0 is uniform.
        let u = Zipf::new(10, 0.0);
        assert!((u.weight(0) - u.weight(9)).abs() < 1e-12);
    }

    #[test]
    fn zipf_workload_respects_ratio_and_skew() {
        let queries = instance_query_population(50, 10);
        assert_eq!(queries.len(), 50);
        for q in &queries {
            rbay_query::parse_query(q).expect(q);
        }
        // Distinct cache keys per rank.
        let distinct: std::collections::BTreeSet<&String> = queries.iter().collect();
        assert_eq!(distinct.len(), 50);

        let mut wl = ZipfWorkload::new(
            9,
            queries.clone(),
            1.0,
            0.9,
            vec!["attr0".into(), "attr1".into()],
        );
        let mut reads = 0u32;
        let mut writes = 0u32;
        let mut top = 0u32;
        for _ in 0..10_000 {
            match wl.next_op() {
                WorkloadOp::Query(q) => {
                    reads += 1;
                    if q == queries[0] {
                        top += 1;
                    }
                }
                WorkloadOp::Update { attr, .. } => {
                    writes += 1;
                    assert!(attr.starts_with("attr"));
                }
            }
        }
        let ratio = f64::from(reads) / f64::from(reads + writes);
        assert!((0.85..=0.95).contains(&ratio), "read ratio {ratio}");
        // Under Zipf(1) over 50 ranks, the hottest query is >15% of reads.
        assert!(f64::from(top) / f64::from(reads) > 0.15, "top share");
    }

    #[test]
    fn zipf_workload_is_deterministic_per_seed() {
        let queries = instance_query_population(10, 4);
        let mut a = ZipfWorkload::new(3, queries.clone(), 0.8, 0.7, vec!["attr0".into()]);
        let mut b = ZipfWorkload::new(3, queries, 0.8, 0.7, vec!["attr0".into()]);
        for _ in 0..100 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn query_gen_produces_parseable_queries() {
        let mut qg = QueryGen::new(3, aws8_site_names(), 10);
        for n_sites in 1..=8 {
            let q = qg.composite(SiteId(2), n_sites, 3);
            let parsed = rbay_query::parse_query(&q).expect(&q);
            assert_eq!(parsed.k, 3);
            assert_eq!(parsed.predicates.len(), 3, "{q}");
            match parsed.from {
                rbay_query::FromClause::AllSites => assert_eq!(n_sites, 8),
                rbay_query::FromClause::Sites(s) => assert_eq!(s.len(), n_sites),
            }
        }
        let a = qg.atomic(100, 1);
        assert!(rbay_query::parse_query(&a).is_ok(), "{a}");
    }
}
