//! Criterion micro-benchmarks: the hot primitives under the figures —
//! routing decisions, AA handler invocation, query parsing, aggregate
//! merging, SHA-1 id hashing, and the simulator's event queue.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pastry::{seed_overlay, NodeId, NodeInfo, PastryNode};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scribe::AggValue;
use simnet::{CalendarQueue, NodeAddr, SimDuration, SimTime, SiteId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("pastry_next_hop");
    for &n in &[100usize, 1_000, 10_000] {
        let mut nodes: Vec<PastryNode> = (0..n)
            .map(|i| {
                PastryNode::new(NodeInfo {
                    id: NodeId::hash_of(format!("n{i}").as_bytes()),
                    addr: NodeAddr(i as u32),
                    site: SiteId((i % 8) as u16),
                })
            })
            .collect();
        seed_overlay(&mut nodes, |_, _| 0.0);
        let node = &nodes[0];
        let keys: Vec<NodeId> = (0..64)
            .map(|k| NodeId::hash_of(format!("key{k}").as_bytes()))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % keys.len();
                black_box(node.next_hop(keys[i], None))
            });
        });
    }
    group.finish();
}

fn bench_aa_invocation(c: &mut Criterion) {
    let sandbox = aascript::SharedSandbox::new();
    let script = aascript::Script::compile(
        r#"
        AA = {Password = "3053482032"}
        function onGet(caller, password)
            if password == AA.Password then
                return true
            end
            return nil
        end
    "#,
    )
    .unwrap();
    let aa = script.instantiate(&sandbox, 10_000).unwrap();
    let args = [
        aascript::Value::str("joe"),
        aascript::Value::str("3053482032"),
    ];
    // The historical name tracks whatever engine is the default.
    c.bench_function("aa_onget_password_check", |b| {
        b.iter(|| black_box(aa.invoke("onGet", &args, 10_000).unwrap()))
    });
    c.bench_function("aa_instantiate", |b| {
        b.iter(|| black_box(script.instantiate(&sandbox, 10_000).unwrap()))
    });

    // Engine A/B variants: the same handlers pinned to each engine, so the
    // bytecode-vs-tree-walk gap stays tracked by the harness.
    let loop_script = aascript::Script::compile(
        r#"
        function onTimer(n)
            local s = 0
            for i = 1, n do
                s = s + i % 7
            end
            return s
        end
    "#,
    )
    .unwrap();
    for engine in [aascript::Engine::Bytecode, aascript::Engine::TreeWalk] {
        let tag = match engine {
            aascript::Engine::Bytecode => "vm",
            aascript::Engine::TreeWalk => "treewalk",
        };
        let pinned = script.clone().with_engine(engine);
        let aa = pinned.instantiate(&sandbox, 10_000).unwrap();
        c.bench_function(&format!("aa_{tag}_onget_password_check"), |b| {
            b.iter(|| black_box(aa.invoke("onGet", &args, 10_000).unwrap()))
        });
        c.bench_function(&format!("aa_{tag}_instantiate"), |b| {
            b.iter(|| black_box(pinned.instantiate(&sandbox, 10_000).unwrap()))
        });
        let looper = loop_script
            .clone()
            .with_engine(engine)
            .instantiate(&sandbox, 10_000)
            .unwrap();
        let n = [aascript::Value::Num(200.0)];
        c.bench_function(&format!("aa_{tag}_sum_loop_200"), |b| {
            b.iter(|| black_box(looper.invoke("onTimer", &n, 1_000_000).unwrap()))
        });
    }
}

fn bench_query_parse(c: &mut Criterion) {
    let q = r#"SELECT 4 FROM "Virginia", "Tokyo" WHERE CPU_model = "Intel Core i7" AND CPU_utilization < 10% AND GPU = true GROUPBY CPU_utilization DESC;"#;
    c.bench_function("query_parse_composite", |b| {
        b.iter(|| black_box(rbay_query::parse_query(black_box(q)).unwrap()))
    });
}

fn bench_aggregate_merge(c: &mut Criterion) {
    let values: Vec<AggValue> = (0..64).map(AggValue::Count).collect();
    c.bench_function("aggregate_merge_64_children", |b| {
        b.iter(|| black_box(AggValue::merge_all(values.iter())))
    });
}

/// Hold-model throughput of the engine's event queue at a steady pending
/// count: each iteration pops the earliest event and schedules a
/// replacement 0–2s out (so ~half land past the calendar horizon, in the
/// overflow heap). `calendar` is the current [`CalendarQueue`];
/// `binary_heap` is the global `BinaryHeap` the engine used before, kept
/// as the baseline.
fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_event_queue");
    for &n in &[1_000usize, 100_000, 1_000_000] {
        group.bench_with_input(BenchmarkId::new("calendar", n), &n, |b, &n| {
            let mut rng = SmallRng::seed_from_u64(7);
            let mut q: CalendarQueue<()> = CalendarQueue::new();
            let mut seq = 0u64;
            for _ in 0..n {
                q.push(
                    SimTime::from_micros(rng.gen_range(0..2_000_000u64)),
                    seq,
                    (),
                );
                seq += 1;
            }
            b.iter(|| {
                let (at, _, ()) = q.pop().expect("queue stays full");
                q.push(
                    at + SimDuration::from_micros(rng.gen_range(0..2_000_000u64)),
                    seq,
                    (),
                );
                seq += 1;
                at
            });
        });
        group.bench_with_input(BenchmarkId::new("binary_heap", n), &n, |b, &n| {
            let mut rng = SmallRng::seed_from_u64(7);
            let mut q: BinaryHeap<Reverse<(SimTime, u64)>> = BinaryHeap::new();
            let mut seq = 0u64;
            for _ in 0..n {
                q.push(Reverse((
                    SimTime::from_micros(rng.gen_range(0..2_000_000u64)),
                    seq,
                )));
                seq += 1;
            }
            b.iter(|| {
                let Reverse((at, _)) = q.pop().expect("queue stays full");
                q.push(Reverse((
                    at + SimDuration::from_micros(rng.gen_range(0..2_000_000u64)),
                    seq,
                )));
                seq += 1;
                at
            });
        });
    }
    group.finish();
}

fn bench_sha1(c: &mut Criterion) {
    let data = vec![0xABu8; 64];
    c.bench_function("sha1_64B_nodeid", |b| {
        b.iter(|| black_box(pastry::sha1::sha1_u128(black_box(&data))))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_routing, bench_aa_invocation, bench_query_parse, bench_aggregate_merge, bench_event_queue, bench_sha1
);
criterion_main!(benches);
