//! Codec benchmarks for the `rbay-wire` binary protocol: encode and
//! decode of the messages that dominate cross-node traffic (the anycast
//! search walk, aggregation updates, the query AST). Results print in
//! criterion style and are additionally appended to `BENCH_wire.json`
//! (same array-of-records format as `BENCH_simnet.json`).

use pastry::{NodeId, PastryMsg};
use rbay_bench::{append_json_record, JsonRecord};
use rbay_core::{Candidate, QueryId, RbayMsg, RbayPayload, SearchState};
use rbay_query::parse_query;
use rbay_wire::{decode_frame, encode_frame};
use scribe::{AggValue, ScribeMsg, TopicId};
use simnet::{NodeAddr, SiteId};
use std::hint::black_box;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// The records land next to `BENCH_simnet.json` in the repository root
/// (cargo runs benches with the package directory as cwd).
fn wire_json_path() -> String {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../BENCH_wire.json")
        .to_string_lossy()
        .into_owned()
}

/// Median ns/op over `samples` batches, each sized to run ~`budget`.
fn measure(mut f: impl FnMut(), samples: usize, budget: Duration) -> f64 {
    // Calibrate the batch size.
    let mut iters: u64 = 1;
    let per_iter = loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        let per = elapsed.as_secs_f64() / iters as f64;
        if elapsed >= budget / samples as u32 || iters >= 1 << 30 {
            break per;
        }
        iters = iters.saturating_mul(2);
    };
    let batch = ((budget.as_secs_f64() / samples as f64 / per_iter.max(1e-9)).ceil() as u64).max(1);
    let mut results: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..batch {
                f();
            }
            start.elapsed().as_secs_f64() / batch as f64 * 1e9
        })
        .collect();
    results.sort_by(f64::total_cmp);
    results[results.len() / 2]
}

fn search_msg(slots: usize) -> RbayMsg {
    let query = Rc::new(
        parse_query(
            r#"SELECT 4 FROM * WHERE CPU_model = "Intel Core i7" AND CPU_utilization < 10% AND GPU = true GROUPBY CPU_utilization DESC"#,
        )
        .expect("query parses"),
    );
    let state = SearchState {
        query_id: QueryId(0x2a_0000_0001),
        reply_to: NodeAddr(7),
        query,
        password: Some("3053482032".into()),
        slots: (0..slots)
            .map(|i| Candidate {
                id: NodeId::hash_of(format!("cand{i}").as_bytes()),
                addr: NodeAddr(i as u32),
                site: SiteId(0),
                sort_key: Some(rbay_query::AttrValue::Num(i as f64)),
            })
            .collect(),
    };
    PastryMsg::Route {
        key: NodeId::hash_of(b"GPU=true"),
        payload: ScribeMsg::AnycastStep {
            topic: TopicId::new("GPU=true", "rbay"),
            payload: RbayPayload::Search(state),
            origin: NodeAddr(7),
            visited: (0..slots as u32).map(NodeAddr).collect(),
            stack: (0..4).map(NodeAddr).collect(),
        },
        hops: 3,
        scope: Some(SiteId(0)),
    }
}

fn agg_msg() -> RbayMsg {
    let multi = AggValue::Multi(
        (0..8)
            .map(|i| AggValue::Mean {
                sum: i as f64 * 12.5,
                count: i + 1,
            })
            .collect(),
    );
    PastryMsg::Direct(ScribeMsg::AggUpdate {
        topic: TopicId::new("GPU=true", "rbay"),
        value: multi,
    })
}

fn main() {
    // Under `cargo test --benches` just prove the bodies run.
    let test_mode = std::env::args().any(|a| a == "--test");
    let (samples, budget) = if test_mode {
        (1, Duration::ZERO)
    } else {
        (15, Duration::from_secs(1))
    };

    let cases: Vec<(&str, RbayMsg)> = vec![
        ("search_walk_4slots", search_msg(4)),
        ("agg_update_multi8", agg_msg()),
    ];
    let mut records = Vec::new();
    for (name, msg) in &cases {
        let frame = encode_frame(msg);
        let enc = measure(
            || {
                black_box(encode_frame(black_box(msg)));
            },
            samples,
            budget,
        );
        let dec = measure(
            || {
                black_box(decode_frame::<RbayMsg>(black_box(&frame)).expect("frame decodes"));
            },
            samples,
            budget,
        );
        println!(
            "wire_{name:<24} encode: {enc:>8.1} ns  decode: {dec:>8.1} ns  ({} bytes)",
            frame.len()
        );
        records.push(
            JsonRecord::new("wire_codec")
                .text("message", name)
                .int("frame_bytes", frame.len() as u64)
                .num("encode_ns", enc)
                .num("decode_ns", dec),
        );
    }
    if !test_mode {
        let path = wire_json_path();
        for r in &records {
            if let Err(e) = append_json_record(&path, r) {
                eprintln!("warning: could not write {path}: {e}");
            }
        }
        println!("recorded {} records to {path}", records.len());
    }
}
