//! Fig. 8a: scalability with the number of nodes.
//!
//! Paper setup (§IV.B.1): 10,000 RBAY agents with 10 attributes each (10%
//! exposed), 1,000 atomic queries each asking for one unique attribute;
//! the plotted quantity is the average number of DHT hops per query as the
//! datacenter size grows exponentially. Expectation: hops grow linearly in
//! log(N) — `O(log N)` routing.

use pastry::{seed_overlay, NodeId, NodeInfo, PastryApp, PastryMsg, PastryNode, SimNet};
use rbay_bench::{default_threads, emit_json, run_seeds, stats, HarnessOpts, JsonRecord};
use simnet::{Actor, Context, MessageSize, NodeAddr, SimTime, Simulation, SiteId, Topology};

#[derive(Debug, Clone, Copy)]
struct Probe(#[allow(dead_code)] u64);
impl MessageSize for Probe {}

#[derive(Default)]
struct HopRecorder {
    hops: Vec<u16>,
}
impl PastryApp<Probe> for HopRecorder {
    fn deliver<N: pastry::Net<Probe>>(
        &mut self,
        _node: &mut PastryNode,
        _net: &mut N,
        _key: NodeId,
        _payload: Probe,
        hops: u16,
    ) {
        self.hops.push(hops);
    }
    fn receive_direct<N: pastry::Net<Probe>>(
        &mut self,
        _node: &mut PastryNode,
        _net: &mut N,
        _from: NodeAddr,
        _payload: Probe,
    ) {
    }
}

struct Agent {
    node: PastryNode,
    app: HopRecorder,
}

impl Actor for Agent {
    type Msg = PastryMsg<Probe>;
    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeAddr, msg: Self::Msg) {
        let Agent { node, app } = self;
        let mut net = SimNet::new(ctx);
        node.on_message(&mut net, app, from, msg);
    }
}

struct Cell {
    mean_hops: f64,
    max_hops: f64,
    /// Probes delivered — the routing invariant is `delivered == queries`.
    delivered: usize,
    events: u64,
    wall_secs: f64,
}

fn avg_hops(n_nodes: usize, n_queries: usize, seed: u64) -> Cell {
    let topo = Topology::single_site(n_nodes, 0.5);
    // Seed the overlay before the simulation exists so each (large)
    // PastryNode is constructed exactly once and moved into its actor.
    let mut nodes: Vec<PastryNode> = (0..n_nodes as u32)
        .map(|i| {
            PastryNode::new(NodeInfo {
                id: NodeId::hash_of(format!("agent:{i}").as_bytes()),
                addr: NodeAddr(i),
                site: SiteId(0),
            })
        })
        .collect();
    seed_overlay(&mut nodes, |_, _| 0.0);
    let mut seeded = nodes.into_iter();
    let mut sim = Simulation::new(topo, seed, |_| Agent {
        node: seeded.next().expect("one node per address"),
        app: HopRecorder::default(),
    });
    // Each query targets one unique attribute key from a random source.
    for q in 0..n_queries {
        let key = NodeId::hash_of(format!("attr:{seed}:{q}").as_bytes());
        let src = NodeAddr(((q * 7919 + seed as usize) % n_nodes) as u32);
        sim.schedule_call(SimTime::ZERO, src, move |a, ctx| {
            let Agent { node, app } = a;
            let mut net = SimNet::new(ctx);
            node.route(&mut net, app, key, Probe(q as u64), None);
        });
    }
    sim.run_until_idle();
    let hops: Vec<f64> = sim
        .actors()
        .flat_map(|(_, a)| a.app.hops.iter().map(|h| *h as f64))
        .collect();
    let s = stats(&hops).expect("queries delivered");
    Cell {
        mean_hops: s.mean,
        max_hops: s.max,
        delivered: hops.len(),
        events: sim.stats().events(),
        wall_secs: sim.wall_time().as_secs_f64(),
    }
}

fn main() {
    let opts = HarnessOpts::from_args();
    let queries = opts.scaled(1_000, 100);
    let seeds = opts.seed_list();
    println!("Fig. 8a: average DHT hops per atomic query vs datacenter size");
    println!(
        "({queries} queries per point, {} seed(s); expectation: linear in log16 N)\n",
        seeds.len()
    );
    println!(
        "{:>8} {:>12} {:>10} {:>10}",
        "nodes", "log16(N)", "avg hops", "max hops"
    );
    let mut total_events = 0u64;
    let mut total_wall = 0.0f64;
    for &n in &[10usize, 50, 100, 500, 1_000, 5_000, 10_000] {
        let n = opts.scaled_nodes(n, 4);
        // One independent simulation per seed; merge deterministically in
        // seed order (mean of per-seed means, max of maxes).
        let cells = run_seeds(&seeds, default_threads(), |seed| avg_hops(n, queries, seed));
        // Exactly-once delivery is the routing invariant; a miss dumps a
        // schedule replayable through `rbay-check replay`.
        for (&seed, c) in seeds.iter().zip(&cells) {
            if c.delivered != queries {
                let v = rbay_check::Violation::ProbeLoss {
                    delivered: c.delivered,
                    expected: queries,
                };
                eprintln!("INVARIANT VIOLATION ({n} nodes, seed {seed}): {v}");
                rbay_bench::emit_schedule(
                    &opts,
                    &rbay_check::ScheduleFile {
                        spec: rbay_check::CheckSpec::bench_fig8(n, queries, seed),
                        violation: Some(v.kind().to_string()),
                        directives: Vec::new(),
                    },
                );
            }
        }
        let mean = cells.iter().map(|c| c.mean_hops).sum::<f64>() / cells.len() as f64;
        let max = cells.iter().map(|c| c.max_hops).fold(0.0, f64::max);
        let events: u64 = cells.iter().map(|c| c.events).sum();
        let wall: f64 = cells.iter().map(|c| c.wall_secs).sum();
        total_events += events;
        total_wall += wall;
        println!(
            "{:>8} {:>12.2} {:>10.2} {:>10.0}",
            n,
            (n as f64).log(16.0),
            mean,
            max
        );
        emit_json(
            &opts,
            &JsonRecord::new("fig8a")
                .int("nodes", n as u64)
                .int("queries", queries as u64)
                .int("seeds", seeds.len() as u64)
                .num("mean_hops", mean)
                .num("max_hops", max)
                .int("events", events)
                .num("sim_wall_secs", wall)
                .num(
                    "events_per_sec",
                    if wall > 0.0 {
                        events as f64 / wall
                    } else {
                        0.0
                    },
                ),
        );
    }
    eprintln!(
        "\n[engine] {total_events} events in {total_wall:.3}s of simulation loop = {:.0} events/sec",
        if total_wall > 0.0 { total_events as f64 / total_wall } else { 0.0 }
    );
}
