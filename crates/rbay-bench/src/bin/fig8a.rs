//! Fig. 8a: scalability with the number of nodes.
//!
//! Paper setup (§IV.B.1): 10,000 RBAY agents with 10 attributes each (10%
//! exposed), 1,000 atomic queries each asking for one unique attribute;
//! the plotted quantity is the average number of DHT hops per query as the
//! datacenter size grows exponentially. Expectation: hops grow linearly in
//! log(N) — `O(log N)` routing.

use pastry::{seed_overlay, NodeId, NodeInfo, PastryApp, PastryMsg, PastryNode, SimNet};
use rbay_bench::{stats, HarnessOpts};
use simnet::{Actor, Context, MessageSize, NodeAddr, SimTime, Simulation, SiteId, Topology};

#[derive(Debug, Clone, Copy)]
struct Probe(#[allow(dead_code)] u64);
impl MessageSize for Probe {}

#[derive(Default)]
struct HopRecorder {
    hops: Vec<u16>,
}
impl PastryApp<Probe> for HopRecorder {
    fn deliver<N: pastry::Net<Probe>>(
        &mut self,
        _node: &mut PastryNode,
        _net: &mut N,
        _key: NodeId,
        _payload: Probe,
        hops: u16,
    ) {
        self.hops.push(hops);
    }
    fn receive_direct<N: pastry::Net<Probe>>(
        &mut self,
        _node: &mut PastryNode,
        _net: &mut N,
        _from: NodeAddr,
        _payload: Probe,
    ) {
    }
}

struct Agent {
    node: PastryNode,
    app: HopRecorder,
}

impl Actor for Agent {
    type Msg = PastryMsg<Probe>;
    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeAddr, msg: Self::Msg) {
        let Agent { node, app } = self;
        let mut net = SimNet::new(ctx);
        node.on_message(&mut net, app, from, msg);
    }
}

fn avg_hops(n_nodes: usize, n_queries: usize, seed: u64) -> (f64, f64) {
    let topo = Topology::single_site(n_nodes, 0.5);
    let mut sim = Simulation::new(topo, seed, |addr| Agent {
        node: PastryNode::new(NodeInfo {
            id: NodeId::hash_of(format!("agent:{}", addr.0).as_bytes()),
            addr,
            site: SiteId(0),
        }),
        app: HopRecorder::default(),
    });
    let mut nodes: Vec<PastryNode> = sim
        .actors()
        .map(|(_, a)| PastryNode::new(a.node.info()))
        .collect();
    seed_overlay(&mut nodes, |_, _| 0.0);
    for (i, n) in nodes.into_iter().enumerate() {
        sim.actor_mut(NodeAddr(i as u32)).node = n;
    }
    // Each query targets one unique attribute key from a random source.
    for q in 0..n_queries {
        let key = NodeId::hash_of(format!("attr:{seed}:{q}").as_bytes());
        let src = NodeAddr(((q * 7919 + seed as usize) % n_nodes) as u32);
        sim.schedule_call(SimTime::ZERO, src, move |a, ctx| {
            let Agent { node, app } = a;
            let mut net = SimNet::new(ctx);
            node.route(&mut net, app, key, Probe(q as u64), None);
        });
    }
    sim.run_until_idle();
    let hops: Vec<f64> = sim
        .actors()
        .flat_map(|(_, a)| a.app.hops.iter().map(|h| *h as f64))
        .collect();
    let s = stats(&hops).expect("queries delivered");
    (s.mean, s.max)
}

fn main() {
    let opts = HarnessOpts::from_args();
    let queries = opts.scaled(1_000, 100);
    println!("Fig. 8a: average DHT hops per atomic query vs datacenter size");
    println!("({queries} queries per point; expectation: linear in log16 N)\n");
    println!("{:>8} {:>12} {:>10} {:>10}", "nodes", "log16(N)", "avg hops", "max hops");
    for &n in &[10usize, 50, 100, 500, 1_000, 5_000, 10_000] {
        let n = opts.scaled_nodes(n, 4);
        let (mean, max) = avg_hops(n, queries, opts.seed);
        println!(
            "{:>8} {:>12.2} {:>10.2} {:>10.0}",
            n,
            (n as f64).log(16.0),
            mean,
            max
        );
    }
}
