//! Runs every experiment harness in sequence (the whole evaluation
//! section in one command) by re-executing the sibling binaries.
//!
//! ```sh
//! cargo run --release -p rbay-bench --bin all_experiments -- --seed 42 --scale 1
//! ```

use rbay_bench::HarnessOpts;
use std::process::Command;

const BINS: [&str; 11] = [
    "table2",
    "fig8a",
    "fig8b",
    "fig8c",
    "fig9",
    "fig10",
    "fig11",
    "ablation_central",
    "ablation_aggregation",
    "churn",
    "openloop",
];

fn main() {
    let opts = HarnessOpts::from_args();
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin directory");
    let mut failures = Vec::new();
    for bin in BINS {
        println!("==================== {bin} ====================");
        let status = Command::new(bin_dir.join(bin))
            .arg("--seed")
            .arg(opts.seed.to_string())
            .arg("--scale")
            .arg(opts.scale.to_string())
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                failures.push(bin);
            }
            Err(e) => {
                eprintln!(
                    "{bin} failed to start: {e} (build with `cargo build --release -p rbay-bench`)"
                );
                failures.push(bin);
            }
        }
        println!();
    }
    if !failures.is_empty() {
        eprintln!("failed experiments: {failures:?}");
        std::process::exit(1);
    }
    println!("all {} experiments completed", BINS.len());
}
