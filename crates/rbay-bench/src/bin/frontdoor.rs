//! Front-door result cache: closed-loop Zipf workload with the cache
//! off vs on, same seed and op sequence, at equal recall.
//!
//! A popularity-ranked population of instance queries (Zipf-skewed, so
//! hot queries repeat) runs through [`Federation::frontdoor_query`]
//! twice: once with no gateway cache (every query walks the aggregation
//! trees) and once with the front door enabled (repeats are served from
//! the gateway). A small write stream updates attributes between
//! queries — one that cached queries depend on (exercising the
//! invalidation multicast) and a monitoring reading that none do.
//!
//! With `--json` each pass appends a row to `BENCH_frontdoor.json` with
//! the run parameters (query count, duration, query mix, warmup),
//! latency percentiles, throughput, and the front-door counters.

use rbay_bench::{append_json_record, percentile, HarnessOpts, JsonRecord};
use rbay_core::{Federation, FrontdoorConfig, FrontdoorOutcome, FrontdoorStats, RbayConfig};
use rbay_workloads::{
    instance_query_population, populate_ec2_federation, ScenarioConfig, WorkloadOp, ZipfWorkload,
    WORKLOAD_PASSWORD,
};
use simnet::{NodeAddr, SimDuration, Topology};

/// Where the rows land (repo root, next to BENCH_wire.json).
const FRONTDOOR_JSON: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_frontdoor.json");

/// Distinct queries in the Zipf population.
const DISTINCT: usize = 16;
/// Zipf skew.
const SKEW: f64 = 1.1;
/// Fraction of closed-loop ops that are queries (the rest are writes).
const READ_RATIO: f64 = 0.995;

struct PassResult {
    lats_ms: Vec<f64>,
    duration_s: f64,
    satisfied: usize,
    queries: usize,
    writes: usize,
    fd: FrontdoorStats,
}

fn main() {
    let opts = HarnessOpts::from_args();
    let nodes_per_site = opts.scaled_nodes(25, 8);
    let ops = opts.scaled(2000, 400);
    let warmup = DISTINCT;

    println!(
        "Front-door cache: {ops} closed-loop ops (Zipf s={SKEW} over {DISTINCT} queries, \
         {:.1}% reads), {nodes_per_site} nodes/site x 8 sites",
        100.0 * READ_RATIO
    );

    let off = run_pass(&opts, nodes_per_site, ops, warmup, false);
    let on = run_pass(&opts, nodes_per_site, ops, warmup, true);

    let report = |name: &str, r: &PassResult| {
        let mut lats = r.lats_ms.clone();
        lats.sort_by(f64::total_cmp);
        let qps = r.queries as f64 / r.duration_s;
        println!(
            "{name}: {} queries ({} satisfied) + {} writes in {:.3} sim-s -> {:.1} q/s, \
             p50 {:.2} ms, p99 {:.2} ms",
            r.queries,
            r.satisfied,
            r.writes,
            r.duration_s,
            qps,
            percentile(&lats, 0.50),
            percentile(&lats, 0.99),
        );
        qps
    };
    println!();
    let qps_off = report("cache off", &off);
    let qps_on = report("cache on ", &on);
    println!(
        "cache on : {} hit(s), {} miss(es), {} invalidation(s)",
        on.fd.hits, on.fd.misses, on.fd.invalidations
    );
    println!(
        "\nspeedup: {:.1}x q/s at recall {}/{} (off) vs {}/{} (on)",
        qps_on / qps_off,
        off.satisfied,
        off.queries,
        on.satisfied,
        on.queries
    );
    if off.satisfied != on.satisfied || off.queries != on.queries {
        eprintln!("frontdoor: FAIL: recall differs between passes");
        std::process::exit(1);
    }

    if opts.json {
        for (cache, r) in [(0u64, &off), (1u64, &on)] {
            let mut lats = r.lats_ms.clone();
            lats.sort_by(f64::total_cmp);
            let rec = JsonRecord::new("frontdoor")
                .int("cache", cache)
                .int("seed", opts.seed)
                .int("nodes_per_site", nodes_per_site as u64)
                .int("sites", 8)
                .int("queries", r.queries as u64)
                .int("writes", r.writes as u64)
                .int("distinct_queries", DISTINCT as u64)
                .num("zipf_s", SKEW)
                .num("read_ratio", READ_RATIO)
                .int("warmup_queries", warmup as u64)
                .text(
                    "query_mix",
                    "zipf over instance queries; writes: attr13 + CPU_utilization",
                )
                .num("duration_sim_s", r.duration_s)
                .num("queries_per_sec", r.queries as f64 / r.duration_s)
                .num("p50_ms", percentile(&lats, 0.50))
                .num("p99_ms", percentile(&lats, 0.99))
                .int("satisfied", r.satisfied as u64)
                .int("fd_hits", r.fd.hits)
                .int("fd_misses", r.fd.misses)
                .int("fd_coalesced", r.fd.coalesced)
                .int("fd_shed", r.fd.shed)
                .int("fd_invalidations", r.fd.invalidations);
            match append_json_record(FRONTDOOR_JSON, &rec) {
                Ok(()) => println!("frontdoor: appended cache={cache} row to {FRONTDOOR_JSON}"),
                Err(e) => eprintln!("frontdoor: cannot write {FRONTDOOR_JSON}: {e}"),
            }
        }
    }
}

/// One full pass: fresh federation, same seeds, cache off or on.
fn run_pass(
    opts: &HarnessOpts,
    nodes_per_site: usize,
    ops: usize,
    warmup: usize,
    cache: bool,
) -> PassResult {
    let cfg = RbayConfig {
        commit_results: false,
        frontdoor_invalidation: true,
        ..RbayConfig::default()
    };
    let mut fed =
        Federation::with_config(Topology::aws_ec2_8_sites(nodes_per_site), opts.seed, cfg);
    let scenario = ScenarioConfig {
        extra_attrs_per_node: DISTINCT,
        ..ScenarioConfig::default()
    };
    populate_ec2_federation(&mut fed, opts.seed ^ 0xA5A5, &scenario);
    fed.run_maintenance(5, SimDuration::from_millis(250));
    fed.settle();

    if cache {
        fed.enable_frontdoor(FrontdoorConfig {
            cache_ttl: SimDuration::from_secs(24 * 3600),
            cache_capacity: 256,
            max_pending: 64,
            retry_after: SimDuration::from_millis(5),
        });
        fed.settle();
    }

    // Population ranked by popularity; each rank keys a distinct cache
    // entry. attr13 appears in exactly one rank's residual clause, so a
    // write to it purges one entry; CPU_utilization appears in none.
    let queries = instance_query_population(DISTINCT, DISTINCT);
    let mut wl = ZipfWorkload::new(
        opts.seed ^ 0x51F7,
        queries.clone(),
        SKEW,
        READ_RATIO,
        vec!["attr13".into(), "CPU_utilization".into()],
    );
    let total_nodes = nodes_per_site * 8;

    // Warmup: every distinct query once (fills the cache when enabled).
    for q in queries.iter().take(warmup) {
        issue(&mut fed, NodeAddr(7), q);
    }

    let start = fed.sim().now();
    let mut lats_ms = Vec::new();
    let mut satisfied = 0usize;
    let mut writes = 0usize;
    for i in 0..ops {
        // Clients rotate across sites; index 5 skips each site's gateways.
        let client = NodeAddr(((i % 8) * nodes_per_site + 5 + (i / 8) % 3) as u32);
        match wl.next_op() {
            WorkloadOp::Query(q) => {
                let (lat, sat) = issue(&mut fed, client, &q);
                lats_ms.push(lat);
                satisfied += sat as usize;
            }
            WorkloadOp::Update { attr, value } => {
                writes += 1;
                let holder = NodeAddr((i * 13 % total_nodes) as u32);
                fed.update_attr(holder, &attr, value);
                fed.settle();
            }
        }
    }
    let duration_s = fed.sim().now().saturating_since(start).as_millis_f64() / 1e3;

    let mut fd = FrontdoorStats::default();
    for n in 0..total_nodes {
        if let Some(s) = fed.frontdoor_stats(NodeAddr(n as u32)) {
            fd.merge(&s);
        }
    }
    PassResult {
        queries: lats_ms.len(),
        lats_ms,
        duration_s,
        satisfied,
        writes,
        fd,
    }
}

/// Issues one query through the front door and waits for its answer;
/// returns (latency ms, satisfied).
fn issue(fed: &mut Federation, client: NodeAddr, q: &str) -> (f64, bool) {
    match fed
        .frontdoor_query(client, q, Some(WORKLOAD_PASSWORD))
        .expect("population queries parse")
    {
        FrontdoorOutcome::Cached { satisfied, .. } => (0.0, satisfied),
        FrontdoorOutcome::Pending { gateway, id, .. } => {
            fed.settle();
            let rec = fed.query_record(gateway, id).expect("walk recorded");
            let done = rec.completed_at.expect("walk completed after settle");
            (
                done.saturating_since(rec.issued_at).as_millis_f64(),
                rec.satisfied,
            )
        }
        FrontdoorOutcome::Shed { .. } => unreachable!("closed loop never sheds"),
    }
}
