#![allow(clippy::needless_range_loop)] // index used for both reads and address math

//! Churn experiment — the evaluation the paper lists as future work
//! (§VI): "evaluate RBay's performance under different levels of churn in
//! resources and attribute values".
//!
//! Sweeps the churn level (fraction of nodes crashed per epoch, detected
//! purely by heartbeats) and reports query success rate and latency, plus
//! the recall of the inventory (fraction of live resource holders a
//! `SELECT all` finds) after automatic repair.

use rand::rngs::SmallRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};
use rbay_bench::{
    default_threads, emit_json, emit_schedule, run_seeds, stats, HarnessOpts, JsonRecord,
};
use rbay_check::{invariants, CheckSpec, ChurnParams, ChurnState, ScheduleFile, Violation};
use rbay_core::{Federation, RbayConfig};
use rbay_query::AttrValue;
use rbay_workloads::WORKLOAD_PASSWORD;
use simnet::{NodeAddr, ObsEvent, SimDuration, SimTime, SiteId, Topology};
use std::collections::BTreeMap;

/// Observability-derived metrics for one seed's run (`--metrics`).
struct ObsOutcome {
    /// Mean latency (ms) from a node crash to the first heartbeat-based
    /// failure declaration naming it, over all detected victims.
    fd_latency_ms: f64,
    /// Heartbeat expirations naming a peer that had not (yet) crashed.
    false_positives: u64,
    /// Mean maintenance rounds per crash epoch until the root aggregate
    /// count matches the live-holder count again (9 = not within 8).
    converge_rounds: f64,
    /// Structured events held in the recorder at the end of the run.
    events: u64,
}

struct Outcome {
    success_rate: f64,
    recall: f64,
    avg_latency: f64,
    obs: Option<ObsOutcome>,
    /// Protocol-invariant violation found at the end of the run, if any
    /// (checked by `rbay-check`'s quiescence oracles).
    violation: Option<Violation>,
}

fn run_level(n_nodes: usize, churn_frac: f64, epochs: u32, seed: u64, metrics: bool) -> Outcome {
    // The deterministic core (federation build, victim selection, recall
    // origin) is shared with `rbay-check`'s bench:churn scenario, so a
    // violating seed replays byte-identically via `rbay-check replay`.
    let params = ChurnParams {
        nodes: n_nodes,
        frac: churn_frac,
        epochs,
        seed,
    };
    let mut rec = None;
    let mut st = ChurnState::with_setup(&params, |fed| {
        if metrics {
            rec = Some(fed.enable_obs(1 << 18));
        }
    });
    let topic = st.topic;

    let mut latencies = Vec::new();
    let mut successes = 0u32;
    let mut attempts = 0u32;
    let mut recall_sum = 0.0;
    let mut recall_n = 0u32;
    let mut fail_at: BTreeMap<NodeAddr, SimTime> = BTreeMap::new();
    let mut converge_rounds_sum = 0.0;
    let mut converge_epochs = 0u32;

    for _ in 0..epochs {
        // Crash `churn_frac` of the currently-alive nodes (sparing one
        // querier corner of the id space).
        let crashed_at = st.fed.sim().now();
        for v in st.crash_epoch(churn_frac) {
            fail_at.insert(v, crashed_at);
        }
        // Heartbeats detect and repair. With `--metrics`, run the same 8
        // rounds one at a time (byte-identical schedule) and record the
        // first round after which the root aggregate matches the live
        // holder count again.
        if metrics {
            let mut converged_at = None;
            for r in 1..=8u32 {
                st.fed.run_maintenance(1, SimDuration::from_millis(250));
                if converged_at.is_none()
                    && st.fed.tree_root_count(topic) == Some(st.holders.len() as u64)
                {
                    converged_at = Some(r);
                }
            }
            converge_rounds_sum += converged_at.unwrap_or(9) as f64;
            converge_epochs += 1;
        } else {
            st.fed.run_maintenance(8, SimDuration::from_millis(250));
        }
        st.fed.settle();

        // Measure: a few k=1 queries plus one full-inventory query.
        let live_queriers = st.live_queriers();
        if live_queriers.is_empty() || st.holders.is_empty() {
            break;
        }
        for q in 0..3 {
            let origin = NodeAddr(live_queriers[q % live_queriers.len()]);
            let id = st
                .fed
                .issue_query(
                    origin,
                    "SELECT 1 FROM * WHERE GPU = true",
                    Some(WORKLOAD_PASSWORD),
                )
                .unwrap();
            st.fed.settle();
            let rec = st.fed.query_record(origin, id).unwrap();
            attempts += 1;
            if rec.satisfied {
                successes += 1;
                let done = rec.completed_at.unwrap();
                latencies.push(done.saturating_since(rec.issued_at).as_millis_f64());
            }
            let horizon = st.fed.sim().now() + SimDuration::from_millis(2_500);
            st.fed.run_until(horizon);
        }
        let origin = st.recall_origin().expect("checked non-empty");
        let id = st
            .fed
            .issue_query(
                origin,
                &format!("SELECT {} FROM * WHERE GPU = true", st.holders.len().max(1)),
                Some(WORKLOAD_PASSWORD),
            )
            .unwrap();
        st.fed.settle();
        let rec = st.fed.query_record(origin, id).unwrap();
        recall_sum += rec.result.len() as f64 / st.holders.len().max(1) as f64;
        recall_n += 1;
        let horizon = st.fed.sim().now() + SimDuration::from_secs(4);
        st.fed.run_until(horizon);
    }
    st.fed.settle();
    let violation = invariants::check_quiescent(&st.fed, &st.invariant_ctx());

    let obs = rec.map(|rec| {
        // Failure-detection latency: first HeartbeatExpire naming each
        // victim at or after its crash. Any expiration naming a peer that
        // was alive at that moment is a false positive.
        let mut first_detect: BTreeMap<NodeAddr, SimTime> = BTreeMap::new();
        let mut false_positives = 0u64;
        for ev in rec.events() {
            if let ObsEvent::HeartbeatExpire { at, peer, .. } = ev {
                match fail_at.get(&peer) {
                    Some(&crashed) if at >= crashed => {
                        let first = first_detect.entry(peer).or_insert(at);
                        *first = (*first).min(at);
                    }
                    _ => false_positives += 1,
                }
            }
        }
        let det: Vec<f64> = first_detect
            .iter()
            .map(|(p, &d)| d.saturating_since(fail_at[p]).as_millis_f64())
            .collect();
        ObsOutcome {
            fd_latency_ms: stats(&det).map(|s| s.mean).unwrap_or(f64::NAN),
            false_positives,
            converge_rounds: converge_rounds_sum / converge_epochs.max(1) as f64,
            events: rec.snapshot().events_recorded,
        }
    });

    Outcome {
        success_rate: successes as f64 / attempts.max(1) as f64,
        recall: recall_sum / recall_n.max(1) as f64,
        avg_latency: stats(&latencies).map(|s| s.mean).unwrap_or(f64::NAN),
        obs,
        violation,
    }
}

/// `--trace`: runs one small traced federation through a crash epoch and
/// prints the tree-repair timeline of the `GPU=true` tree (the same
/// reconstruction the `trace_dump` tool performs on a canned scenario).
fn print_repair_timeline(n_nodes: usize, churn_frac: f64, seed: u64) {
    let cfg = RbayConfig {
        failure_detection: true,
        heartbeat_timeout: SimDuration::from_millis(400),
        commit_results: false,
        ..RbayConfig::default()
    };
    let mut fed = Federation::with_config(Topology::single_site(n_nodes, 0.5), seed, cfg);
    let rec = fed.enable_obs(1 << 16);
    let topic = fed.node(NodeAddr(0)).host.tree_topic("GPU=true", SiteId(0));
    for h in (0..(n_nodes / 3) as u32).map(NodeAddr) {
        fed.post_resource(h, "GPU", AttrValue::Bool(true));
    }
    fed.settle();
    fed.run_maintenance(3, SimDuration::from_millis(250));
    fed.settle();

    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC0FFEE);
    let victims: Vec<u32> = (4..n_nodes as u32)
        .collect::<Vec<_>>()
        .choose_multiple(&mut rng, ((n_nodes as f64) * churn_frac) as usize)
        .copied()
        .collect();
    let crash_at = fed.sim().now();
    for v in &victims {
        fed.sim_mut().fail_node(NodeAddr(*v));
    }
    fed.run_maintenance(8, SimDuration::from_millis(250));
    fed.settle();

    println!(
        "\nRepair timeline, GPU=true tree ({n_nodes} nodes, seed {seed}, victims {victims:?}):"
    );
    let key = topic.key().as_u128();
    for ev in rec.events() {
        if ev.at() < crash_at {
            continue;
        }
        let line = match ev {
            ObsEvent::HeartbeatExpire { at, detector, peer } => {
                Some((at, format!("{detector:?} declares {peer:?} failed")))
            }
            ObsEvent::TreeParent {
                at,
                node,
                topic,
                old,
                new,
            } if topic == key => Some((
                at,
                match old {
                    Some(old) => format!("{node:?} re-parents {old:?} -> {new:?}"),
                    None => format!("{node:?} attaches under {new:?}"),
                },
            )),
            ObsEvent::TreeGraft {
                at,
                parent,
                child,
                topic,
            } if topic == key => Some((at, format!("{parent:?} grafts child {child:?}"))),
            ObsEvent::TreeLeave {
                at,
                parent,
                child,
                topic,
            } if topic == key => Some((at, format!("{parent:?} drops child {child:?}"))),
            ObsEvent::NotChild {
                at,
                node,
                orphan,
                topic,
            } if topic == key => Some((at, format!("{node:?} NACKs orphan {orphan:?}"))),
            _ => None,
        };
        if let Some((at, what)) = line {
            println!(
                "  +{:>8.1} ms  {what}",
                at.saturating_since(crash_at).as_millis_f64()
            );
        }
    }
    println!(
        "  final: root count {:?}, {} tree edges",
        fed.tree_root_count(topic),
        fed.tree_edge_count(topic)
    );
}

/// Attribute-value churn: each epoch a fraction of nodes flips its
/// utilization reading; AA-driven membership (`onSubscribe` /
/// `onUnsubscribe`) must track the changes. Reports membership accuracy
/// after maintenance.
fn run_value_churn(n_nodes: usize, flip_frac: f64, epochs: u32, seed: u64) -> f64 {
    let cfg = RbayConfig::default();
    let mut fed = Federation::with_config(Topology::single_site(n_nodes, 0.5), seed, cfg);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xBEEF);
    // Every node runs the low-utilization membership policy.
    let policy = r#"
        function onSubscribe(caller, topic)
            return attrs.CPU_utilization ~= nil and attrs.CPU_utilization < 10
        end
        function onUnsubscribe(caller, topic)
            return attrs.CPU_utilization ~= nil and attrs.CPU_utilization >= 10
        end
    "#;
    let mut utils: Vec<f64> = (0..n_nodes).map(|_| rng.gen_range(0.0..100.0)).collect();
    for i in 0..n_nodes as u32 {
        fed.update_attr(
            NodeAddr(i),
            "CPU_utilization",
            AttrValue::Num(utils[i as usize]),
        );
        fed.install_node_aa(NodeAddr(i), policy);
        fed.register_dynamic_tree(NodeAddr(i), "CPU_utilization<10");
    }
    fed.settle();
    fed.run_maintenance(3, SimDuration::from_millis(250));
    fed.settle();

    let mut accuracy_sum = 0.0;
    for _ in 0..epochs {
        // Flip readings on a random fraction of nodes.
        for i in 0..n_nodes {
            if rng.gen_bool(flip_frac) {
                utils[i] = rng.gen_range(0.0..100.0);
                fed.update_attr(
                    NodeAddr(i as u32),
                    "CPU_utilization",
                    AttrValue::Num(utils[i]),
                );
            }
        }
        fed.settle();
        fed.run_maintenance(3, SimDuration::from_millis(250));
        fed.settle();
        // Check membership against ground truth.
        let topic = fed
            .node(NodeAddr(0))
            .host
            .tree_topic("CPU_utilization<10", simnet::SiteId(0));
        let correct = (0..n_nodes)
            .filter(|i| {
                let should = utils[*i] < 10.0;
                let is = fed
                    .node(NodeAddr(*i as u32))
                    .scribe
                    .topic(topic)
                    .is_some_and(|st| st.subscribed);
                should == is
            })
            .count();
        accuracy_sum += correct as f64 / n_nodes as f64;
    }
    accuracy_sum / epochs as f64
}

fn main() {
    let opts = HarnessOpts::from_args();
    let n_nodes = opts.scaled(120, 30);
    let epochs = 4;
    let seeds = opts.seed_list();
    println!("Churn sweep (paper §VI future work): {n_nodes} nodes, {epochs} crash epochs,");
    println!(
        "heartbeat detection only — no manual failure notification ({} seed(s))\n",
        seeds.len()
    );
    println!(
        "{:>12} {:>14} {:>10} {:>14}",
        "churn/epoch", "success rate", "recall", "avg q-lat ms"
    );
    for &frac in &[0.0, 0.02, 0.05, 0.10, 0.20] {
        // One independent federation per seed; averages merged in seed order.
        let outcomes = run_seeds(&seeds, default_threads(), |seed| {
            run_level(n_nodes, frac, epochs, seed, opts.metrics)
        });
        // Protocol-invariant oracles ran at the end of every seed's run;
        // a violation is a regression, dumped as a replayable schedule.
        for (&seed, o) in seeds.iter().zip(&outcomes) {
            if let Some(v) = &o.violation {
                eprintln!(
                    "INVARIANT VIOLATION (churn {:.0}%, seed {seed}): {v}",
                    frac * 100.0
                );
                emit_schedule(
                    &opts,
                    &ScheduleFile {
                        spec: CheckSpec::bench_churn(n_nodes, frac, epochs, seed),
                        violation: Some(v.kind().to_string()),
                        directives: Vec::new(),
                    },
                );
            }
        }
        let n = outcomes.len() as f64;
        let success = outcomes.iter().map(|o| o.success_rate).sum::<f64>() / n;
        let recall = outcomes.iter().map(|o| o.recall).sum::<f64>() / n;
        let lats: Vec<f64> = outcomes
            .iter()
            .map(|o| o.avg_latency)
            .filter(|l| l.is_finite())
            .collect();
        let avg_latency = stats(&lats).map(|s| s.mean).unwrap_or(f64::NAN);
        println!(
            "{:>11.0}% {:>13.0}% {:>9.0}% {:>14.1}",
            frac * 100.0,
            success * 100.0,
            recall * 100.0,
            avg_latency
        );
        let mut record = JsonRecord::new("churn")
            .num("churn_frac", frac)
            .int("nodes", n_nodes as u64)
            .int("seeds", seeds.len() as u64)
            .num("success_rate", success)
            .num("recall", recall)
            .num_opt("avg_latency_ms", avg_latency);
        if opts.metrics {
            let m: Vec<&ObsOutcome> = outcomes.iter().filter_map(|o| o.obs.as_ref()).collect();
            let det: Vec<f64> = m
                .iter()
                .map(|o| o.fd_latency_ms)
                .filter(|l| l.is_finite())
                .collect();
            let fd_latency = stats(&det).map(|s| s.mean).unwrap_or(f64::NAN);
            let false_positives: u64 = m.iter().map(|o| o.false_positives).sum();
            let converge =
                m.iter().map(|o| o.converge_rounds).sum::<f64>() / (m.len().max(1)) as f64;
            let events: u64 = m.iter().map(|o| o.events).sum();
            println!(
                "{:>12} fd-lat {:>7.1} ms   false-pos {:>3}   converge {:>4.2} rounds   {:>8} events",
                "", fd_latency, false_positives, converge, events
            );
            record = record
                .num_opt("fd_latency_ms", fd_latency)
                .int("false_positives", false_positives)
                .num("agg_converge_rounds", converge)
                .int("obs_events", events);
        }
        emit_json(&opts, &record);
    }
    if opts.trace {
        print_repair_timeline(n_nodes.min(40), 0.20, opts.seed);
    }
    println!("\n(success and recall stay high while churn grows; the repair cost is");
    println!(" heartbeat traffic plus O(log N) rejoin messages per orphaned subtree)");

    println!("\nAttribute-value churn: AA-driven membership of the CPU_utilization<10 tree");
    println!("{:>12} {:>22}", "flips/epoch", "membership accuracy");
    for &frac in &[0.0, 0.1, 0.3, 0.6] {
        let accs = run_seeds(&seeds, default_threads(), |seed| {
            run_value_churn(n_nodes, frac, epochs, seed)
        });
        let acc = accs.iter().sum::<f64>() / accs.len() as f64;
        println!("{:>11.0}% {:>21.1}%", frac * 100.0, acc * 100.0);
        emit_json(
            &opts,
            &JsonRecord::new("churn_values")
                .num("flip_frac", frac)
                .int("nodes", n_nodes as u64)
                .int("seeds", seeds.len() as u64)
                .num("membership_accuracy", acc),
        );
    }
    println!("\n(onSubscribe/onUnsubscribe re-evaluate each maintenance round, so");
    println!(" membership tracks the readings within one round of the change)");
}
