//! AA execution engine A/B: ns/invocation of representative handlers on
//! the bytecode VM vs the tree-walking oracle.
//!
//! The paper's extensibility claim (§III.B) prices every query by the
//! active-attribute handlers it triggers, so per-invocation overhead is
//! the unit cost behind Fig. 8b/8c. This harness times the Fig. 5
//! password handler (branch + table reads) and a loop-heavy aggregation
//! handler on both engines and reports the speedup; `--json` appends
//! `aa_exec` records to `BENCH_simnet.json`.

use aascript::{Engine, Script, SharedSandbox, Value};
use rbay_bench::{emit_json, HarnessOpts, JsonRecord};
use std::hint::black_box;
use std::time::Instant;

struct Case {
    name: &'static str,
    src: &'static str,
    handler: &'static str,
    args: Vec<Value>,
    budget: u64,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "onget_password_check",
            src: r#"
                AA = {NodeId = 27, Password = "3053482032"}
                function onGet(caller, password)
                    if password == AA.Password then
                        return AA.NodeId
                    end
                    return nil
                end
            "#,
            handler: "onGet",
            args: vec![Value::str("joe"), Value::str("3053482032")],
            budget: 10_000,
        },
        Case {
            name: "ontimer_sum_loop_200",
            src: r#"
                function onTimer(n)
                    local s = 0
                    for i = 1, n do
                        s = s + i % 7
                    end
                    return s
                end
            "#,
            handler: "onTimer",
            args: vec![Value::Num(200.0)],
            budget: 1_000_000,
        },
    ]
}

/// Times `iters` invocations and returns mean ns/invocation.
fn time_engine(case: &Case, engine: Engine, iters: u32) -> f64 {
    let sandbox = SharedSandbox::new();
    let script = Script::compile(case.src)
        .expect("handler compiles")
        .with_engine(engine);
    let aa = script
        .instantiate(&sandbox, case.budget)
        .expect("instantiates");
    // Warm-up: touch every path once so lazy setup is off the clock.
    for _ in 0..1_000 {
        black_box(
            aa.invoke(case.handler, &case.args, case.budget)
                .expect("runs"),
        );
    }
    let started = Instant::now();
    for _ in 0..iters {
        black_box(
            aa.invoke(case.handler, &case.args, case.budget)
                .expect("runs"),
        );
    }
    started.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let opts = HarnessOpts::from_args();
    let iters = opts.scaled(200_000, 1_000) as u32;

    println!(
        "AA handler execution: bytecode VM vs tree-walking oracle ({iters} invocations/cell)\n"
    );
    println!(
        "{:>24} {:>16} {:>16} {:>9}",
        "handler", "treewalk ns/inv", "vm ns/inv", "speedup"
    );
    for case in cases() {
        let tw = time_engine(&case, Engine::TreeWalk, iters);
        let vm = time_engine(&case, Engine::Bytecode, iters);
        let speedup = tw / vm;
        println!("{:>24} {tw:>16.1} {vm:>16.1} {speedup:>8.2}x", case.name);
        for (engine, ns) in [("treewalk", tw), ("vm", vm)] {
            emit_json(
                &opts,
                &JsonRecord::new("aa_exec")
                    .text("handler", case.name)
                    .text("engine", engine)
                    .int("iters", iters as u64)
                    .num("ns_per_invoke", ns)
                    .num("speedup_vs_treewalk", tw / ns),
            );
        }
    }
}
