//! `aalint` — the standalone front end to the AAScript install-time
//! static analysis (see `aascript::analysis` and DESIGN.md §11).
//!
//! Lints `.aa` handler files the way `RbayHost` vets scripts at install:
//! compile, then run the dataflow lints and the abstract cost-bound
//! analysis against the instruction budget. Exit status is nonzero when
//! any error-severity diagnostic (or compile error) is found, so CI can
//! gate on the in-repo handler corpus.
//!
//! ```sh
//! # Lint the in-repo corpus (examples/handlers, experiments/handlers):
//! cargo run --bin aalint
//! # Lint specific files or directories:
//! cargo run --bin aalint -- path/to/policy.aa handlers/
//! # Tighten the budget, declare deployment-specific globals:
//! cargo run --bin aalint -- --budget 500 --extern utilization node.aa
//! ```

use aascript::analysis::{LintOptions, Severity};
use aascript::Script;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Globals the RBAY host injects before any handler runs; reads of these
/// are always defined (keep in sync with `RbayHost::lint_script`).
const HOST_EXTERNS: [&str; 3] = ["now_ms", "attrs", "sha1hex"];

/// The host's default per-invocation instruction budget
/// (`RbayConfig::default().aa_budget`).
const DEFAULT_BUDGET: u64 = 10_000;

struct Args {
    budget: u64,
    externs: Vec<String>,
    paths: Vec<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: aalint [--budget N] [--extern NAME]... [FILE|DIR]...\n\
         With no paths, lints the in-repo corpus (examples/handlers,\n\
         experiments/handlers)."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        budget: DEFAULT_BUDGET,
        externs: HOST_EXTERNS.iter().map(|s| s.to_string()).collect(),
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--budget" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => args.budget = n,
                None => usage(),
            },
            "--extern" => match it.next() {
                Some(n) => args.externs.push(n),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            _ if a.starts_with('-') => usage(),
            _ => args.paths.push(PathBuf::from(a)),
        }
    }
    args
}

/// The repository's default corpus directories, resolved relative to the
/// current directory first (the CI case) and the workspace root second
/// (`cargo run` from anywhere inside it).
fn default_corpus() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    ["examples/handlers", "experiments/handlers"]
        .iter()
        .map(|d| {
            let local = PathBuf::from(d);
            if local.is_dir() {
                local
            } else {
                root.join(d)
            }
        })
        .collect()
}

/// All `.aa` files under `path` (recursively), or `path` itself if it is
/// a file.
fn collect_aa_files(path: &Path, out: &mut Vec<PathBuf>) {
    if path.is_file() {
        out.push(path.to_path_buf());
        return;
    }
    let Ok(entries) = std::fs::read_dir(path) else {
        eprintln!("aalint: cannot read {}", path.display());
        return;
    };
    let mut children: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    children.sort();
    for child in children {
        if child.is_dir() {
            collect_aa_files(&child, out);
        } else if child.extension().is_some_and(|e| e == "aa") {
            out.push(child);
        }
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let roots = if args.paths.is_empty() {
        default_corpus()
    } else {
        args.paths.clone()
    };
    let mut files = Vec::new();
    for root in &roots {
        collect_aa_files(root, &mut files);
    }
    if files.is_empty() {
        eprintln!("aalint: no .aa files found under {roots:?}");
        return ExitCode::from(2);
    }

    let opts = LintOptions {
        budget: Some(args.budget),
        externs: args.externs.clone(),
    };
    let (mut errors, mut warnings) = (0usize, 0usize);
    for file in &files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{}: cannot read: {e}", file.display());
                errors += 1;
                continue;
            }
        };
        let script = match Script::compile(&src) {
            Ok(s) => s,
            Err(e) => {
                println!("{}:{}: error: {}", file.display(), e.pos, e.message);
                errors += 1;
                continue;
            }
        };
        for d in script.analyze(&opts) {
            println!("{}:{d}", file.display());
            match d.severity {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
            }
        }
    }
    println!(
        "aalint: {} file(s), {errors} error(s), {warnings} warning(s)",
        files.len()
    );
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
