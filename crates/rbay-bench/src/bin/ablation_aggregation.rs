#![allow(clippy::needless_range_loop)] // index used for both reads and address math

//! Ablation: aggregation interval vs root-view staleness.
//!
//! DESIGN.md calls out periodic lazy aggregation as a design choice: each
//! maintenance round pushes subtree aggregates one level rootward, so the
//! root's view converges within `O(depth)` rounds but is stale in
//! between. This harness measures the trade-off: under steady membership
//! churn, how far is the root's tree-size estimate from the truth as a
//! function of the aggregation interval?

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rbay_bench::HarnessOpts;
use rbay_core::{Federation, RbayConfig};
use rbay_query::AttrValue;
use simnet::{NodeAddr, SimDuration, SiteId, Topology};

/// Runs churning membership with the given aggregation interval; returns
/// (mean |size error| in members, messages per node per virtual second).
fn run(interval_ms: u64, seed: u64, n_nodes: usize) -> (f64, f64) {
    let mut fed = Federation::with_config(
        Topology::single_site(n_nodes, 0.5),
        seed,
        RbayConfig::default(),
    );
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x517A1E);
    // Half the fleet starts in the tree.
    let mut member: Vec<bool> = (0..n_nodes).map(|i| i % 2 == 0).collect();
    for (i, m) in member.iter().enumerate() {
        if *m {
            fed.post_resource(NodeAddr(i as u32), "GPU", AttrValue::Bool(true));
        }
    }
    fed.settle();
    fed.run_maintenance(6, SimDuration::from_millis(interval_ms));
    fed.settle();
    let topic = fed.node(NodeAddr(0)).host.tree_topic("GPU=true", SiteId(0));

    let start_msgs = fed.sim().stats().sent();
    let start_time = fed.sim().now();
    let mut err_sum = 0.0;
    let mut samples = 0u32;
    // Fixed churn *rate*: 5% of the fleet flips per virtual second, so a
    // longer aggregation interval accumulates proportionally more churn
    // between rounds.
    let p_flip = (0.05 * interval_ms as f64 / 1_000.0).min(0.9);
    for _ in 0..12 {
        for i in 0..n_nodes {
            if rng.gen_bool(p_flip) {
                let addr = NodeAddr(i as u32);
                if member[i] {
                    let now = fed.sim().now();
                    fed.sim_mut().schedule_call(now, addr, move |a, ctx| {
                        let mut net = pastry::SimNet::new(ctx);
                        let topic = a.host.tree_topic("GPU=true", SiteId(0));
                        a.scribe.unsubscribe::<rbay_core::RbayPayload, _>(
                            &mut a.pastry,
                            &mut net,
                            topic,
                        );
                    });
                    member[i] = false;
                } else {
                    fed.post_resource(addr, "GPU", AttrValue::Bool(true));
                    member[i] = true;
                }
            }
        }
        fed.settle();
        // Sample the root's view right after the churn lands: this is the
        // staleness a query would observe between aggregation rounds.
        // (One aggregation round runs after sampling, i.e. every
        // `interval_ms` of churn activity.)
        let truth = member.iter().filter(|m| **m).count() as f64;
        let root_view = (0..n_nodes as u32)
            .map(NodeAddr)
            .find_map(|n| {
                let node = fed.node(n);
                let st = node.scribe.topic(topic)?;
                if st.is_root {
                    node.scribe.root_aggregate(topic)
                } else {
                    None
                }
            })
            .map(|a| a.as_count().unwrap_or(0) as f64)
            .unwrap_or(0.0);
        err_sum += (root_view - truth).abs();
        samples += 1;
        fed.run_maintenance(1, SimDuration::from_millis(interval_ms));
        fed.settle();
    }
    let msgs = (fed.sim().stats().sent() - start_msgs) as f64;
    let secs = fed.sim().now().saturating_since(start_time).as_millis_f64() / 1_000.0;
    (
        err_sum / samples as f64,
        msgs / n_nodes as f64 / secs.max(1e-9),
    )
}

fn main() {
    let opts = HarnessOpts::from_args();
    let n_nodes = opts.scaled(100, 30);
    println!("Ablation: aggregation interval vs root-view staleness");
    println!("({n_nodes} nodes, ~5% membership churn per epoch)\n");
    println!(
        "{:>14} {:>18} {:>22}",
        "interval (ms)", "mean |size error|", "msgs/node/virt-sec"
    );
    for &interval in &[100u64, 250, 500, 1_000, 2_000] {
        let (err, rate) = run(interval, opts.seed, n_nodes);
        println!("{:>14} {:>18.2} {:>22.2}", interval, err, rate);
    }
    println!("\n(longer intervals cost accuracy at the root but proportionally less");
    println!(" maintenance traffic — the O(depth)-rounds convergence trade-off)");
}
