//! Fig. 8c: scalability with the number of resource attributes — memory
//! cost of active attributes vs the PAST baseline.
//!
//! Paper setup (§IV.B.3): store an increasing number of AAs on a node,
//! each attribute carrying a password handler besides its NodeId, against
//! PAST entries holding only the NodeId. Expectation: negligible
//! difference through the 1,000s (<10 MB both), ~55% relative overhead in
//! the 10,000s, total footprint still reasonable.

use aascript::{Script, SharedSandbox};
use pastry::NodeId;
use rbay_baselines::PastStore;
use rbay_bench::{default_threads, emit_json, run_seeds, HarnessOpts, JsonRecord};
use std::time::Instant;

/// One seed's measurement for one attribute count: byte totals are
/// deterministic (identical across seeds); the instantiate wall clock is
/// the quantity the seeds sample repeatedly.
struct Cell {
    aa_bytes: usize,
    past_bytes: usize,
    instantiate_wall_secs: f64,
}

fn run_one(n: usize) -> Cell {
    let sandbox = SharedSandbox::new();
    // The paper's per-attribute password handler (Fig. 5 shape), compiled
    // once and instantiated per attribute — each instance owns its AA
    // table and handler state.
    let script = Script::compile(
        r#"
        AA = {NodeId = 27, Password = "3053482032"}
        function onGet(caller, password)
            if password == AA.Password then
                return AA.NodeId
            end
            return nil
        end
    "#,
    )
    .expect("handler compiles");

    // RBAY: one AA instance per attribute.
    let started = Instant::now();
    let mut aa_bytes = 0usize;
    let mut instances = Vec::with_capacity(n);
    for _ in 0..n {
        let inst = script.instantiate(&sandbox, 10_000).expect("instantiates");
        aa_bytes += inst.size_bytes();
        instances.push(inst);
    }
    let instantiate_wall_secs = started.elapsed().as_secs_f64();
    drop(instances);

    // PAST: the same attributes as passive NodeId entries.
    let mut past = PastStore::new();
    for i in 0..n {
        past.put(&format!("attr{i}"), NodeId(27));
    }
    Cell {
        aa_bytes,
        past_bytes: past.size_bytes(),
        instantiate_wall_secs,
    }
}

fn main() {
    let opts = HarnessOpts::from_args();
    let seeds = opts.seed_list();

    println!(
        "Fig. 8c: memory cost of storing N active attributes vs PAST entries ({} seed(s))",
        seeds.len()
    );
    println!("(AA = NodeId + password handler; PAST = NodeId only)\n");
    println!(
        "{:>10} {:>14} {:>14} {:>12} {:>14}",
        "attrs", "RBAY bytes", "PAST bytes", "overhead", "inst wall (s)"
    );

    let sizes = [100usize, 1_000, 10_000, 50_000, 100_000];
    for &base in &sizes {
        let n = opts.scaled(base, 10);
        // The byte counts are seed-independent; running them under the
        // multi-seed driver still samples the instantiate wall clock once
        // per seed (and keeps the harness interface uniform).
        let cells = run_seeds(&seeds, default_threads(), |_seed| run_one(n));
        let aa_bytes = cells[0].aa_bytes;
        let past_bytes = cells[0].past_bytes;
        // RBAY stores the same NodeId entry *plus* the handler state.
        let rbay_bytes = past_bytes + aa_bytes;
        let overhead_pct = 100.0 * aa_bytes as f64 / past_bytes as f64;
        let wall = cells.iter().map(|c| c.instantiate_wall_secs).sum::<f64>() / cells.len() as f64;
        println!("{n:>10} {rbay_bytes:>14} {past_bytes:>14} {overhead_pct:>11.0}% {wall:>14.4}");
        emit_json(
            &opts,
            &JsonRecord::new("fig8c")
                .int("attrs", n as u64)
                .int("seeds", seeds.len() as u64)
                .int("rbay_bytes", rbay_bytes as u64)
                .int("past_bytes", past_bytes as u64)
                .num("overhead_pct", overhead_pct)
                .num("instantiate_wall_secs", wall),
        );
    }
    println!("\n(the paper reports ~55% overhead at 10^4 attributes on the JVM; our Rust");
    println!(" PAST baseline is ~10x leaner than a JVM object graph, so the *ratio* is");
    println!(" higher here while the paper's actual conclusions hold: memory grows");
    println!(" linearly, the relative overhead is bounded/constant, and the absolute");
    println!(" footprint stays reasonable — ~40 MB for 100,000 active attributes)");
}
