//! Fig. 8c: scalability with the number of resource attributes — memory
//! cost of active attributes vs the PAST baseline.
//!
//! Paper setup (§IV.B.3): store an increasing number of AAs on a node,
//! each attribute carrying a password handler besides its NodeId, against
//! PAST entries holding only the NodeId. Expectation: negligible
//! difference through the 1,000s (<10 MB both), ~55% relative overhead in
//! the 10,000s, total footprint still reasonable.

use aascript::{Script, SharedSandbox};
use pastry::NodeId;
use rbay_baselines::PastStore;
use rbay_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    let sandbox = SharedSandbox::new();
    // The paper's per-attribute password handler (Fig. 5 shape), compiled
    // once and instantiated per attribute — each instance owns its AA
    // table and handler state.
    let script = Script::compile(
        r#"
        AA = {NodeId = 27, Password = "3053482032"}
        function onGet(caller, password)
            if password == AA.Password then
                return AA.NodeId
            end
            return nil
        end
    "#,
    )
    .expect("handler compiles");

    println!("Fig. 8c: memory cost of storing N active attributes vs PAST entries");
    println!("(AA = NodeId + password handler; PAST = NodeId only)\n");
    println!(
        "{:>10} {:>14} {:>14} {:>12}",
        "attrs", "RBAY bytes", "PAST bytes", "overhead"
    );

    let sizes = [100usize, 1_000, 10_000, 50_000, 100_000];
    for &n in &sizes {
        let n = opts.scaled(n, 10);
        // RBAY: one AA instance per attribute.
        let mut aa_bytes = 0usize;
        let mut instances = Vec::with_capacity(n);
        for _ in 0..n {
            let inst = script.instantiate(&sandbox, 10_000).expect("instantiates");
            aa_bytes += inst.size_bytes();
            instances.push(inst);
        }
        // PAST: the same attributes as passive NodeId entries.
        let mut past = PastStore::new();
        for i in 0..n {
            past.put(&format!("attr{i}"), NodeId(27));
        }
        let past_bytes = past.size_bytes();
        // RBAY stores the same NodeId entry *plus* the handler state.
        let rbay_bytes = past_bytes + aa_bytes;
        println!(
            "{:>10} {:>14} {:>14} {:>11.0}%",
            n,
            rbay_bytes,
            past_bytes,
            100.0 * aa_bytes as f64 / past_bytes as f64
        );
        drop(instances);
    }
    println!("\n(the paper reports ~55% overhead at 10^4 attributes on the JVM; our Rust");
    println!(" PAST baseline is ~10x leaner than a JVM object graph, so the *ratio* is");
    println!(" higher here while the paper's actual conclusions hold: memory grows");
    println!(" linearly, the relative overhead is bounded/constant, and the absolute");
    println!(" footprint stays reasonable — ~40 MB for 100,000 active attributes)");
}
