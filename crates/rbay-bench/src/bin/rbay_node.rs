//! `rbay-node` — one process hosting one *or many* RBAY federation
//! members (agent packing, the paper's ~100-agents-per-VM deployment
//! shape).
//!
//! Process `index` hosts the contiguous overlay addresses
//! `index*per .. min((index+1)*per, agents)` in a [`rbay_core::Pack`],
//! listening on `127.0.0.1:(base_port + index)`. Messages between
//! co-hosted members loop back in-process; everything else rides the
//! single event-loop [`TcpBus`], multiplexed by the `[from][to]` frame
//! header. Process 0's first member seeds the overlay; every other
//! member's slot-0 sibling joins through it, and remaining members join
//! through their local sibling — spreading join load off the bootstrap.
//!
//! Operator tools (the `cluster` harness) drive it over control
//! connections speaking [`rbay_bench::cluster::CtrlMsg`]; requests for a
//! specific member arrive wrapped in [`CtrlMsg::To`].
//!
//! With `--data-dir`, every hosted member journals its durable state
//! (attributes, handler sources, subscriptions, commits) to a
//! write-ahead log under `<dir>/member-<addr>` and restores it on boot —
//! re-linting recovered handler sources under the current policy and
//! re-joining its trees through the overlay.
//!
//! ```text
//! rbay-node --index 0 --agents 1000 [--agents-per-proc 100] \
//!     [--base-port 21100] [--num-sites 1] [--tick-ms 150] \
//!     [--data-dir /var/lib/rbay] [--fsync always|batch|never]
//! ```

use rbay_bench::cluster::{self, CtrlMsg};
use rbay_core::{
    FrontdoorConfig, FrontdoorResponse, FrontdoorStats, Op, Pack, QueryId, RbayConfig, RbayMsg,
};
use rbay_query::parse_query;
use rbay_store::{FsyncPolicy, Store, StoreStats};
use rbay_wire::{decode_frame, encode_frame, Inbound, TcpBus, Transport};
use scribe::TopicId;
use simnet::{NodeAddr, SimDuration};
use std::path::PathBuf;
use std::sync::mpsc::{Receiver, RecvTimeoutError, TryRecvError};
use std::time::{Duration, Instant};

/// Unjoined members (re-)sending their Pastry join per tick, bounding the
/// thundering herd on the bootstrap at high packing factors.
const JOIN_BATCH: usize = 16;
/// Inbound frames drained per wakeup before pumping loopback again.
const RECV_BATCH: usize = 4096;
/// Ticks one full maintenance sweep over the pack is spread across, so a
/// 100-member pack maintains ~10 members per tick instead of all of them
/// (per-member maintenance cadence stays bounded; CPU per tick is O(per /
/// MAINT_SWEEP_TICKS), which is what keeps 160 packed daemons viable on a
/// small host).
const MAINT_SWEEP_TICKS: u32 = 10;

struct Args {
    index: u32,
    agents: u32,
    per: u32,
    base_port: u16,
    num_sites: u16,
    tick: Duration,
    frontdoor: bool,
    data_dir: Option<PathBuf>,
    fsync: FsyncPolicy,
}

fn parse_args() -> Args {
    let mut args = Args {
        index: 0,
        agents: 1,
        per: 1,
        base_port: cluster::DEFAULT_BASE_PORT,
        num_sites: 1,
        tick: Duration::from_millis(150),
        frontdoor: false,
        data_dir: None,
        fsync: FsyncPolicy::Batch,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--index" => args.index = flag_value(&argv, i),
            // `--count` kept as an alias for one-agent-per-process runs.
            "--agents" | "--count" => args.agents = flag_value(&argv, i),
            "--agents-per-proc" => args.per = flag_value(&argv, i),
            "--base-port" => args.base_port = flag_value(&argv, i),
            "--num-sites" => args.num_sites = flag_value(&argv, i),
            "--tick-ms" => args.tick = Duration::from_millis(flag_value(&argv, i)),
            "--data-dir" => args.data_dir = Some(PathBuf::from(flag_value::<String>(&argv, i))),
            "--fsync" => {
                let v: String = flag_value(&argv, i);
                args.fsync = FsyncPolicy::parse(&v).unwrap_or_else(|| {
                    eprintln!("bad value for --fsync: {v} (want always|batch|never)");
                    std::process::exit(2);
                });
            }
            "--frontdoor" => {
                args.frontdoor = true;
                i += 1;
                continue;
            }
            other => {
                eprintln!(
                    "unknown flag {other}\nusage: rbay-node --index <i> --agents <n> \
                     [--agents-per-proc <m>] [--base-port <p>] [--num-sites <s>] [--tick-ms <ms>] \
                     [--data-dir <dir>] [--fsync always|batch|never] [--frontdoor]"
                );
                std::process::exit(2);
            }
        }
        i += 2;
    }
    if args.per == 0 {
        eprintln!("--agents-per-proc must be >= 1");
        std::process::exit(2);
    }
    if args.index.saturating_mul(args.per) >= args.agents {
        eprintln!("--index hosts no members (index * per >= agents)");
        std::process::exit(2);
    }
    args
}

/// Parses the value after flag `argv[i]`, exiting with usage on errors.
fn flag_value<T: std::str::FromStr>(argv: &[String], i: usize) -> T
where
    T::Err: std::fmt::Display,
{
    argv.get(i + 1)
        .unwrap_or_else(|| {
            eprintln!("missing value for {}", argv[i]);
            std::process::exit(2);
        })
        .parse()
        .unwrap_or_else(|e| {
            eprintln!("bad value for {}: {e}", argv[i]);
            std::process::exit(2);
        })
}

fn main() {
    let args = parse_args();
    let start = args.index * args.per;
    let end = (start + args.per).min(args.agents);
    let (bus, rx) = TcpBus::start(
        cluster::proc_sock(args.base_port, args.index),
        NodeAddr(start),
        cluster::packed_resolver(args.base_port, args.agents, args.per),
    )
    .unwrap_or_else(|e| {
        eprintln!("rbay-node[{}]: cannot listen: {e}", args.index);
        std::process::exit(1);
    });
    let cfg = RbayConfig {
        frontdoor_invalidation: args.frontdoor,
        ..RbayConfig::default()
    };
    let members = (start..end)
        .map(|a| cluster::build_node(a, args.agents, args.num_sites, cfg.clone()))
        .collect();
    let mut pack = Pack::new(start, members);
    if start == 0 {
        pack.member_mut(0).seed_as_bootstrap();
    }
    if let Some(dir) = &args.data_dir {
        restore_members(&mut pack, dir, args.fsync, args.index);
    }
    eprintln!(
        "rbay-node[{}]: hosting members {start}..{end} on {}",
        args.index,
        bus.local_addr(),
    );
    run(&mut pack, bus, &rx, &args);
}

/// Opens (or creates) each member's durable store under
/// `<data-dir>/member-<addr>` and replays it into the member: attributes
/// land back in the key-value map, handler sources are re-linted under
/// the *current* policy before re-installation, and tree subscriptions
/// are queued for re-join through the normal retry machinery.
fn restore_members(pack: &mut Pack, dir: &std::path::Path, fsync: FsyncPolicy, index: u32) {
    let mut attrs = 0usize;
    let mut handlers = 0usize;
    let mut quarantined = 0usize;
    let mut subs = 0usize;
    let mut records = 0u64;
    let mut micros = 0u64;
    for slot in 0..pack.len() {
        let member_dir = dir.join(format!("member-{}", pack.addr_of(slot).0));
        if let Err(e) = std::fs::create_dir_all(&member_dir) {
            eprintln!(
                "rbay-node[{index}]: cannot create {}: {e}; member runs in-memory",
                member_dir.display()
            );
            continue;
        }
        match Store::open(&member_dir, fsync) {
            Ok((store, report)) => {
                if report.snapshot_corrupt {
                    eprintln!(
                        "rbay-node[{index}]: corrupt snapshot in {} discarded; \
                         recovered from WAL alone",
                        member_dir.display()
                    );
                }
                let summary = pack.member_mut(slot).host.attach_store(Box::new(store));
                attrs += summary.attrs;
                handlers += summary.handlers;
                quarantined += summary.quarantined;
                subs += summary.subs;
                records += summary.replay_records;
                micros += summary.replay_micros;
            }
            Err(e) => eprintln!(
                "rbay-node[{index}]: cannot open store in {}: {e}; member runs in-memory",
                member_dir.display()
            ),
        }
    }
    if records > 0 || attrs > 0 {
        eprintln!(
            "rbay-node[{index}]: restored {attrs} attr(s), {handlers} handler(s) \
             ({quarantined} quarantined), {subs} sub(s) from {records} WAL record(s) \
             in {micros} us"
        );
    }
}

/// The daemon's main loop: fire due timers, run the per-tick join and
/// maintenance work, drain loopback, answer finished queries, then block
/// on the inbound queue until the next deadline.
fn run(pack: &mut Pack, bus: TcpBus, rx: &Receiver<Inbound>, args: &Args) {
    let mut sink = bus.clone();
    // Queries issued over a control connection, awaiting completion:
    // `(member slot, query, ctrl conn to answer)`.
    let mut pending: Vec<(u32, QueryId, u64)> = Vec::new();
    let mut next_tick = Instant::now() + args.tick;
    let maint_batch = pack.len().div_ceil(MAINT_SWEEP_TICKS).max(1);
    let mut maint_cursor = 0u32;
    loop {
        pack.fire_due(&mut sink);
        if Instant::now() >= next_tick {
            tick_joins(pack, &mut sink);
            for _ in 0..maint_batch {
                pack.maintenance_round(&mut sink, maint_cursor);
                maint_cursor = (maint_cursor + 1) % pack.len();
            }
            // Under `--fsync batch` one sync_data per dirty member per
            // tick bounds the window a power failure can lose to a tick.
            flush_stores(pack, args.index);
            next_tick = Instant::now() + args.tick;
        }
        while pack.has_loopback() {
            pack.pump(&mut sink);
        }
        answer_finished_queries(pack, &bus, &mut pending);

        let mut wait = next_tick.saturating_duration_since(Instant::now());
        if let Some(deadline) = pack.next_deadline() {
            let until = Duration::from_micros(deadline.saturating_since(pack.now()).as_micros());
            wait = wait.min(until);
        }
        match rx.recv_timeout(wait.max(Duration::from_millis(1))) {
            Ok(first) => {
                if on_inbound(pack, &mut sink, &bus, &mut pending, first, args) {
                    bus.shutdown();
                    return;
                }
                // Batch-drain whatever else arrived before pumping again.
                for _ in 0..RECV_BATCH {
                    match rx.try_recv() {
                        Ok(msg) => {
                            if on_inbound(pack, &mut sink, &bus, &mut pending, msg, args) {
                                bus.shutdown();
                                return;
                            }
                        }
                        Err(TryRecvError::Empty) => break,
                        Err(TryRecvError::Disconnected) => return,
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Sends (or re-sends) Pastry joins for not-yet-joined members, at most
/// [`JOIN_BATCH`] per tick. Slot 0 joins the global bootstrap
/// (`NodeAddr(0)`); later slots wait for slot 0 and then join through it
/// locally, so the bootstrap process sees O(procs) joiners, not
/// O(agents).
fn tick_joins(pack: &mut Pack, sink: &mut TcpBus) {
    let slot0_joined = pack.member(0).pastry.is_joined();
    let mut sent = 0;
    for slot in 0..pack.len() {
        if sent >= JOIN_BATCH {
            break;
        }
        if pack.member(slot).pastry.is_joined() {
            continue; // covers the seeded bootstrap member too
        }
        let bootstrap = if slot == 0 {
            NodeAddr(0)
        } else if slot0_joined {
            pack.addr_of(0)
        } else {
            continue; // wait for the local gateway member first
        };
        pack.join_member(sink, slot, bootstrap);
        sent += 1;
    }
}

/// Handles one inbound bus event; returns `true` when the daemon should
/// exit.
fn on_inbound(
    pack: &mut Pack,
    sink: &mut TcpBus,
    bus: &TcpBus,
    pending: &mut Vec<(u32, QueryId, u64)>,
    msg: Inbound,
    args: &Args,
) -> bool {
    match msg {
        Inbound::Peer { from, to, frame } => match decode_frame::<RbayMsg>(&frame) {
            Ok(msg) => {
                if !pack.on_message(sink, from, to, msg) {
                    eprintln!(
                        "rbay-node[{}]: frame for unhosted member {to:?}",
                        args.index
                    );
                }
            }
            Err(e) => eprintln!("rbay-node[{}]: bad frame from {from:?}: {e}", args.index),
        },
        Inbound::Ctrl { conn, frame } => {
            return on_ctrl(pack, sink, bus, pending, conn, &frame, args);
        }
        Inbound::CtrlClosed { conn } => pending.retain(|(_, _, c)| *c != conn),
    }
    false
}

/// Handles one control request; returns `true` when the daemon should
/// exit.
fn on_ctrl(
    pack: &mut Pack,
    sink: &mut TcpBus,
    bus: &TcpBus,
    pending: &mut Vec<(u32, QueryId, u64)>,
    conn: u64,
    frame: &[u8],
    args: &Args,
) -> bool {
    let reply = |msg: &CtrlMsg| {
        if let Err(e) = bus.send_ctrl(conn, &encode_frame(msg)) {
            eprintln!("rbay-node[{}]: ctrl reply failed: {e}", args.index);
        }
    };
    let msg = match decode_frame::<CtrlMsg>(frame) {
        Ok(m) => m,
        Err(e) => {
            reply(&CtrlMsg::Err { msg: e.to_string() });
            return false;
        }
    };
    // Unwrap member addressing; bare requests target the first member.
    let (slot, msg) = match msg {
        CtrlMsg::To { member, msg } => match pack.slot_of(member) {
            Some(slot) => (slot, *msg),
            None => {
                reply(&CtrlMsg::Err {
                    msg: format!("member {member:?} not hosted here"),
                });
                return false;
            }
        },
        msg => (0, msg),
    };
    match msg {
        CtrlMsg::Post { attr, value } => {
            pack.with_member(sink, slot, |node, ctx| {
                node.host.now = ctx.now();
                node.host.post_resource(&attr, value);
            });
            reply(&CtrlMsg::Ok);
        }
        CtrlMsg::InstallNodeAa { src } => {
            let res = pack.with_member(sink, slot, |node, ctx| {
                node.host.now = ctx.now();
                node.host.install_node_aa(&src)
            });
            match res {
                Ok(()) => reply(&CtrlMsg::Ok),
                Err(e) => reply(&CtrlMsg::Err { msg: e.to_string() }),
            }
        }
        CtrlMsg::IssueQuery { zql, password } => match parse_query(&zql) {
            Ok(q) => {
                // Route through the front door: a no-op pass-through on
                // members where it is not enabled.
                let resp = pack.with_member(sink, slot, |node, ctx| {
                    node.host.now = ctx.now();
                    node.host.frontdoor_query(q, password)
                });
                match resp {
                    FrontdoorResponse::Cached { result, satisfied } => {
                        reply(&CtrlMsg::QueryDone {
                            satisfied,
                            results: result,
                            unknown_sites: Vec::new(),
                        });
                    }
                    FrontdoorResponse::Pending { id, .. } => pending.push((slot, id, conn)),
                    FrontdoorResponse::Shed { retry_after } => {
                        reply(&CtrlMsg::QueryShed {
                            retry_after_ms: retry_after.as_micros() / 1000,
                        });
                    }
                }
            }
            Err(e) => reply(&CtrlMsg::Err { msg: e.to_string() }),
        },
        CtrlMsg::EnableFrontdoor {
            ttl_ms,
            capacity,
            max_pending,
        } => {
            pack.with_member(sink, slot, |node, ctx| {
                node.host.now = ctx.now();
                node.host.enable_frontdoor(FrontdoorConfig {
                    cache_ttl: SimDuration::from_millis(ttl_ms),
                    cache_capacity: capacity as usize,
                    max_pending: max_pending as usize,
                    retry_after: SimDuration::from_millis(100),
                });
            });
            reply(&CtrlMsg::Ok);
        }
        CtrlMsg::Status => {
            let node = pack.member(slot);
            let attached = node
                .scribe
                .topics()
                .filter(|(_, st)| st.is_root || st.parent.is_some())
                .count() as u32;
            reply(&CtrlMsg::StatusReply {
                addr: node.pastry.info().addr,
                site: node.host.site,
                joined: node.pastry.is_joined(),
                known_peers: node.pastry.known_peers().len() as u32,
                topics: node.scribe.topics().count() as u32,
                attached,
                committed: node.host.committed.len() as u32,
            });
        }
        CtrlMsg::ProcStatus => {
            let mut joined = 0;
            let mut attached_members = 0;
            let mut topics = 0;
            let mut committed = 0;
            let mut min_known_peers = u32::MAX;
            let mut frontdoor = FrontdoorStats::default();
            let mut store = StoreStats::default();
            for slot in 0..pack.len() {
                let node = pack.member(slot);
                if node.pastry.is_joined() {
                    joined += 1;
                }
                if node
                    .scribe
                    .topics()
                    .any(|(_, st)| st.is_root || st.parent.is_some())
                {
                    attached_members += 1;
                }
                topics += node.scribe.topics().count() as u32;
                committed += node.host.committed.len() as u32;
                min_known_peers = min_known_peers.min(node.pastry.known_peers().len() as u32);
                if let Some(fd) = &node.host.frontdoor {
                    frontdoor.merge(&fd.stats);
                }
                if let Some(s) = &node.host.store {
                    store.merge(&s.stats());
                }
            }
            reply(&CtrlMsg::ProcStatusReply {
                members: pack.len(),
                joined,
                attached_members,
                topics,
                committed,
                dropped_frames: bus.dropped_frames() + pack.loopback_dropped(),
                min_known_peers: if pack.is_empty() { 0 } else { min_known_peers },
                drops: bus.drop_stats(),
                frontdoor,
                store,
            });
        }
        CtrlMsg::Release => {
            pack.member_mut(slot).host.release_reservation();
            reply(&CtrlMsg::Ok);
        }
        CtrlMsg::Shutdown => {
            eprintln!("rbay-node[{}]: shutdown requested", args.index);
            graceful_leave(pack, sink, bus, args.index);
            reply(&CtrlMsg::Ok);
            // The ack itself must clear the event loop before shutdown
            // tears it down, or the harness reads a dead socket.
            bus.flush(Duration::from_millis(500));
            return true;
        }
        other => reply(&CtrlMsg::Err {
            msg: format!("unexpected request: {other:?}"),
        }),
    }
    false
}

/// Flushes every member's WAL (one `sync_data` per dirty store under the
/// batch fsync policy; a no-op otherwise).
fn flush_stores(pack: &mut Pack, index: u32) {
    for slot in 0..pack.len() {
        if let Some(store) = pack.member_mut(slot).host.store.as_mut() {
            if let Err(e) = store.flush() {
                eprintln!("rbay-node[{index}]: WAL flush failed: {e}");
            }
        }
    }
}

/// Graceful-exit ordering: every member leaves its trees (so peers prune
/// it immediately instead of waiting out failure detection), the Leave
/// traffic is pumped out of loopback, the WAL is flushed, and the bus
/// drains its staged outbound frames — all *before* the shutdown ack.
///
/// Leaves deliberately bypass the WAL: the departure is an artifact of
/// the restart, not a durable intent, so the store keeps the `SubAdd`
/// records and the next boot re-joins every tree.
fn graceful_leave(pack: &mut Pack, sink: &mut TcpBus, bus: &TcpBus, index: u32) {
    for slot in 0..pack.len() {
        let topics: Vec<TopicId> = pack
            .member(slot)
            .scribe
            .topics()
            .filter(|(_, st)| st.subscribed)
            .map(|(t, _)| *t)
            .collect();
        if topics.is_empty() {
            continue;
        }
        pack.with_member(sink, slot, |node, _| {
            for topic in topics {
                node.host.ops.push_back(Op::Unsubscribe { topic });
            }
        });
    }
    while pack.has_loopback() {
        pack.pump(sink);
    }
    flush_stores(pack, index);
    if !bus.flush(Duration::from_secs(2)) {
        eprintln!("rbay-node[{index}]: outbound frames still staged at shutdown deadline");
    }
}

/// Sends [`CtrlMsg::QueryDone`] for every pending query whose record has
/// completed, dropping it from the wait list.
fn answer_finished_queries(pack: &mut Pack, bus: &TcpBus, pending: &mut Vec<(u32, QueryId, u64)>) {
    pending.retain(|&(slot, id, conn)| {
        let Some(rec) = pack.member(slot).host.queries.get(&id) else {
            return false;
        };
        if rec.completed_at.is_none() {
            return true;
        }
        let done = CtrlMsg::QueryDone {
            satisfied: rec.satisfied,
            results: rec.result.clone(),
            unknown_sites: rec.unknown_sites.clone(),
        };
        if let Err(e) = bus.send_ctrl(conn, &encode_frame(&done)) {
            eprintln!("rbay-node: query answer failed: {e}");
        }
        false
    });
}
