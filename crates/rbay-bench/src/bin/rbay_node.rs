//! `rbay-node` — one RBAY federation member as a real OS process.
//!
//! Listens on `127.0.0.1:(base_port + index)`, joins the Pastry overlay
//! through daemon 0 (which seeds itself as bootstrap), then runs the same
//! protocol code the simulator runs — routed messages, Scribe trees,
//! AAScript handlers, the five-step query protocol — over loopback TCP
//! via [`rbay_wire::TcpTransport`]. Operator tools (the `cluster`
//! harness) drive it over control connections speaking
//! [`rbay_bench::cluster::CtrlMsg`].
//!
//! ```text
//! rbay-node --index 0 --count 5 [--base-port 46100] [--num-sites 1] [--tick-ms 150]
//! ```

use rbay_bench::cluster::{self, CtrlMsg};
use rbay_core::{QueryId, RbayConfig, RbayMsg, RbayNode};
use rbay_query::parse_query;
use rbay_wire::{decode_frame, encode_frame, Inbound, TcpBus, TcpTransport, Transport};
use simnet::NodeAddr;
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::time::{Duration, Instant};

struct Args {
    index: u32,
    count: u32,
    base_port: u16,
    num_sites: u16,
    tick: Duration,
}

fn parse_args() -> Args {
    let mut args = Args {
        index: 0,
        count: 1,
        base_port: cluster::DEFAULT_BASE_PORT,
        num_sites: 1,
        tick: Duration::from_millis(150),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--index" => args.index = flag_value(&argv, i),
            "--count" => args.count = flag_value(&argv, i),
            "--base-port" => args.base_port = flag_value(&argv, i),
            "--num-sites" => args.num_sites = flag_value(&argv, i),
            "--tick-ms" => args.tick = Duration::from_millis(flag_value(&argv, i)),
            other => {
                eprintln!(
                    "unknown flag {other}\nusage: rbay-node --index <i> --count <n> \
                     [--base-port <p>] [--num-sites <s>] [--tick-ms <ms>]"
                );
                std::process::exit(2);
            }
        }
        i += 2;
    }
    if args.index >= args.count {
        eprintln!("--index must be < --count");
        std::process::exit(2);
    }
    args
}

/// Parses the value after flag `argv[i]`, exiting with usage on errors.
fn flag_value<T: std::str::FromStr>(argv: &[String], i: usize) -> T
where
    T::Err: std::fmt::Display,
{
    argv.get(i + 1)
        .unwrap_or_else(|| {
            eprintln!("missing value for {}", argv[i]);
            std::process::exit(2);
        })
        .parse()
        .unwrap_or_else(|e| {
            eprintln!("bad value for {}: {e}", argv[i]);
            std::process::exit(2);
        })
}

fn main() {
    let args = parse_args();
    let me = NodeAddr(args.index);
    let (bus, rx) = TcpBus::start(
        cluster::sock_of(args.base_port, me),
        me,
        cluster::resolver(args.base_port, args.count),
    )
    .unwrap_or_else(|e| {
        eprintln!("rbay-node[{}]: cannot listen: {e}", args.index);
        std::process::exit(1);
    });
    let mut tr: TcpTransport<RbayMsg> = TcpTransport::new(bus);
    let mut node = cluster::build_node(
        args.index,
        args.count,
        args.num_sites,
        RbayConfig::default(),
    );
    if args.index == 0 {
        node.seed_as_bootstrap();
    } else {
        node.join_via(&mut tr, NodeAddr(0));
    }
    eprintln!(
        "rbay-node[{}]: listening on {}, site {:?}",
        args.index,
        cluster::sock_of(args.base_port, me),
        node.host.site
    );
    run(&mut node, &mut tr, &rx, &args);
}

/// The daemon's event loop: fire due timers, run the maintenance tick,
/// answer finished queries, then block on the inbound queue until the
/// next deadline.
fn run(node: &mut RbayNode, tr: &mut TcpTransport<RbayMsg>, rx: &Receiver<Inbound>, args: &Args) {
    // Queries issued over a control connection, awaiting completion:
    // `(query, ctrl conn to answer)`.
    let mut pending: Vec<(QueryId, u64)> = Vec::new();
    let mut next_tick = Instant::now() + args.tick;
    loop {
        for token in tr.due_timers() {
            node.on_timer_via(tr, token);
        }
        let now = Instant::now();
        if now >= next_tick {
            if args.index != 0 && !node.pastry.is_joined() {
                // Join traffic is best-effort; keep knocking until joined.
                node.join_via(tr, NodeAddr(0));
            }
            node.maintenance_round_via(tr);
            next_tick = Instant::now() + args.tick;
        }
        answer_finished_queries(node, tr, &mut pending);

        let mut wait = next_tick.saturating_duration_since(Instant::now());
        if let Some(deadline) = tr.next_deadline() {
            let until = Duration::from_micros(deadline.saturating_since(tr.now()).as_micros());
            wait = wait.min(until);
        }
        match rx.recv_timeout(wait.max(Duration::from_millis(1))) {
            Ok(Inbound::Peer { from, frame }) => match decode_frame::<RbayMsg>(&frame) {
                Ok(msg) => node.on_message_via(tr, from, msg),
                Err(e) => eprintln!("rbay-node[{}]: bad frame from {from:?}: {e}", args.index),
            },
            Ok(Inbound::Ctrl { conn, frame }) => {
                if on_ctrl(node, tr, &mut pending, conn, &frame, args) {
                    return;
                }
            }
            Ok(Inbound::CtrlClosed { conn }) => pending.retain(|(_, c)| *c != conn),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Handles one control request; returns `true` when the daemon should
/// exit.
fn on_ctrl(
    node: &mut RbayNode,
    tr: &mut TcpTransport<RbayMsg>,
    pending: &mut Vec<(QueryId, u64)>,
    conn: u64,
    frame: &[u8],
    args: &Args,
) -> bool {
    let reply = |tr: &TcpTransport<RbayMsg>, msg: &CtrlMsg| {
        if let Err(e) = tr.bus().send_ctrl(conn, &encode_frame(msg)) {
            eprintln!("rbay-node[{}]: ctrl reply failed: {e}", args.index);
        }
    };
    let msg = match decode_frame::<CtrlMsg>(frame) {
        Ok(m) => m,
        Err(e) => {
            reply(tr, &CtrlMsg::Err { msg: e.to_string() });
            return false;
        }
    };
    node.host.now = tr.now();
    match msg {
        CtrlMsg::Post { attr, value } => {
            node.host.post_resource(&attr, value);
            node.drain_ops_via(tr);
            reply(tr, &CtrlMsg::Ok);
        }
        CtrlMsg::InstallNodeAa { src } => match node.host.install_node_aa(&src) {
            Ok(()) => reply(tr, &CtrlMsg::Ok),
            Err(e) => reply(tr, &CtrlMsg::Err { msg: e.to_string() }),
        },
        CtrlMsg::IssueQuery { zql, password } => match parse_query(&zql) {
            Ok(q) => {
                let id = node.host.issue_query(q, password);
                node.drain_ops_via(tr);
                pending.push((id, conn));
            }
            Err(e) => reply(tr, &CtrlMsg::Err { msg: e.to_string() }),
        },
        CtrlMsg::Status => {
            let attached = node
                .scribe
                .topics()
                .filter(|(_, st)| st.is_root || st.parent.is_some())
                .count() as u32;
            reply(
                tr,
                &CtrlMsg::StatusReply {
                    addr: node.pastry.info().addr,
                    site: node.host.site,
                    joined: node.pastry.is_joined(),
                    known_peers: node.pastry.known_peers().len() as u32,
                    topics: node.scribe.topics().count() as u32,
                    attached,
                    committed: node.host.committed.len() as u32,
                },
            );
        }
        CtrlMsg::Shutdown => {
            reply(tr, &CtrlMsg::Ok);
            eprintln!("rbay-node[{}]: shutdown requested", args.index);
            return true;
        }
        other => reply(
            tr,
            &CtrlMsg::Err {
                msg: format!("unexpected request: {other:?}"),
            },
        ),
    }
    false
}

/// Sends [`CtrlMsg::QueryDone`] for every pending query whose record has
/// completed, dropping it from the wait list.
fn answer_finished_queries(
    node: &mut RbayNode,
    tr: &mut TcpTransport<RbayMsg>,
    pending: &mut Vec<(QueryId, u64)>,
) {
    pending.retain(|&(id, conn)| {
        let Some(rec) = node.host.queries.get(&id) else {
            return false;
        };
        if rec.completed_at.is_none() {
            return true;
        }
        let done = CtrlMsg::QueryDone {
            satisfied: rec.satisfied,
            results: rec.result.clone(),
            unknown_sites: rec.unknown_sites.clone(),
        };
        if let Err(e) = tr.bus().send_ctrl(conn, &encode_frame(&done)) {
            eprintln!("rbay-node: query answer failed: {e}");
        }
        false
    });
}
