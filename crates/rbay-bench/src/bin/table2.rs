#![allow(clippy::needless_range_loop)] // index used for both reads and address math

//! Table II: average round-trip latency between Amazon sites.
//!
//! Measures RTTs over the simulated topology with ping/pong actors and
//! prints the measured matrix next to the paper's input values. Because
//! the topology's means come from Table II itself, agreement validates the
//! latency model (mean ≈ RTT plus the jitter tail).

use rbay_bench::HarnessOpts;
use simnet::topology::AWS8_SITE_NAMES;
use simnet::{Actor, Context, MessageSize, NodeAddr, SimTime, Simulation, SiteId, Topology};

#[derive(Debug)]
enum Msg {
    Ping { seq: u32 },
    Pong { seq: u32 },
}
impl MessageSize for Msg {}

#[derive(Default)]
struct Pinger {
    // (destination, seq) -> send time, and collected RTT samples per site.
    outstanding: std::collections::HashMap<u32, (NodeAddr, SimTime)>,
    rtts: Vec<(SiteId, f64)>,
    next_seq: u32,
}

impl Actor for Pinger {
    type Msg = Msg;
    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeAddr, msg: Msg) {
        match msg {
            Msg::Ping { seq } => ctx.send(from, Msg::Pong { seq }),
            Msg::Pong { seq } => {
                if let Some((dest, sent)) = self.outstanding.remove(&seq) {
                    let site = ctx.topology().site_of(dest);
                    self.rtts
                        .push((site, ctx.now().saturating_since(sent).as_millis_f64()));
                }
            }
        }
    }
}

fn main() {
    let opts = HarnessOpts::from_args();
    let pings = opts.scaled(50, 5);
    let mut sim = Simulation::new(Topology::aws_ec2_8_sites(2), opts.seed, |_| {
        Pinger::default()
    });

    // Node 2*s is site s's prober; it pings one node in every site
    // (including its own) `pings` times.
    for s in 0..8u32 {
        let src = NodeAddr(2 * s);
        for d in 0..8u32 {
            let dst = NodeAddr(2 * d + 1);
            for _ in 0..pings {
                sim.schedule_call(SimTime::ZERO, src, move |a, ctx| {
                    let seq = a.next_seq;
                    a.next_seq += 1;
                    a.outstanding.insert(seq, (dst, ctx.now()));
                    ctx.send(dst, Msg::Ping { seq });
                });
            }
        }
    }
    sim.run_until_idle();

    // Average the measured RTTs per (source site, dest site).
    let mut sums = vec![vec![(0.0f64, 0u32); 8]; 8];
    for s in 0..8u32 {
        let a = sim.actor(NodeAddr(2 * s));
        for (site, rtt) in &a.rtts {
            let cell = &mut sums[s as usize][site.0 as usize];
            cell.0 += rtt;
            cell.1 += 1;
        }
    }

    println!("Table II: average round-trip latency between Amazon sites (ms)");
    println!("measured over the simulated topology (upper: measured, lower: paper)\n");
    print!("{:<12}", "");
    for name in AWS8_SITE_NAMES {
        print!("{name:>12}");
    }
    println!();
    let paper = simnet::topology::table2_rtt_matrix();
    for (i, name) in AWS8_SITE_NAMES.iter().enumerate() {
        print!("{name:<12}");
        for j in 0..8 {
            if j < i {
                print!("{:>12}", "");
                continue;
            }
            let (sum, n) = sums[i][j];
            print!("{:>12.3}", sum / n as f64);
        }
        println!();
        print!("{:<12}", "  (paper)");
        for j in 0..8 {
            if j < i {
                print!("{:>12}", "");
                continue;
            }
            print!("{:>12.3}", paper[i][j]);
        }
        println!();
    }
}
