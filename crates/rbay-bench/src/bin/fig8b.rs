//! Fig. 8b: scalability with the number of queries — load balance of the
//! lookup service.
//!
//! Paper setup (§IV.B.2): the 1,000 atomic queries of Fig. 8a are tracked
//! by the NodeIds of the intermediate forwarders. Queries Q1…Q10 (ten
//! distinct keys, 100 queries each) should spread across different
//! NodeIds, with each key's last-hop forwarder seeing about 100 forwards —
//! the keys map to independent overlay locations, dividing the central
//! lookup load.

use pastry::{seed_overlay, NodeId, NodeInfo, PastryApp, PastryMsg, PastryNode, SimNet};
use rbay_bench::HarnessOpts;
use simnet::{Actor, Context, MessageSize, NodeAddr, SimTime, Simulation, SiteId, Topology};

#[derive(Debug, Clone, Copy)]
struct Probe;
impl MessageSize for Probe {}

#[derive(Default)]
struct Recorder {
    delivered: u64,
}
impl PastryApp<Probe> for Recorder {
    fn deliver<N: pastry::Net<Probe>>(
        &mut self,
        _node: &mut PastryNode,
        _net: &mut N,
        _key: NodeId,
        _payload: Probe,
        _hops: u16,
    ) {
        self.delivered += 1;
    }
    fn receive_direct<N: pastry::Net<Probe>>(
        &mut self,
        _n: &mut PastryNode,
        _net: &mut N,
        _f: NodeAddr,
        _p: Probe,
    ) {
    }
}

struct Agent {
    node: PastryNode,
    app: Recorder,
}
impl Actor for Agent {
    type Msg = PastryMsg<Probe>;
    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeAddr, msg: Self::Msg) {
        let Agent { node, app } = self;
        let mut net = SimNet::new(ctx);
        node.on_message(&mut net, app, from, msg);
    }
}

fn main() {
    let opts = HarnessOpts::from_args();
    let n_nodes = opts.scaled_nodes(10_000, 100);
    let queries_per_key = opts.scaled(100, 10);
    let n_keys = 10usize;

    let mut sim = Simulation::new(Topology::single_site(n_nodes, 0.5), opts.seed, |addr| Agent {
        node: PastryNode::new(NodeInfo {
            id: NodeId::hash_of(format!("agent:{}", addr.0).as_bytes()),
            addr,
            site: SiteId(0),
        }),
        app: Recorder::default(),
    });
    let mut nodes: Vec<PastryNode> = sim
        .actors()
        .map(|(_, a)| {
            let mut n = PastryNode::new(a.node.info());
            n.enable_forward_log();
            n
        })
        .collect();
    seed_overlay(&mut nodes, |_, _| 0.0);
    for (i, n) in nodes.into_iter().enumerate() {
        sim.actor_mut(NodeAddr(i as u32)).node = n;
    }

    let keys: Vec<NodeId> = (0..n_keys)
        .map(|k| NodeId::hash_of(format!("Q{}:{}", k + 1, opts.seed).as_bytes()))
        .collect();
    for (ki, key) in keys.iter().enumerate() {
        let key = *key;
        for q in 0..queries_per_key {
            let src = NodeAddr(((q * 6007 + ki * 97 + 13) % n_nodes) as u32);
            sim.schedule_call(SimTime::ZERO, src, move |a, ctx| {
                let Agent { node, app } = a;
                let mut net = SimNet::new(ctx);
                node.route(&mut net, app, key, Probe, None);
            });
        }
    }
    sim.run_until_idle();

    println!(
        "Fig. 8b: forwarding load per query key ({n_nodes} nodes, {queries_per_key} queries/key)"
    );
    println!("(the max-loaded forwarder of each key carries ~queries_per_key forwards;");
    println!(" distinct keys land on distinct forwarders, balancing the lookup load)\n");
    println!(
        "{:>5} {:>14} {:>12} {:>14} {:>18}",
        "key", "total fwds", "forwarders", "max fwds/node", "top forwarder id"
    );
    let mut top_forwarders = Vec::new();
    for (ki, key) in keys.iter().enumerate() {
        let mut total = 0u64;
        let mut max = 0u64;
        let mut distinct = 0u32;
        let mut top = None;
        for (addr, a) in sim.actors() {
            if let Some(log) = a.node.forward_log() {
                if let Some(c) = log.get(key) {
                    total += c;
                    distinct += 1;
                    if *c > max {
                        max = *c;
                        top = Some((addr, a.node.id()));
                    }
                }
            }
        }
        match top {
            Some((addr, id)) => {
                top_forwarders.push(addr);
                println!(
                    "{:>5} {:>14} {:>12} {:>14} {:>18}",
                    format!("Q{}", ki + 1),
                    total,
                    distinct,
                    max,
                    format!("{id}")
                );
            }
            None => println!(
                "{:>5} {:>14} {:>12} {:>14} {:>18}",
                format!("Q{}", ki + 1),
                0,
                0,
                0,
                "(delivered in 0-1 hops)"
            ),
        }
    }
    top_forwarders.sort();
    top_forwarders.dedup();
    println!(
        "\ndistinct top-forwarders across the {} keys: {} (load balanced ⇔ close to {})",
        n_keys,
        top_forwarders.len(),
        n_keys
    );
}
