//! Fig. 8b: scalability with the number of queries — load balance of the
//! lookup service.
//!
//! Paper setup (§IV.B.2): the 1,000 atomic queries of Fig. 8a are tracked
//! by the NodeIds of the intermediate forwarders. Queries Q1…Q10 (ten
//! distinct keys, 100 queries each) should spread across different
//! NodeIds, with each key's last-hop forwarder seeing about 100 forwards —
//! the keys map to independent overlay locations, dividing the central
//! lookup load.

use pastry::{seed_overlay, NodeId, NodeInfo, PastryApp, PastryMsg, PastryNode, SimNet};
use rbay_bench::{default_threads, emit_json, run_seeds, HarnessOpts, JsonRecord};
use simnet::{Actor, Context, MessageSize, NodeAddr, SimTime, Simulation, SiteId, Topology};

#[derive(Debug, Clone, Copy)]
struct Probe;
impl MessageSize for Probe {}

#[derive(Default)]
struct Recorder {
    delivered: u64,
}
impl PastryApp<Probe> for Recorder {
    fn deliver<N: pastry::Net<Probe>>(
        &mut self,
        _node: &mut PastryNode,
        _net: &mut N,
        _key: NodeId,
        _payload: Probe,
        _hops: u16,
    ) {
        self.delivered += 1;
    }
    fn receive_direct<N: pastry::Net<Probe>>(
        &mut self,
        _n: &mut PastryNode,
        _net: &mut N,
        _f: NodeAddr,
        _p: Probe,
    ) {
    }
}

struct Agent {
    node: PastryNode,
    app: Recorder,
}
impl Actor for Agent {
    type Msg = PastryMsg<Probe>;
    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeAddr, msg: Self::Msg) {
        let Agent { node, app } = self;
        let mut net = SimNet::new(ctx);
        node.on_message(&mut net, app, from, msg);
    }
}

/// Per-key forwarding-load summary of one seed's run.
struct KeyCell {
    total_fwds: u64,
    distinct_forwarders: u32,
    max_fwds: u64,
}

/// One seed's full result: a row per query key plus run totals.
struct Cell {
    keys: Vec<KeyCell>,
    distinct_top_forwarders: usize,
    /// Probes delivered — the routing invariant is
    /// `delivered == queries_per_key * n_keys`.
    delivered: u64,
    events: u64,
    wall_secs: f64,
}

fn run_one(n_nodes: usize, queries_per_key: usize, n_keys: usize, seed: u64) -> Cell {
    // Seed the overlay before the simulation exists so each (large)
    // PastryNode is constructed exactly once and moved into its actor.
    let mut nodes: Vec<PastryNode> = (0..n_nodes as u32)
        .map(|i| {
            let mut n = PastryNode::new(NodeInfo {
                id: NodeId::hash_of(format!("agent:{i}").as_bytes()),
                addr: NodeAddr(i),
                site: SiteId(0),
            });
            n.enable_forward_log();
            n
        })
        .collect();
    seed_overlay(&mut nodes, |_, _| 0.0);
    let mut seeded = nodes.into_iter();
    let mut sim = Simulation::new(Topology::single_site(n_nodes, 0.5), seed, |_| Agent {
        node: seeded.next().expect("one node per address"),
        app: Recorder::default(),
    });

    let keys: Vec<NodeId> = (0..n_keys)
        .map(|k| NodeId::hash_of(format!("Q{}:{}", k + 1, seed).as_bytes()))
        .collect();
    for (ki, key) in keys.iter().enumerate() {
        let key = *key;
        for q in 0..queries_per_key {
            let src = NodeAddr(((q * 6007 + ki * 97 + 13) % n_nodes) as u32);
            sim.schedule_call(SimTime::ZERO, src, move |a, ctx| {
                let Agent { node, app } = a;
                let mut net = SimNet::new(ctx);
                node.route(&mut net, app, key, Probe, None);
            });
        }
    }
    sim.run_until_idle();

    let mut out = Vec::with_capacity(n_keys);
    let mut top_forwarders = Vec::new();
    for key in &keys {
        let mut total = 0u64;
        let mut max = 0u64;
        let mut distinct = 0u32;
        let mut top = None;
        for (addr, a) in sim.actors() {
            if let Some(log) = a.node.forward_log() {
                if let Some(c) = log.get(key) {
                    total += c;
                    distinct += 1;
                    if *c > max {
                        max = *c;
                        top = Some(addr);
                    }
                }
            }
        }
        if let Some(addr) = top {
            top_forwarders.push(addr);
        }
        out.push(KeyCell {
            total_fwds: total,
            distinct_forwarders: distinct,
            max_fwds: max,
        });
    }
    top_forwarders.sort();
    top_forwarders.dedup();
    Cell {
        keys: out,
        distinct_top_forwarders: top_forwarders.len(),
        delivered: sim.actors().map(|(_, a)| a.app.delivered).sum(),
        events: sim.stats().events(),
        wall_secs: sim.wall_time().as_secs_f64(),
    }
}

fn main() {
    let opts = HarnessOpts::from_args();
    let n_nodes = opts.scaled_nodes(10_000, 100);
    let queries_per_key = opts.scaled(100, 10);
    let n_keys = 10usize;
    let seeds = opts.seed_list();

    // One independent simulation per seed; merge deterministically in seed
    // order (per-key means across seeds).
    let cells = run_seeds(&seeds, default_threads(), |seed| {
        run_one(n_nodes, queries_per_key, n_keys, seed)
    });
    // Exactly-once delivery is the routing invariant; a miss dumps a
    // schedule replayable through `rbay-check replay`.
    let expected = (queries_per_key * n_keys) as u64;
    for (&seed, c) in seeds.iter().zip(&cells) {
        if c.delivered != expected {
            let v = rbay_check::Violation::ProbeLoss {
                delivered: c.delivered as usize,
                expected: expected as usize,
            };
            eprintln!("INVARIANT VIOLATION ({n_nodes} nodes, seed {seed}): {v}");
            rbay_bench::emit_schedule(
                &opts,
                &rbay_check::ScheduleFile {
                    spec: rbay_check::CheckSpec::bench_fig8(n_nodes, expected as usize, seed),
                    violation: Some(v.kind().to_string()),
                    directives: Vec::new(),
                },
            );
        }
    }

    println!(
        "Fig. 8b: forwarding load per query key ({n_nodes} nodes, {queries_per_key} queries/key, {} seed(s))",
        seeds.len()
    );
    println!("(the max-loaded forwarder of each key carries ~queries_per_key forwards;");
    println!(" distinct keys land on distinct forwarders, balancing the lookup load)\n");
    println!(
        "{:>5} {:>14} {:>12} {:>14}",
        "key", "total fwds", "forwarders", "max fwds/node"
    );
    for ki in 0..n_keys {
        let total = cells
            .iter()
            .map(|c| c.keys[ki].total_fwds as f64)
            .sum::<f64>()
            / cells.len() as f64;
        let distinct = cells
            .iter()
            .map(|c| c.keys[ki].distinct_forwarders as f64)
            .sum::<f64>()
            / cells.len() as f64;
        let max = cells
            .iter()
            .map(|c| c.keys[ki].max_fwds as f64)
            .sum::<f64>()
            / cells.len() as f64;
        println!(
            "{:>5} {:>14.1} {:>12.1} {:>14.1}",
            format!("Q{}", ki + 1),
            total,
            distinct,
            max
        );
        emit_json(
            &opts,
            &JsonRecord::new("fig8b")
                .int("nodes", n_nodes as u64)
                .int("queries_per_key", queries_per_key as u64)
                .int("seeds", seeds.len() as u64)
                .int("key", ki as u64 + 1)
                .num("mean_total_fwds", total)
                .num("mean_distinct_forwarders", distinct)
                .num("mean_max_fwds", max),
        );
    }
    let distinct_top = cells
        .iter()
        .map(|c| c.distinct_top_forwarders as f64)
        .sum::<f64>()
        / cells.len() as f64;
    let events: u64 = cells.iter().map(|c| c.events).sum();
    let wall: f64 = cells.iter().map(|c| c.wall_secs).sum();
    println!(
        "\ndistinct top-forwarders across the {} keys: {:.1} (load balanced ⇔ close to {})",
        n_keys, distinct_top, n_keys
    );
    emit_json(
        &opts,
        &JsonRecord::new("fig8b")
            .int("nodes", n_nodes as u64)
            .int("queries_per_key", queries_per_key as u64)
            .int("seeds", seeds.len() as u64)
            .text("row", "summary")
            .num("mean_distinct_top_forwarders", distinct_top)
            .int("events", events)
            .num("sim_wall_secs", wall)
            .num(
                "events_per_sec",
                if wall > 0.0 {
                    events as f64 / wall
                } else {
                    0.0
                },
            ),
    );
    eprintln!(
        "\n[engine] {events} events in {wall:.3}s of simulation loop = {:.0} events/sec",
        if wall > 0.0 {
            events as f64 / wall
        } else {
            0.0
        }
    );
}
