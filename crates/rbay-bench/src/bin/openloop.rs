//! Open-loop load: composite queries arrive at a fixed rate from every
//! site concurrently, as in the paper's setup ("we sent queries in a
//! speed of 1000 per second to different sites", §IV.A). Unlike the
//! closed-loop latency harnesses, queries overlap: reservations conflict
//! and the truncated exponential backoff earns its keep.

use rbay_bench::{percentile, stats, HarnessOpts};
use rbay_core::{Federation, QueryId, RbayConfig};
use rbay_workloads::{
    aws8_site_names, populate_ec2_federation, QueryGen, ScenarioConfig, WORKLOAD_PASSWORD,
};
use simnet::{NodeAddr, SimDuration, SiteId, Topology};

fn main() {
    let opts = HarnessOpts::from_args();
    let nodes_per_site = opts.scaled_nodes(60, 12);
    let total_queries = opts.scaled(400, 40);
    let rate_per_sec = 100.0 * opts.scale.max(0.1);

    println!("Open-loop load: {total_queries} composite queries at {rate_per_sec:.0}/s");
    println!("({nodes_per_site} nodes/site, queries overlap; conflicts resolved by backoff)\n");

    let cfg = RbayConfig {
        commit_results: false,
        ..RbayConfig::default()
    };
    let mut fed =
        Federation::with_config(Topology::aws_ec2_8_sites(nodes_per_site), opts.seed, cfg);
    let scenario = ScenarioConfig {
        extra_attrs_per_node: 5,
        ..ScenarioConfig::default()
    };
    populate_ec2_federation(&mut fed, opts.seed ^ 0xA5A5, &scenario);
    fed.run_maintenance(5, SimDuration::from_millis(250));
    fed.settle();

    let mut qg = QueryGen::new(opts.seed ^ 0x0123, aws8_site_names(), 5).focus_popular(7, 15);
    let gap_us = (1_000_000.0 / rate_per_sec) as u64;
    let start = fed.sim().now();

    // Schedule the whole arrival process up front, then let it run.
    let mut issued: Vec<(NodeAddr, QueryId)> = Vec::with_capacity(total_queries);
    for i in 0..total_queries {
        let home = SiteId((i % 8) as u16);
        let origins = fed.sim().topology().nodes_of_site(home);
        let origin = origins[2 + (i / 8) % (origins.len() - 2)];
        let n_sites = 1 + i % 8;
        let text = qg.composite(home, n_sites, 1);
        let at = start + SimDuration::from_micros(gap_us * i as u64);
        // issue_parsed_query schedules at `now`; schedule the call
        // ourselves at the arrival instant instead.
        let parsed = rbay_query::parse_query(&text).expect("generated query parses");
        let id = {
            // Mirror the per-node sequence the host will assign.
            let seq_so_far = issued.iter().filter(|(o, _)| *o == origin).count() as u32;
            QueryId::new(origin, seq_so_far)
        };
        issued.push((origin, id));
        let password = WORKLOAD_PASSWORD.to_owned();
        fed.sim_mut().schedule_call(at, origin, move |a, ctx| {
            a.host.now = ctx.now();
            a.host.issue_query(parsed, Some(password));
            a.drain_ops(ctx);
        });
    }
    fed.settle();

    let mut lats = Vec::new();
    let mut satisfied = 0usize;
    let mut retried = 0usize;
    for (origin, id) in &issued {
        let rec = fed.query_record(*origin, *id).expect("record exists");
        if let Some(done) = rec.completed_at {
            lats.push(done.saturating_since(rec.issued_at).as_millis_f64());
        }
        if rec.satisfied {
            satisfied += 1;
        }
        if rec.attempts > 0 {
            retried += 1;
        }
    }
    lats.sort_by(f64::total_cmp);
    let st = stats(&lats).expect("queries completed");
    println!("completed: {}/{}", lats.len(), issued.len());
    println!(
        "satisfied: {satisfied} ({:.0}%)",
        100.0 * satisfied as f64 / issued.len() as f64
    );
    println!("retried (conflict/backoff): {retried}");
    println!(
        "latency ms: mean={:.1} p50={:.1} p90={:.1} p99={:.1} max={:.1}",
        st.mean,
        percentile(&lats, 0.50),
        percentile(&lats, 0.90),
        percentile(&lats, 0.99),
        st.max,
    );
    println!("\n(mean stays in the same regime as the closed-loop Fig. 9/10 numbers;");
    println!(" conflicts appear as retried queries with backoff-inflated tails)");
}
