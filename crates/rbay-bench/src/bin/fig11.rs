//! Fig. 11: latencies for constructing admin-specified on-demand trees
//! (onSubscribe) and for delivering admin commands to tree members
//! (onDeliver), per site.
//!
//! Expectations (paper §IV.D): tree construction stabilizes around tens of
//! milliseconds (a join only pings its neighbour set / nearby overlay
//! hops); command delivery costs O(log N) tree-depth hops of cross-region
//! RTT and fluctuates — noticeably worse for the unstable Asia /
//! South-America sites.

use rbay_bench::{
    build_ec2_federation_with, delivery_latencies_by_site, stats, subscribe_latencies_by_site,
    HarnessOpts,
};
use rbay_query::AttrValue;
use rbay_workloads::EC2_INSTANCE_TYPES;
use simnet::topology::AWS8_SITE_NAMES;
use simnet::SiteId;

fn main() {
    let opts = HarnessOpts::from_args();
    let nodes_per_site = opts.scaled_nodes(40, 8);
    println!("Fig. 11: tree construction (onSubscribe) and command delivery (onDeliver)");
    println!(
        "per-site latency in ms ({} nodes/site, 23 instance trees/site)\n",
        nodes_per_site
    );

    // Building the federation constructs all 23 instance trees per site;
    // subscription events were recorded along the way. The paper's Fig. 11
    // deployment routes tree traffic over the *global* overlay (per-site
    // tree names, global rendezvous), so isolation is off here.
    let mut fed = build_ec2_federation_with(nodes_per_site, opts.seed, false);
    let sub = subscribe_latencies_by_site(&fed);

    // Admins (one per site) deliver a command down every instance tree of
    // their site.
    let mut cmd_ids = Vec::new();
    for s in 0..8u16 {
        let admin = fed.sim().topology().nodes_of_site(SiteId(s))[1];
        for itype in EC2_INSTANCE_TYPES {
            let id = fed.admin_multicast(
                admin,
                SiteId(s),
                &format!("instance={itype}"),
                "valid_until",
                AttrValue::str("22:00"),
            );
            cmd_ids.push(id);
        }
    }
    fed.settle();
    let del = delivery_latencies_by_site(&fed, &cmd_ids);

    println!(
        "{:<12} {:>8} {:>26} {:>8} {:>26}",
        "site", "joins", "onSubscribe avg±sd (max)", "delivs", "onDeliver avg±sd (max)"
    );
    for (s, name) in AWS8_SITE_NAMES.iter().enumerate() {
        let sub_stats = stats(&sub[s]);
        let del_stats = stats(&del[s]);
        let fmt = |st: &Option<rbay_bench::Stats>| match st {
            Some(st) => format!("{:.1}±{:.1} ({:.1})", st.mean, st.stddev, st.max),
            None => "-".to_owned(),
        };
        println!(
            "{:<12} {:>8} {:>26} {:>8} {:>26}",
            name,
            sub_stats.as_ref().map(|s| s.n).unwrap_or(0),
            fmt(&sub_stats),
            del_stats.as_ref().map(|s| s.n).unwrap_or(0),
            fmt(&del_stats),
        );
    }
    println!("\n(onSubscribe is intra-site and flat across locales; onDeliver");
    println!(" fluctuates with tree depth and the site's network instability)");
}
