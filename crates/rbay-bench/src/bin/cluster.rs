//! `cluster` — spawns a local RBAY federation as real OS processes and
//! runs one end-to-end query through it.
//!
//! The harness launches `--count` `rbay-node` daemons on loopback TCP,
//! waits for the Pastry overlay to converge, posts `GPU = true` on `k+1`
//! of them (with the password `onGet` guard installed, so AAScript runs
//! in-process too), waits for the aggregation trees to attach, then
//! issues `SELECT k FROM * WHERE GPU = true` from the last daemon and
//! verifies that `k` candidates were found **and committed** on the
//! holders. Exit status 0 only on a fully verified run — CI's
//! `cluster-smoke` job runs exactly this binary.
//!
//! ```text
//! cluster [--count 5] [--k 3] [--base-port 46100] [--num-sites 1]
//! ```

use rbay_bench::cluster::{sock_of, CtrlMsg, DEFAULT_BASE_PORT};
use rbay_wire::{decode_frame, encode_frame, read_frame, write_frame, Hello, MAX_FRAME_LEN};
use rbay_workloads::{password_aa_script, WORKLOAD_PASSWORD};
use simnet::NodeAddr;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command};
use std::time::{Duration, Instant};

struct Args {
    count: u32,
    k: usize,
    base_port: u16,
    num_sites: u16,
}

fn parse_args() -> Args {
    let mut args = Args {
        count: 5,
        k: 3,
        base_port: DEFAULT_BASE_PORT,
        num_sites: 1,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--count" => args.count = flag_value(&argv, i),
            "--k" => args.k = flag_value(&argv, i),
            "--base-port" => args.base_port = flag_value(&argv, i),
            "--num-sites" => args.num_sites = flag_value(&argv, i),
            other => {
                eprintln!(
                    "unknown flag {other}\nusage: cluster [--count <n>] [--k <k>] \
                     [--base-port <p>] [--num-sites <s>]"
                );
                std::process::exit(2);
            }
        }
        i += 2;
    }
    if args.count < 2 || args.k + 1 >= args.count as usize {
        eprintln!("need --count >= 2 and --k + 1 < --count (k holders plus a querier)");
        std::process::exit(2);
    }
    args
}

/// Parses the value after flag `argv[i]`, exiting with usage on errors.
fn flag_value<T: std::str::FromStr>(argv: &[String], i: usize) -> T
where
    T::Err: std::fmt::Display,
{
    argv.get(i + 1)
        .unwrap_or_else(|| {
            eprintln!("missing value for {}", argv[i]);
            std::process::exit(2);
        })
        .parse()
        .unwrap_or_else(|e| {
            eprintln!("bad value for {}: {e}", argv[i]);
            std::process::exit(2);
        })
}

/// The spawned daemons; killed on drop so no run leaks processes.
struct Fleet {
    children: Vec<Child>,
}

impl Drop for Fleet {
    fn drop(&mut self) {
        for c in &mut self.children {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

/// One control connection to a daemon.
struct Ctrl {
    stream: TcpStream,
}

impl Ctrl {
    /// Connects (with retries until `deadline`) and performs the control
    /// hello.
    fn connect(addr: SocketAddr, deadline: Instant) -> io::Result<Ctrl> {
        loop {
            match TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
                Ok(mut stream) => {
                    stream.set_nodelay(true).ok();
                    write_frame(&mut stream, &encode_frame(&Hello::Ctrl))?;
                    return Ok(Ctrl { stream });
                }
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(100));
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn send(&mut self, msg: &CtrlMsg) -> io::Result<()> {
        write_frame(&mut self.stream, &encode_frame(msg))
    }

    /// Reads one control reply, failing after `timeout`.
    fn recv(&mut self, timeout: Duration) -> io::Result<CtrlMsg> {
        self.stream.set_read_timeout(Some(timeout))?;
        let frame = read_frame(&mut self.stream, MAX_FRAME_LEN)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed ctrl"))?;
        decode_frame::<CtrlMsg>(&frame).map_err(io::Error::other)
    }

    fn request(&mut self, msg: &CtrlMsg, timeout: Duration) -> io::Result<CtrlMsg> {
        self.send(msg)?;
        self.recv(timeout)
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("cluster: FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    let args = parse_args();
    let daemon = std::env::current_exe()
        .expect("own path")
        .with_file_name("rbay-node");
    if !daemon.exists() {
        fail(&format!("daemon binary not found at {}", daemon.display()));
    }

    println!(
        "cluster: spawning {} daemons (base port {}, {} site(s))",
        args.count, args.base_port, args.num_sites
    );
    let mut fleet = Fleet {
        children: Vec::new(),
    };
    for i in 0..args.count {
        let child = Command::new(&daemon)
            .args(["--index", &i.to_string()])
            .args(["--count", &args.count.to_string()])
            .args(["--base-port", &args.base_port.to_string()])
            .args(["--num-sites", &args.num_sites.to_string()])
            .spawn()
            .unwrap_or_else(|e| fail(&format!("spawn daemon {i}: {e}")));
        fleet.children.push(child);
    }

    // Control connections to every daemon.
    let deadline = Instant::now() + Duration::from_secs(15);
    let mut ctrls: Vec<Ctrl> = (0..args.count)
        .map(|i| {
            Ctrl::connect(sock_of(args.base_port, NodeAddr(i)), deadline)
                .unwrap_or_else(|e| fail(&format!("ctrl connect to daemon {i}: {e}")))
        })
        .collect();

    // Phase 1: overlay convergence — every daemon joined and aware of the
    // full membership.
    wait_until(Duration::from_secs(60), "overlay convergence", || {
        let mut joined = 0;
        let mut ok = true;
        for (i, ctrl) in ctrls.iter_mut().enumerate() {
            match ctrl.request(&CtrlMsg::Status, Duration::from_secs(5)) {
                Ok(CtrlMsg::StatusReply {
                    joined: j,
                    known_peers,
                    ..
                }) => {
                    if j && known_peers >= args.count - 1 {
                        joined += 1;
                    } else {
                        ok = false;
                    }
                }
                other => fail(&format!("status from daemon {i}: {other:?}")),
            }
        }
        println!("cluster: {} of {} daemons converged", joined, args.count);
        ok
    });

    // Phase 2: k+1 holders post the resource behind the password guard.
    let holders = args.k + 1;
    for (i, ctrl) in ctrls.iter_mut().take(holders).enumerate() {
        match ctrl.request(
            &CtrlMsg::InstallNodeAa {
                src: password_aa_script(),
            },
            Duration::from_secs(5),
        ) {
            Ok(CtrlMsg::Ok) => {}
            other => fail(&format!("install AA on daemon {i}: {other:?}")),
        }
        match ctrl.request(
            &CtrlMsg::Post {
                attr: "GPU".into(),
                value: rbay_query::AttrValue::Bool(true),
            },
            Duration::from_secs(5),
        ) {
            Ok(CtrlMsg::Ok) => {}
            other => fail(&format!("post on daemon {i}: {other:?}")),
        }
    }
    println!("cluster: posted GPU=true on {holders} daemons");

    // Phase 3: every holder attached to its aggregation tree.
    wait_until(Duration::from_secs(60), "tree attachment", || {
        let mut attached = 0;
        for (i, ctrl) in ctrls.iter_mut().take(holders).enumerate() {
            match ctrl.request(&CtrlMsg::Status, Duration::from_secs(5)) {
                Ok(CtrlMsg::StatusReply { attached: a, .. }) if a >= 1 => attached += 1,
                Ok(CtrlMsg::StatusReply { .. }) => {}
                other => fail(&format!("status from daemon {i}: {other:?}")),
            }
        }
        println!("cluster: {attached} of {holders} holders attached to the tree");
        attached == holders
    });

    // Phase 4: the last daemon runs the query; retry while trees settle.
    let zql = format!("SELECT {} FROM * WHERE GPU = true", args.k);
    let querier = args.count as usize - 1;
    let mut outcome = None;
    for attempt in 1..=5 {
        println!("cluster: issuing `{zql}` from daemon {querier} (attempt {attempt})");
        let res = ctrls[querier].request(
            &CtrlMsg::IssueQuery {
                zql: zql.clone(),
                password: Some(WORKLOAD_PASSWORD.into()),
            },
            Duration::from_secs(90),
        );
        match res {
            Ok(CtrlMsg::QueryDone {
                satisfied,
                results,
                unknown_sites,
            }) => {
                if !unknown_sites.is_empty() {
                    fail(&format!("unexpected unknown sites: {unknown_sites:?}"));
                }
                if satisfied && results.len() == args.k {
                    outcome = Some(results);
                    break;
                }
                println!(
                    "cluster: attempt {attempt}: satisfied={satisfied}, {} result(s); retrying",
                    results.len()
                );
            }
            Ok(other) => fail(&format!("query answer: {other:?}")),
            Err(e) => {
                println!("cluster: attempt {attempt}: {e}; reconnecting");
                ctrls[querier] = Ctrl::connect(
                    sock_of(args.base_port, NodeAddr(querier as u32)),
                    Instant::now() + Duration::from_secs(10),
                )
                .unwrap_or_else(|e| fail(&format!("reconnect: {e}")));
            }
        }
        std::thread::sleep(Duration::from_secs(1));
    }
    let results =
        outcome.unwrap_or_else(|| fail(&format!("query never committed {} results", args.k)));
    println!("cluster: query satisfied with {} result(s):", results.len());
    for c in &results {
        println!("  node {:?} at {:?} (site {:?})", c.id, c.addr, c.site);
    }

    // Phase 5: the commits really landed on the chosen daemons.
    let mut committed = 0;
    for c in &results {
        let i = c.addr.0 as usize;
        match ctrls[i].request(&CtrlMsg::Status, Duration::from_secs(5)) {
            Ok(CtrlMsg::StatusReply { committed: n, .. }) if n >= 1 => committed += 1,
            Ok(other) => fail(&format!("daemon {i} shows no commit: {other:?}")),
            Err(e) => fail(&format!("status from daemon {i}: {e}")),
        }
    }
    println!("cluster: {committed} commits verified on the chosen daemons");

    for (i, ctrl) in ctrls.iter_mut().enumerate() {
        if let Err(e) = ctrl.request(&CtrlMsg::Shutdown, Duration::from_secs(5)) {
            eprintln!("cluster: shutdown daemon {i}: {e}");
        }
    }
    drop(fleet);
    println!("cluster: PASS");
}

/// Polls `check` (roughly twice a second) until it returns true, failing
/// the run after `timeout`.
fn wait_until(timeout: Duration, what: &str, mut check: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    loop {
        if check() {
            return;
        }
        if Instant::now() >= deadline {
            fail(&format!("timed out waiting for {what}"));
        }
        std::thread::sleep(Duration::from_millis(500));
    }
}
