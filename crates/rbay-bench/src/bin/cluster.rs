//! `cluster` — spawns a local RBAY federation as real OS processes and
//! runs end-to-end queries through it.
//!
//! The harness launches `--agents` federation members packed
//! `--agents-per-proc` to an `rbay-node` daemon (so
//! `--agents 16000 --agents-per-proc 100` is 160 OS processes on
//! loopback TCP), waits for the Pastry overlay to converge, posts
//! `GPU = true` on `k+1` evenly spaced members (with the password
//! `onGet` guard installed, so AAScript runs in-process too), waits for
//! the aggregation trees to attach, then issues
//! `SELECT k FROM * WHERE GPU = true` from the last member and verifies
//! that `k` candidates were found **and committed** on the holders. A
//! final throughput phase runs `--qps-queries` back-to-back queries
//! (releasing reservations between them) to measure queries/sec.
//!
//! Exit status 0 only on a fully verified run — CI's `cluster-smoke`
//! and `cluster-packed` jobs run exactly this binary. With `--json` the
//! run appends a `{agents, agents_per_proc, converge_ms,
//! queries_per_sec, dropped_frames}` record to `BENCH_wire.json`.
//!
//! ```text
//! cluster [--agents 5] [--agents-per-proc 1] [--k 3] [--base-port 21100]
//!         [--num-sites 1] [--tick-ms <ms>] [--qps-queries 10] [--json]
//! ```

use rbay_bench::cluster::{proc_of, proc_sock, CtrlMsg, DEFAULT_BASE_PORT};
use rbay_bench::{append_json_record, JsonRecord};
use rbay_core::Candidate;
use rbay_wire::{decode_frame, encode_frame, read_frame, write_frame, Hello, MAX_FRAME_LEN};
use rbay_workloads::{password_aa_script, WORKLOAD_PASSWORD};
use simnet::NodeAddr;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Where cluster benchmark rows land (repo root, next to the codec rows).
const WIRE_JSON: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wire.json");

struct Args {
    agents: u32,
    per: u32,
    k: usize,
    base_port: u16,
    num_sites: u16,
    tick_ms: u64,
    qps_queries: u32,
    json: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        agents: 5,
        per: 1,
        k: 3,
        base_port: DEFAULT_BASE_PORT,
        num_sites: 1,
        tick_ms: 0, // 0 = pick by scale below
        qps_queries: 10,
        json: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            // `--count` kept as an alias for unpacked runs.
            "--agents" | "--count" => args.agents = flag_value(&argv, i),
            "--agents-per-proc" => args.per = flag_value(&argv, i),
            "--k" => args.k = flag_value(&argv, i),
            "--base-port" => args.base_port = flag_value(&argv, i),
            "--num-sites" => args.num_sites = flag_value(&argv, i),
            "--tick-ms" => args.tick_ms = flag_value(&argv, i),
            "--qps-queries" => args.qps_queries = flag_value(&argv, i),
            "--json" => {
                args.json = true;
                i += 1;
                continue;
            }
            other => {
                eprintln!(
                    "unknown flag {other}\nusage: cluster [--agents <n>] [--agents-per-proc <m>] \
                     [--k <k>] [--base-port <p>] [--num-sites <s>] [--tick-ms <ms>] \
                     [--qps-queries <q>] [--json]"
                );
                std::process::exit(2);
            }
        }
        i += 2;
    }
    if args.agents < 2 || args.k + 1 >= args.agents as usize {
        eprintln!("need --agents >= 2 and --k + 1 < --agents (k holders plus a querier)");
        std::process::exit(2);
    }
    if args.per == 0 {
        eprintln!("--agents-per-proc must be >= 1");
        std::process::exit(2);
    }
    if args.tick_ms == 0 {
        // Big fleets tick slower: maintenance is O(members) per tick and
        // convergence is gated on join retries, not tick frequency.
        args.tick_ms = if args.agents >= 2000 { 500 } else { 150 };
    }
    args
}

/// Parses the value after flag `argv[i]`, exiting with usage on errors.
fn flag_value<T: std::str::FromStr>(argv: &[String], i: usize) -> T
where
    T::Err: std::fmt::Display,
{
    argv.get(i + 1)
        .unwrap_or_else(|| {
            eprintln!("missing value for {}", argv[i]);
            std::process::exit(2);
        })
        .parse()
        .unwrap_or_else(|e| {
            eprintln!("bad value for {}: {e}", argv[i]);
            std::process::exit(2);
        })
}

/// The spawned daemons. Global so [`fail`] can kill them before
/// `exit(1)` — `std::process::exit` runs no destructors, and a leaked
/// 160-process fleet keeps squatting on the port range.
static FLEET: Mutex<Vec<Child>> = Mutex::new(Vec::new());

/// Kills and reaps every spawned daemon.
fn kill_fleet() {
    if let Ok(mut children) = FLEET.lock() {
        for c in children.iter_mut() {
            let _ = c.kill();
            let _ = c.wait();
        }
        children.clear();
    }
}

/// One control connection to a daemon.
struct Ctrl {
    stream: TcpStream,
}

impl Ctrl {
    /// Connects (with retries until `deadline`) and performs the control
    /// hello.
    fn connect(addr: SocketAddr, deadline: Instant) -> io::Result<Ctrl> {
        loop {
            match TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
                Ok(mut stream) => {
                    stream.set_nodelay(true).ok();
                    write_frame(&mut stream, &encode_frame(&Hello::Ctrl))?;
                    return Ok(Ctrl { stream });
                }
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(100));
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn send(&mut self, msg: &CtrlMsg) -> io::Result<()> {
        write_frame(&mut self.stream, &encode_frame(msg))
    }

    /// Reads one control reply, failing after `timeout`.
    fn recv(&mut self, timeout: Duration) -> io::Result<CtrlMsg> {
        self.stream.set_read_timeout(Some(timeout))?;
        let frame = read_frame(&mut self.stream, MAX_FRAME_LEN)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed ctrl"))?;
        decode_frame::<CtrlMsg>(&frame).map_err(io::Error::other)
    }

    fn request(&mut self, msg: &CtrlMsg, timeout: Duration) -> io::Result<CtrlMsg> {
        self.send(msg)?;
        self.recv(timeout)
    }
}

/// Wraps a request for one specific member in its `To` envelope.
fn to(member: NodeAddr, msg: CtrlMsg) -> CtrlMsg {
    CtrlMsg::To {
        member,
        msg: Box::new(msg),
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("cluster: FAIL: {msg}");
    kill_fleet();
    std::process::exit(1);
}

fn main() {
    let args = parse_args();
    let procs = args.agents.div_ceil(args.per);
    let daemon = std::env::current_exe()
        .expect("own path")
        .with_file_name("rbay-node");
    if !daemon.exists() {
        fail(&format!("daemon binary not found at {}", daemon.display()));
    }

    println!(
        "cluster: spawning {} member(s) across {} process(es) (x{} packed, base port {}, \
         {} site(s), tick {}ms)",
        args.agents, procs, args.per, args.base_port, args.num_sites, args.tick_ms
    );
    let spawn_start = Instant::now();
    for i in 0..procs {
        let child = Command::new(&daemon)
            .args(["--index", &i.to_string()])
            .args(["--agents", &args.agents.to_string()])
            .args(["--agents-per-proc", &args.per.to_string()])
            .args(["--base-port", &args.base_port.to_string()])
            .args(["--num-sites", &args.num_sites.to_string()])
            .args(["--tick-ms", &args.tick_ms.to_string()])
            .spawn()
            .unwrap_or_else(|e| fail(&format!("spawn daemon {i}: {e}")));
        FLEET.lock().unwrap().push(child);
    }

    // Control connections to every daemon. On a loaded single-core host
    // a 160-process fleet takes a while to get everyone listening.
    let deadline = Instant::now() + Duration::from_secs(30 + procs as u64);
    let mut ctrls: Vec<Ctrl> = (0..procs)
        .map(|i| {
            Ctrl::connect(proc_sock(args.base_port, i), deadline)
                .unwrap_or_else(|e| fail(&format!("ctrl connect to daemon {i}: {e}")))
        })
        .collect();

    // Phase 1: overlay convergence — every member joined. Small runs keep
    // the stricter full-membership check (Pastry state is O(log n), so at
    // scale a member legitimately knows only a fraction of its peers).
    let strict_peers = args.agents <= 32;
    let converge_budget = Duration::from_secs(120 + args.agents as u64 / 20);
    wait_until(converge_budget, "overlay convergence", || {
        let mut joined = 0;
        let mut min_peers = u32::MAX;
        let mut dropped = 0u64;
        for (i, ctrl) in ctrls.iter_mut().enumerate() {
            match ctrl.request(&CtrlMsg::ProcStatus, Duration::from_secs(10)) {
                Ok(CtrlMsg::ProcStatusReply {
                    joined: j,
                    min_known_peers,
                    dropped_frames,
                    ..
                }) => {
                    joined += j;
                    min_peers = min_peers.min(min_known_peers);
                    dropped += dropped_frames;
                }
                other => fail(&format!("proc status from daemon {i}: {other:?}")),
            }
        }
        println!(
            "cluster: {} of {} members joined (min known peers {}, {} dropped)",
            joined,
            args.agents,
            if min_peers == u32::MAX { 0 } else { min_peers },
            dropped
        );
        joined == args.agents && (!strict_peers || min_peers >= args.agents - 1)
    });
    let converge_ms = spawn_start.elapsed().as_secs_f64() * 1e3;
    println!("cluster: overlay converged in {converge_ms:.0} ms");

    // Phase 2: k+1 evenly spaced holders post the resource behind the
    // password guard.
    let holders: Vec<NodeAddr> = (0..args.k as u32 + 1)
        .map(|i| NodeAddr(i * args.agents / (args.k as u32 + 1)))
        .collect();
    for &h in &holders {
        let ctrl = &mut ctrls[proc_of(h, args.per) as usize];
        match ctrl.request(
            &to(
                h,
                CtrlMsg::InstallNodeAa {
                    src: password_aa_script(),
                },
            ),
            Duration::from_secs(10),
        ) {
            Ok(CtrlMsg::Ok) => {}
            other => fail(&format!("install AA on member {h:?}: {other:?}")),
        }
        match ctrl.request(
            &to(
                h,
                CtrlMsg::Post {
                    attr: "GPU".into(),
                    value: rbay_query::AttrValue::Bool(true),
                },
            ),
            Duration::from_secs(10),
        ) {
            Ok(CtrlMsg::Ok) => {}
            other => fail(&format!("post on member {h:?}: {other:?}")),
        }
    }
    println!(
        "cluster: posted GPU=true on {} members: {holders:?}",
        holders.len()
    );

    // Phase 3: every holder attached to its aggregation tree.
    wait_until(Duration::from_secs(120), "tree attachment", || {
        let mut attached = 0;
        for &h in &holders {
            let ctrl = &mut ctrls[proc_of(h, args.per) as usize];
            match ctrl.request(&to(h, CtrlMsg::Status), Duration::from_secs(10)) {
                Ok(CtrlMsg::StatusReply { attached: a, .. }) if a >= 1 => attached += 1,
                Ok(CtrlMsg::StatusReply { .. }) => {}
                other => fail(&format!("status from member {h:?}: {other:?}")),
            }
        }
        println!(
            "cluster: {attached} of {} holders attached to the tree",
            holders.len()
        );
        attached == holders.len()
    });

    // Phase 4: the last member runs the query; retry while trees settle.
    let querier = NodeAddr(args.agents - 1);
    let results = run_query(&mut ctrls, &args, querier, 5)
        .unwrap_or_else(|| fail(&format!("query never committed {} results", args.k)));
    println!("cluster: query satisfied with {} result(s):", results.len());
    for c in &results {
        println!("  node {:?} at {:?} (site {:?})", c.id, c.addr, c.site);
    }

    // Phase 5: the commits really landed on the chosen members. The
    // QueryDone reply races the commit messages still in flight to the
    // holders, so poll rather than check once.
    wait_until(Duration::from_secs(30), "commit verification", || {
        let mut committed = 0;
        for c in &results {
            let ctrl = &mut ctrls[proc_of(c.addr, args.per) as usize];
            match ctrl.request(&to(c.addr, CtrlMsg::Status), Duration::from_secs(10)) {
                Ok(CtrlMsg::StatusReply { committed: n, .. }) if n >= 1 => committed += 1,
                Ok(_) => {}
                Err(e) => fail(&format!("status from member {:?}: {e}", c.addr)),
            }
        }
        println!(
            "cluster: {committed} of {} commits verified on the chosen members",
            results.len()
        );
        committed == results.len()
    });
    release_results(&mut ctrls, &args, &results);

    // Phase 6: query throughput — back-to-back queries from the same
    // member, releasing each round's reservations so inventory is not
    // depleted.
    let mut queries_per_sec = 0.0;
    if args.qps_queries > 0 {
        let qps_start = Instant::now();
        let mut satisfied = 0u32;
        for _ in 0..args.qps_queries {
            match run_query(&mut ctrls, &args, querier, 3) {
                Some(results) => {
                    satisfied += 1;
                    release_results(&mut ctrls, &args, &results);
                }
                None => fail("throughput query never satisfied"),
            }
        }
        queries_per_sec = satisfied as f64 / qps_start.elapsed().as_secs_f64();
        println!(
            "cluster: {} queries in {:.2} s -> {:.2} queries/sec",
            satisfied,
            qps_start.elapsed().as_secs_f64(),
            queries_per_sec
        );
    }

    // Final sweep: total frames dropped anywhere in the fleet.
    let mut dropped_frames = 0u64;
    for (i, ctrl) in ctrls.iter_mut().enumerate() {
        match ctrl.request(&CtrlMsg::ProcStatus, Duration::from_secs(10)) {
            Ok(CtrlMsg::ProcStatusReply {
                dropped_frames: d, ..
            }) => dropped_frames += d,
            other => fail(&format!("final proc status from daemon {i}: {other:?}")),
        }
    }
    println!("cluster: {dropped_frames} frame(s) dropped fleet-wide");

    for (i, ctrl) in ctrls.iter_mut().enumerate() {
        if let Err(e) = ctrl.request(&CtrlMsg::Shutdown, Duration::from_secs(5)) {
            eprintln!("cluster: shutdown daemon {i}: {e}");
        }
    }
    kill_fleet();

    if args.json {
        let rec = JsonRecord::new("cluster")
            .int("agents", args.agents as u64)
            .int("agents_per_proc", args.per as u64)
            .num("converge_ms", converge_ms)
            .num("queries_per_sec", queries_per_sec)
            .int("dropped_frames", dropped_frames);
        match append_json_record(WIRE_JSON, &rec) {
            Ok(()) => println!("cluster: appended record to {WIRE_JSON}"),
            Err(e) => eprintln!("cluster: cannot write {WIRE_JSON}: {e}"),
        }
    }
    println!("cluster: PASS");
}

/// Issues `SELECT k FROM * WHERE GPU = true` from `querier` with up to
/// `attempts` retries; returns the committed candidates on success.
fn run_query(
    ctrls: &mut [Ctrl],
    args: &Args,
    querier: NodeAddr,
    attempts: u32,
) -> Option<Vec<Candidate>> {
    let zql = format!("SELECT {} FROM * WHERE GPU = true", args.k);
    let proc = proc_of(querier, args.per) as usize;
    for attempt in 1..=attempts {
        println!("cluster: issuing `{zql}` from member {querier:?} (attempt {attempt})");
        let res = ctrls[proc].request(
            &to(
                querier,
                CtrlMsg::IssueQuery {
                    zql: zql.clone(),
                    password: Some(WORKLOAD_PASSWORD.into()),
                },
            ),
            Duration::from_secs(90),
        );
        match res {
            Ok(CtrlMsg::QueryDone {
                satisfied,
                results,
                unknown_sites,
            }) => {
                if !unknown_sites.is_empty() {
                    fail(&format!("unexpected unknown sites: {unknown_sites:?}"));
                }
                if satisfied && results.len() == args.k {
                    return Some(results);
                }
                println!(
                    "cluster: attempt {attempt}: satisfied={satisfied}, {} result(s); retrying",
                    results.len()
                );
            }
            Ok(other) => fail(&format!("query answer: {other:?}")),
            Err(e) => {
                println!("cluster: attempt {attempt}: {e}; reconnecting");
                ctrls[proc] = Ctrl::connect(
                    proc_sock(args.base_port, proc as u32),
                    Instant::now() + Duration::from_secs(10),
                )
                .unwrap_or_else(|e| fail(&format!("reconnect: {e}")));
            }
        }
        std::thread::sleep(Duration::from_secs(1));
    }
    None
}

/// Clears the reservation each committed candidate holds, so the next
/// query finds free inventory again.
fn release_results(ctrls: &mut [Ctrl], args: &Args, results: &[Candidate]) {
    for c in results {
        let ctrl = &mut ctrls[proc_of(c.addr, args.per) as usize];
        match ctrl.request(&to(c.addr, CtrlMsg::Release), Duration::from_secs(10)) {
            Ok(CtrlMsg::Ok) => {}
            other => fail(&format!("release on member {:?}: {other:?}", c.addr)),
        }
    }
}

/// Polls `check` (roughly twice a second) until it returns true, failing
/// the run after `timeout`.
fn wait_until(timeout: Duration, what: &str, mut check: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    loop {
        if check() {
            return;
        }
        if Instant::now() >= deadline {
            fail(&format!("timed out waiting for {what}"));
        }
        std::thread::sleep(Duration::from_millis(500));
    }
}
