//! `cluster` — spawns a local RBAY federation as real OS processes and
//! runs end-to-end queries through it.
//!
//! The harness launches `--agents` federation members packed
//! `--agents-per-proc` to an `rbay-node` daemon (so
//! `--agents 16000 --agents-per-proc 100` is 160 OS processes on
//! loopback TCP), waits for the Pastry overlay to converge, posts
//! `GPU = true` on evenly spaced members (~1% of the fleet, floor `k+1`,
//! with the password `onGet` guard installed, so AAScript runs
//! in-process too), waits for
//! the aggregation trees to attach, then issues
//! `SELECT k FROM * WHERE GPU = true` from the last member and verifies
//! that `k` candidates were found **and committed** on the holders. A
//! final throughput phase runs `--qps-queries` back-to-back queries
//! (releasing reservations between them) to measure queries/sec.
//!
//! Exit status 0 only on a fully verified run — CI's `cluster-smoke`
//! and `cluster-packed` jobs run exactly this binary. With `--json` the
//! run appends a `{agents, agents_per_proc, converge_ms,
//! queries_per_sec, dropped_frames}` record to `BENCH_wire.json`.
//!
//! With `--rolling-restart` the harness then restarts every daemon once,
//! one process at a time, while closed-loop queries keep running: the
//! daemons journal to `--data-dir` (a fresh temp directory by default)
//! and the run fails if any committed query is lost across a restart or
//! the restart-window success rate drops below 0.95. With `--json` the
//! restart phase appends a `{committed_query_loss, success_rate,
//! restart_window_p99_ms, replay_records, ...}` record to
//! `BENCH_restart.json`.
//!
//! ```text
//! cluster [--agents 5] [--agents-per-proc 1] [--k 3] [--base-port 21100]
//!         [--num-sites 1] [--tick-ms <ms>] [--qps-queries 10]
//!         [--rolling-restart] [--restart-queries 3] [--data-dir <dir>] [--json]
//! ```

use rbay_bench::cluster::{proc_of, proc_sock, site_of, CtrlMsg, DEFAULT_BASE_PORT};
use rbay_bench::{append_json_record, JsonRecord};
use rbay_core::{Candidate, FrontdoorStats};
use rbay_store::StoreStats;
use rbay_wire::DropStats;
use rbay_wire::{decode_frame, encode_frame, read_frame, write_frame, Hello, MAX_FRAME_LEN};
use rbay_workloads::{password_aa_script, WORKLOAD_PASSWORD};
use simnet::NodeAddr;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Where cluster benchmark rows land (repo root, next to the codec rows).
const WIRE_JSON: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wire.json");
/// Where rolling-restart rows land.
const RESTART_JSON: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_restart.json");

struct Args {
    agents: u32,
    per: u32,
    k: usize,
    base_port: u16,
    num_sites: u16,
    tick_ms: u64,
    qps_queries: u32,
    json: bool,
    frontdoor: bool,
    fd_max_pending: u32,
    rolling_restart: bool,
    restart_queries: u32,
    data_dir: Option<std::path::PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        agents: 5,
        per: 1,
        k: 3,
        base_port: DEFAULT_BASE_PORT,
        num_sites: 1,
        tick_ms: 0, // 0 = pick by scale below
        qps_queries: 10,
        json: false,
        frontdoor: false,
        fd_max_pending: 2,
        rolling_restart: false,
        restart_queries: 3,
        data_dir: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            // `--count` kept as an alias for unpacked runs.
            "--agents" | "--count" => args.agents = flag_value(&argv, i),
            "--agents-per-proc" => args.per = flag_value(&argv, i),
            "--k" => args.k = flag_value(&argv, i),
            "--base-port" => args.base_port = flag_value(&argv, i),
            "--num-sites" => args.num_sites = flag_value(&argv, i),
            "--tick-ms" => args.tick_ms = flag_value(&argv, i),
            "--qps-queries" => args.qps_queries = flag_value(&argv, i),
            "--fd-max-pending" => args.fd_max_pending = flag_value(&argv, i),
            "--restart-queries" => args.restart_queries = flag_value(&argv, i),
            "--data-dir" => {
                args.data_dir = Some(std::path::PathBuf::from(flag_value::<String>(&argv, i)))
            }
            "--json" => {
                args.json = true;
                i += 1;
                continue;
            }
            "--frontdoor" => {
                args.frontdoor = true;
                i += 1;
                continue;
            }
            "--rolling-restart" => {
                args.rolling_restart = true;
                i += 1;
                continue;
            }
            other => {
                eprintln!(
                    "unknown flag {other}\nusage: cluster [--agents <n>] [--agents-per-proc <m>] \
                     [--k <k>] [--base-port <p>] [--num-sites <s>] [--tick-ms <ms>] \
                     [--qps-queries <q>] [--frontdoor] [--fd-max-pending <n>] \
                     [--rolling-restart] [--restart-queries <q>] [--data-dir <dir>] [--json]"
                );
                std::process::exit(2);
            }
        }
        i += 2;
    }
    if args.agents < 2 || args.k + 1 >= args.agents as usize {
        eprintln!("need --agents >= 2 and --k + 1 < --agents (k holders plus a querier)");
        std::process::exit(2);
    }
    if args.per == 0 {
        eprintln!("--agents-per-proc must be >= 1");
        std::process::exit(2);
    }
    if args.tick_ms == 0 {
        // Big fleets tick slower: maintenance is O(members) per tick and
        // convergence is gated on join retries, not tick frequency.
        args.tick_ms = if args.agents >= 2000 { 500 } else { 150 };
    }
    if args.rolling_restart {
        if args.agents.div_ceil(args.per) < 2 {
            eprintln!("--rolling-restart needs at least 2 daemon processes");
            std::process::exit(2);
        }
        // Zero-loss restarts require durable members; default to a fresh
        // per-run directory when the operator did not name one.
        if args.data_dir.is_none() {
            args.data_dir =
                Some(std::env::temp_dir().join(format!("rbay-cluster-{}", std::process::id())));
        }
    }
    if let Some(dir) = &args.data_dir {
        let _ = std::fs::remove_dir_all(dir);
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create --data-dir {}: {e}", dir.display());
            std::process::exit(2);
        }
    }
    args
}

/// Parses the value after flag `argv[i]`, exiting with usage on errors.
fn flag_value<T: std::str::FromStr>(argv: &[String], i: usize) -> T
where
    T::Err: std::fmt::Display,
{
    argv.get(i + 1)
        .unwrap_or_else(|| {
            eprintln!("missing value for {}", argv[i]);
            std::process::exit(2);
        })
        .parse()
        .unwrap_or_else(|e| {
            eprintln!("bad value for {}: {e}", argv[i]);
            std::process::exit(2);
        })
}

/// The spawned daemons. Global so [`fail`] can kill them before
/// `exit(1)` — `std::process::exit` runs no destructors, and a leaked
/// 160-process fleet keeps squatting on the port range.
static FLEET: Mutex<Vec<Child>> = Mutex::new(Vec::new());

/// Kills and reaps every spawned daemon.
fn kill_fleet() {
    if let Ok(mut children) = FLEET.lock() {
        for c in children.iter_mut() {
            let _ = c.kill();
            let _ = c.wait();
        }
        children.clear();
    }
}

/// One control connection to a daemon.
struct Ctrl {
    stream: TcpStream,
}

impl Ctrl {
    /// Connects (with retries until `deadline`) and performs the control
    /// hello.
    fn connect(addr: SocketAddr, deadline: Instant) -> io::Result<Ctrl> {
        loop {
            match TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
                Ok(mut stream) => {
                    stream.set_nodelay(true).ok();
                    write_frame(&mut stream, &encode_frame(&Hello::Ctrl))?;
                    return Ok(Ctrl { stream });
                }
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(100));
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn send(&mut self, msg: &CtrlMsg) -> io::Result<()> {
        write_frame(&mut self.stream, &encode_frame(msg))
    }

    /// Reads one control reply, failing after `timeout`.
    fn recv(&mut self, timeout: Duration) -> io::Result<CtrlMsg> {
        self.stream.set_read_timeout(Some(timeout))?;
        let frame = read_frame(&mut self.stream, MAX_FRAME_LEN)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed ctrl"))?;
        decode_frame::<CtrlMsg>(&frame).map_err(io::Error::other)
    }

    fn request(&mut self, msg: &CtrlMsg, timeout: Duration) -> io::Result<CtrlMsg> {
        self.send(msg)?;
        self.recv(timeout)
    }
}

/// Wraps a request for one specific member in its `To` envelope.
fn to(member: NodeAddr, msg: CtrlMsg) -> CtrlMsg {
    CtrlMsg::To {
        member,
        msg: Box::new(msg),
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("cluster: FAIL: {msg}");
    kill_fleet();
    std::process::exit(1);
}

/// Launches daemon process `i` with the run's flags. Used for the
/// initial fleet and again by the rolling-restart phase, so a respawned
/// daemon comes back with exactly the configuration (and `--data-dir`)
/// it died with.
fn spawn_daemon(daemon: &std::path::Path, args: &Args, i: u32) -> Child {
    let mut cmd = Command::new(daemon);
    cmd.args(["--index", &i.to_string()])
        .args(["--agents", &args.agents.to_string()])
        .args(["--agents-per-proc", &args.per.to_string()])
        .args(["--base-port", &args.base_port.to_string()])
        .args(["--num-sites", &args.num_sites.to_string()])
        .args(["--tick-ms", &args.tick_ms.to_string()]);
    if args.frontdoor {
        cmd.arg("--frontdoor");
    }
    if let Some(dir) = &args.data_dir {
        cmd.arg("--data-dir").arg(dir);
        // Benchmark runs journal without per-append fsync: process kills
        // (the durability model here) never lose page-cache writes.
        cmd.args(["--fsync", "never"]);
    }
    cmd.spawn()
        .unwrap_or_else(|e| fail(&format!("spawn daemon {i}: {e}")))
}

fn main() {
    let args = parse_args();
    let procs = args.agents.div_ceil(args.per);
    let daemon = std::env::current_exe()
        .expect("own path")
        .with_file_name("rbay-node");
    if !daemon.exists() {
        fail(&format!("daemon binary not found at {}", daemon.display()));
    }

    println!(
        "cluster: spawning {} member(s) across {} process(es) (x{} packed, base port {}, \
         {} site(s), tick {}ms)",
        args.agents, procs, args.per, args.base_port, args.num_sites, args.tick_ms
    );
    let spawn_start = Instant::now();
    for i in 0..procs {
        let child = spawn_daemon(&daemon, &args, i);
        FLEET.lock().unwrap().push(child);
    }

    // Control connections to every daemon. On a loaded single-core host
    // a 160-process fleet takes a while to get everyone listening.
    let deadline = Instant::now() + Duration::from_secs(30 + procs as u64);
    let mut ctrls: Vec<Ctrl> = (0..procs)
        .map(|i| {
            Ctrl::connect(proc_sock(args.base_port, i), deadline)
                .unwrap_or_else(|e| fail(&format!("ctrl connect to daemon {i}: {e}")))
        })
        .collect();

    // Phase 1: overlay convergence — every member joined. Small runs keep
    // the stricter full-membership check (Pastry state is O(log n), so at
    // scale a member legitimately knows only a fraction of its peers).
    let strict_peers = args.agents <= 32;
    let converge_budget = Duration::from_secs(120 + args.agents as u64 / 20);
    wait_until(converge_budget, "overlay convergence", || {
        let mut joined = 0;
        let mut min_peers = u32::MAX;
        let mut dropped = 0u64;
        for (i, ctrl) in ctrls.iter_mut().enumerate() {
            match ctrl.request(&CtrlMsg::ProcStatus, Duration::from_secs(10)) {
                Ok(CtrlMsg::ProcStatusReply {
                    joined: j,
                    min_known_peers,
                    dropped_frames,
                    ..
                }) => {
                    joined += j;
                    min_peers = min_peers.min(min_known_peers);
                    dropped += dropped_frames;
                }
                other => fail(&format!("proc status from daemon {i}: {other:?}")),
            }
        }
        println!(
            "cluster: {} of {} members joined (min known peers {}, {} dropped)",
            joined,
            args.agents,
            if min_peers == u32::MAX { 0 } else { min_peers },
            dropped
        );
        joined == args.agents && (!strict_peers || min_peers >= args.agents - 1)
    });
    let converge_ms = spawn_start.elapsed().as_secs_f64() * 1e3;
    println!("cluster: overlay converged in {converge_ms:.0} ms");

    // Front door: enable the cache on every gateway (each site's three
    // lowest members — the layout build_node computes on every daemon).
    let mut gateways: Vec<NodeAddr> = Vec::new();
    if args.frontdoor {
        let mut per_site = vec![0u32; args.num_sites as usize];
        for i in 0..args.agents {
            let s = site_of(i, args.agents, args.num_sites).0 as usize;
            if per_site[s] < 3 {
                per_site[s] += 1;
                gateways.push(NodeAddr(i));
            }
        }
        for &g in &gateways {
            let ctrl = &mut ctrls[proc_of(g, args.per) as usize];
            match ctrl.request(
                &to(
                    g,
                    CtrlMsg::EnableFrontdoor {
                        ttl_ms: 600_000,
                        capacity: 1024,
                        max_pending: args.fd_max_pending,
                    },
                ),
                Duration::from_secs(10),
            ) {
                Ok(CtrlMsg::Ok) => {}
                other => fail(&format!("enable frontdoor on {g:?}: {other:?}")),
            }
        }
        println!(
            "cluster: front door enabled on {} gateway(s): {gateways:?}",
            gateways.len()
        );
    }

    // Phase 2: evenly spaced holders post the resource behind the
    // password guard. Inventory scales with the fleet (~1% of members,
    // floor k+1) so queries never hinge on a handful of tree paths — at
    // rolling-restart scale a single downed process must not take every
    // holder's subtree with it.
    let holder_count = (args.k as u32 + 1).max(args.agents / 100);
    let holders: Vec<NodeAddr> = (0..holder_count)
        .map(|i| NodeAddr(i * args.agents / holder_count))
        .collect();
    for &h in &holders {
        let ctrl = &mut ctrls[proc_of(h, args.per) as usize];
        match ctrl.request(
            &to(
                h,
                CtrlMsg::InstallNodeAa {
                    src: password_aa_script(),
                },
            ),
            Duration::from_secs(10),
        ) {
            Ok(CtrlMsg::Ok) => {}
            other => fail(&format!("install AA on member {h:?}: {other:?}")),
        }
        match ctrl.request(
            &to(
                h,
                CtrlMsg::Post {
                    attr: "GPU".into(),
                    value: rbay_query::AttrValue::Bool(true),
                },
            ),
            Duration::from_secs(10),
        ) {
            Ok(CtrlMsg::Ok) => {}
            other => fail(&format!("post on member {h:?}: {other:?}")),
        }
    }
    println!(
        "cluster: posted GPU=true on {} members: {holders:?}",
        holders.len()
    );

    // Phase 3: every holder attached to its aggregation tree.
    wait_until(Duration::from_secs(120), "tree attachment", || {
        let mut attached = 0;
        for &h in &holders {
            let ctrl = &mut ctrls[proc_of(h, args.per) as usize];
            match ctrl.request(&to(h, CtrlMsg::Status), Duration::from_secs(10)) {
                Ok(CtrlMsg::StatusReply { attached: a, .. }) if a >= 1 => attached += 1,
                Ok(CtrlMsg::StatusReply { .. }) => {}
                other => fail(&format!("status from member {h:?}: {other:?}")),
            }
        }
        println!(
            "cluster: {attached} of {} holders attached to the tree",
            holders.len()
        );
        attached == holders.len()
    });

    // Phase 4: the last member runs the query; retry while trees settle.
    let querier = NodeAddr(args.agents - 1);
    let results = run_query(&mut ctrls, &args, querier, 5)
        .unwrap_or_else(|| fail(&format!("query never committed {} results", args.k)));
    println!("cluster: query satisfied with {} result(s):", results.len());
    for c in &results {
        println!("  node {:?} at {:?} (site {:?})", c.id, c.addr, c.site);
    }

    // Phase 5: the commits really landed on the chosen members. The
    // QueryDone reply races the commit messages still in flight to the
    // holders, so poll rather than check once.
    wait_until(Duration::from_secs(30), "commit verification", || {
        let mut committed = 0;
        for c in &results {
            let ctrl = &mut ctrls[proc_of(c.addr, args.per) as usize];
            match ctrl.request(&to(c.addr, CtrlMsg::Status), Duration::from_secs(10)) {
                Ok(CtrlMsg::StatusReply { committed: n, .. }) if n >= 1 => committed += 1,
                Ok(_) => {}
                Err(e) => fail(&format!("status from member {:?}: {e}", c.addr)),
            }
        }
        println!(
            "cluster: {committed} of {} commits verified on the chosen members",
            results.len()
        );
        committed == results.len()
    });
    release_results(&mut ctrls, &args, &results);

    // Phase 6: query throughput — back-to-back queries from the same
    // member, releasing each round's reservations so inventory is not
    // depleted.
    let mut queries_per_sec = 0.0;
    if args.qps_queries > 0 {
        let qps_start = Instant::now();
        let mut satisfied = 0u32;
        for _ in 0..args.qps_queries {
            match run_query(&mut ctrls, &args, querier, 3) {
                Some(results) => {
                    satisfied += 1;
                    release_results(&mut ctrls, &args, &results);
                }
                None => fail("throughput query never satisfied"),
            }
        }
        queries_per_sec = satisfied as f64 / qps_start.elapsed().as_secs_f64();
        println!(
            "cluster: {} queries in {:.2} s -> {:.2} queries/sec",
            satisfied,
            qps_start.elapsed().as_secs_f64(),
            queries_per_sec
        );
    }

    // Phase 7 (with --frontdoor): cache hits under repetition, zero stale
    // reads after the invalidation multicast, and shedding under a burst.
    let mut stale_reads = 0u64;
    if args.frontdoor {
        // A gateway that holds no inventory, so its queries walk the tree.
        let gateway = gateways
            .iter()
            .copied()
            .find(|g| !holders.contains(g))
            .unwrap_or(gateways[0]);

        // 7a: the same query repeated through the gateway front door. The
        // first walk fills the cache; repeats must produce hits.
        let warm = run_query(&mut ctrls, &args, gateway, 5)
            .unwrap_or_else(|| fail("frontdoor warmup query never satisfied"));
        release_results(&mut ctrls, &args, &warm);
        for _ in 0..8 {
            let cached = run_query(&mut ctrls, &args, gateway, 3)
                .unwrap_or_else(|| fail("repeat query through the front door"));
            release_results(&mut ctrls, &args, &cached);
        }
        let (fd, _, _) = fleet_stats(&mut ctrls);
        println!(
            "cluster: front door warm: {} hit(s), {} miss(es), {} coalesced",
            fd.hits, fd.misses, fd.coalesced
        );
        if fd.hits == 0 {
            fail("no cache hits after repeating an identical query");
        }

        // 7b: flip one holder's attribute; the invalidation multicast must
        // purge the cached entry and the next query must re-walk.
        let flipped = holders[0];
        let misses_before = fd.misses;
        let ctrl = &mut ctrls[proc_of(flipped, args.per) as usize];
        match ctrl.request(
            &to(
                flipped,
                CtrlMsg::Post {
                    attr: "GPU".into(),
                    value: rbay_query::AttrValue::Bool(false),
                },
            ),
            Duration::from_secs(10),
        ) {
            Ok(CtrlMsg::Ok) => {}
            other => fail(&format!("flip GPU on {flipped:?}: {other:?}")),
        }
        wait_until(Duration::from_secs(60), "invalidation multicast", || {
            let (fd, _, _) = fleet_stats(&mut ctrls);
            println!("cluster: {} invalidation(s) observed", fd.invalidations);
            fd.invalidations > 0
        });
        let fresh = run_query(&mut ctrls, &args, gateway, 5)
            .unwrap_or_else(|| fail("post-invalidation query never satisfied"));
        if fresh.iter().any(|c| c.addr == flipped) {
            stale_reads += 1;
        }
        let (fd, _, _) = fleet_stats(&mut ctrls);
        if fd.misses <= misses_before {
            stale_reads += 1; // served from cache instead of re-walking
        }
        release_results(&mut ctrls, &args, &fresh);
        if stale_reads > 0 {
            fail("stale result served after invalidation");
        }
        println!("cluster: zero stale reads after invalidation (fresh walk excluded {flipped:?})");

        // 7c: a burst of distinct queries beyond the admission bound must
        // shed with retry-after rather than queue without limit.
        let burst = args.fd_max_pending + 6;
        let mut shed = 0u64;
        'rounds: for round in 0..3 {
            let ctrl = &mut ctrls[proc_of(gateway, args.per) as usize];
            for i in 0..burst {
                let zql = format!("SELECT 1 FROM * WHERE fdshed_r{round}_q{i} = true");
                ctrl.send(&to(
                    gateway,
                    CtrlMsg::IssueQuery {
                        zql,
                        password: None,
                    },
                ))
                .unwrap_or_else(|e| fail(&format!("burst send: {e}")));
            }
            for _ in 0..burst {
                match ctrl.recv(Duration::from_secs(90)) {
                    Ok(CtrlMsg::QueryShed { .. }) => shed += 1,
                    Ok(CtrlMsg::QueryDone { .. }) => {}
                    Ok(other) => fail(&format!("burst reply: {other:?}")),
                    Err(e) => fail(&format!("burst reply: {e}")),
                }
            }
            println!("cluster: burst round {round}: {shed} shed so far");
            if shed > 0 {
                break 'rounds;
            }
        }
        if shed == 0 {
            fail("admission control never shed under a query burst");
        }
    }

    // Phase 8 (with --rolling-restart): restart every daemon once, one at
    // a time, under closed-loop query load. Two gates: no query commit
    // observed durable before a restart may vanish after it
    // (committed_query_loss == 0), and the query plane must keep
    // answering through the restart windows (success rate >= 0.95).
    let mut restart_window_p99_ms = 0.0;
    let mut restart_success_rate = 1.0;
    let mut committed_query_loss = 0u64;
    let mut restart_issued = 0u32;
    let mut restart_satisfied = 0u32;
    if args.rolling_restart {
        let base = proc_committed(&mut ctrls);
        let mut add = vec![0u64; procs as usize];
        let mut lat_ms: Vec<f64> = Vec::new();
        for p in 0..procs {
            println!("cluster: rolling restart: daemon {p}");
            match ctrls[p as usize].request(&CtrlMsg::Shutdown, Duration::from_secs(10)) {
                Ok(CtrlMsg::Ok) => {}
                other => println!("cluster: graceful shutdown of daemon {p}: {other:?}"),
            }
            // Reap the old process (bounded: a daemon that ignores the
            // graceful path gets killed — the WAL must cover that too).
            let reap_deadline = Instant::now() + Duration::from_secs(10);
            loop {
                let mut fleet = FLEET.lock().unwrap();
                match fleet[p as usize].try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < reap_deadline => {
                        drop(fleet);
                        std::thread::sleep(Duration::from_millis(50));
                    }
                    _ => {
                        let _ = fleet[p as usize].kill();
                        let _ = fleet[p as usize].wait();
                        break;
                    }
                }
            }
            FLEET.lock().unwrap()[p as usize] = spawn_daemon(&daemon, &args, p);
            ctrls[p as usize] = Ctrl::connect(
                proc_sock(args.base_port, p),
                Instant::now() + Duration::from_secs(30),
            )
            .unwrap_or_else(|e| fail(&format!("reconnect daemon {p}: {e}")));

            // Closed-loop load through the restart window, issued from a
            // member hosted elsewhere so the querier itself is up.
            let window_querier = if proc_of(querier, args.per) == p {
                NodeAddr(0)
            } else {
                querier
            };
            // Closed-loop clients keep retrying through the repair; the
            // attempt budget (~30 s) covers failure detection plus tree
            // re-convergence after 1/procs of the fleet departs at once,
            // and the recorded latency charges the full wait to p99.
            for _ in 0..args.restart_queries {
                restart_issued += 1;
                let t0 = Instant::now();
                match run_query(&mut ctrls, &args, window_querier, 10) {
                    Some(rs) => {
                        restart_satisfied += 1;
                        lat_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                        for c in &rs {
                            add[proc_of(c.addr, args.per) as usize] += 1;
                        }
                        // The QueryDone ack races the commit messages
                        // still in flight; wait for the ledger to land
                        // before holding the fleet to it.
                        wait_until(Duration::from_secs(30), "restart-phase commits", || {
                            let actual = proc_committed(&mut ctrls);
                            (0..procs as usize).all(|i| actual[i] >= base[i] + add[i])
                        });
                        release_results(&mut ctrls, &args, &rs);
                    }
                    None => {
                        lat_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                        println!("cluster: restart-window query unsatisfied after retries");
                    }
                }
            }
            // Full strength before taking the next daemon down.
            wait_until(converge_budget, "post-restart re-convergence", || {
                let mut joined = 0;
                for (i, ctrl) in ctrls.iter_mut().enumerate() {
                    match ctrl.request(&CtrlMsg::ProcStatus, Duration::from_secs(10)) {
                        Ok(CtrlMsg::ProcStatusReply { joined: j, .. }) => joined += j,
                        other => fail(&format!("proc status from daemon {i}: {other:?}")),
                    }
                }
                println!("cluster: {} of {} members re-joined", joined, args.agents);
                joined == args.agents
            });
        }
        let actual = proc_committed(&mut ctrls);
        committed_query_loss = (0..procs as usize)
            .map(|i| (base[i] + add[i]).saturating_sub(actual[i]))
            .sum();
        restart_success_rate = f64::from(restart_satisfied) / f64::from(restart_issued.max(1));
        lat_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        if !lat_ms.is_empty() {
            let idx = ((lat_ms.len() as f64 * 0.99).ceil() as usize).clamp(1, lat_ms.len()) - 1;
            restart_window_p99_ms = lat_ms[idx];
        }
        println!(
            "cluster: rolling restart: {} restart(s), {} of {} window queries satisfied, \
             committed-query loss {}, window p99 {:.0} ms",
            procs, restart_satisfied, restart_issued, committed_query_loss, restart_window_p99_ms
        );
        if committed_query_loss > 0 {
            fail(&format!(
                "{committed_query_loss} committed quer(ies) lost across rolling restarts"
            ));
        }
        if restart_success_rate < 0.95 {
            fail(&format!(
                "restart-window success rate {restart_success_rate:.2} below 0.95"
            ));
        }
    }

    // Final sweep: frames dropped anywhere in the fleet, by cause, plus
    // fleet-wide front-door and durable-store counters.
    let (fd, drops, store) = fleet_stats(&mut ctrls);
    let dropped_frames = drops.total();
    println!(
        "cluster: {dropped_frames} frame(s) dropped fleet-wide \
         (staging full {}, write cap {}, connect exhausted {}, conn closed {}, unresolvable {})",
        drops.outbound_full,
        drops.write_cap,
        drops.connect_exhausted,
        drops.conn_closed,
        drops.unresolvable
    );
    if args.frontdoor {
        println!(
            "cluster: front door totals: {} hit(s), {} miss(es), {} coalesced, {} shed, \
             {} invalidation(s), {} stale read(s)",
            fd.hits, fd.misses, fd.coalesced, fd.shed, fd.invalidations, stale_reads
        );
    }
    if args.data_dir.is_some() {
        println!(
            "cluster: durable store totals: {} append(s), {} dedup skip(s), {} snapshot(s), \
             {} record(s) replayed in {} us, {} re-lint reject(s)",
            store.appends,
            store.dedup_skips,
            store.snapshots,
            store.replay_records,
            store.replay_micros,
            store.relint_rejects
        );
    }
    let run_s = spawn_start.elapsed().as_secs_f64();

    for (i, ctrl) in ctrls.iter_mut().enumerate() {
        if let Err(e) = ctrl.request(&CtrlMsg::Shutdown, Duration::from_secs(5)) {
            eprintln!("cluster: shutdown daemon {i}: {e}");
        }
    }
    kill_fleet();

    if args.json {
        let mut rec = JsonRecord::new("cluster")
            .int("agents", args.agents as u64)
            .int("agents_per_proc", args.per as u64)
            .int("num_sites", args.num_sites as u64)
            .int("k", args.k as u64)
            .int("tick_ms", args.tick_ms)
            .int("qps_queries", args.qps_queries as u64)
            .text("query_mix", "SELECT k FROM * WHERE GPU = true")
            .int("warmup_queries", 1)
            .num("run_s", run_s)
            .num("converge_ms", converge_ms)
            .num("queries_per_sec", queries_per_sec)
            .int("dropped_frames", dropped_frames)
            .int("drop_outbound_full", drops.outbound_full)
            .int("drop_write_cap", drops.write_cap)
            .int("drop_connect_exhausted", drops.connect_exhausted)
            .int("drop_conn_closed", drops.conn_closed)
            .int("drop_unresolvable", drops.unresolvable)
            .int("frontdoor", args.frontdoor as u64);
        if args.frontdoor {
            rec = rec
                .int("fd_hits", fd.hits)
                .int("fd_misses", fd.misses)
                .int("fd_coalesced", fd.coalesced)
                .int("fd_shed", fd.shed)
                .int("fd_invalidations", fd.invalidations)
                .int("stale_reads", stale_reads);
        }
        match append_json_record(WIRE_JSON, &rec) {
            Ok(()) => println!("cluster: appended record to {WIRE_JSON}"),
            Err(e) => eprintln!("cluster: cannot write {WIRE_JSON}: {e}"),
        }
    }
    if args.json && args.rolling_restart {
        let rec = JsonRecord::new("rolling_restart")
            .int("agents", args.agents as u64)
            .int("agents_per_proc", args.per as u64)
            .int("procs", procs as u64)
            .int("restarts", procs as u64)
            .int("window_queries", restart_issued as u64)
            .int("window_satisfied", restart_satisfied as u64)
            .num("success_rate", restart_success_rate)
            .int("committed_query_loss", committed_query_loss)
            .num("restart_window_p99_ms", restart_window_p99_ms)
            .int("replay_records", store.replay_records)
            .int("replay_micros", store.replay_micros)
            .int("wal_appends", store.appends)
            .int("snapshots", store.snapshots)
            .int("relint_rejects", store.relint_rejects);
        match append_json_record(RESTART_JSON, &rec) {
            Ok(()) => println!("cluster: appended record to {RESTART_JSON}"),
            Err(e) => eprintln!("cluster: cannot write {RESTART_JSON}: {e}"),
        }
    }
    println!("cluster: PASS");
}

/// Issues `SELECT k FROM * WHERE GPU = true` from `querier` with up to
/// `attempts` retries; returns the committed candidates on success.
fn run_query(
    ctrls: &mut [Ctrl],
    args: &Args,
    querier: NodeAddr,
    attempts: u32,
) -> Option<Vec<Candidate>> {
    let zql = format!("SELECT {} FROM * WHERE GPU = true", args.k);
    let proc = proc_of(querier, args.per) as usize;
    for attempt in 1..=attempts {
        println!("cluster: issuing `{zql}` from member {querier:?} (attempt {attempt})");
        let res = ctrls[proc].request(
            &to(
                querier,
                CtrlMsg::IssueQuery {
                    zql: zql.clone(),
                    password: Some(WORKLOAD_PASSWORD.into()),
                },
            ),
            Duration::from_secs(90),
        );
        match res {
            Ok(CtrlMsg::QueryDone {
                satisfied,
                results,
                unknown_sites,
            }) => {
                if !unknown_sites.is_empty() {
                    fail(&format!("unexpected unknown sites: {unknown_sites:?}"));
                }
                if satisfied && results.len() == args.k {
                    return Some(results);
                }
                println!(
                    "cluster: attempt {attempt}: satisfied={satisfied}, {} result(s); retrying",
                    results.len()
                );
            }
            Ok(other) => fail(&format!("query answer: {other:?}")),
            Err(e) => {
                println!("cluster: attempt {attempt}: {e}; reconnecting");
                ctrls[proc] = Ctrl::connect(
                    proc_sock(args.base_port, proc as u32),
                    Instant::now() + Duration::from_secs(10),
                )
                .unwrap_or_else(|e| fail(&format!("reconnect: {e}")));
            }
        }
        std::thread::sleep(Duration::from_secs(1));
    }
    None
}

/// One `ProcStatus` sweep over every daemon, aggregating front-door,
/// per-cause drop, and durable-store counters fleet-wide.
fn fleet_stats(ctrls: &mut [Ctrl]) -> (FrontdoorStats, DropStats, StoreStats) {
    let mut fd = FrontdoorStats::default();
    let mut drops = DropStats::default();
    let mut store = StoreStats::default();
    for (i, ctrl) in ctrls.iter_mut().enumerate() {
        match ctrl.request(&CtrlMsg::ProcStatus, Duration::from_secs(10)) {
            Ok(CtrlMsg::ProcStatusReply {
                drops: d,
                frontdoor: f,
                store: s,
                ..
            }) => {
                drops.merge(&d);
                fd.merge(&f);
                store.merge(&s);
            }
            other => fail(&format!("proc status from daemon {i}: {other:?}")),
        }
    }
    (fd, drops, store)
}

/// Reads every daemon's process-level committed-query counter (the
/// rolling-restart phase's durability ledger).
fn proc_committed(ctrls: &mut [Ctrl]) -> Vec<u64> {
    let mut out = Vec::with_capacity(ctrls.len());
    for (i, ctrl) in ctrls.iter_mut().enumerate() {
        match ctrl.request(&CtrlMsg::ProcStatus, Duration::from_secs(10)) {
            Ok(CtrlMsg::ProcStatusReply { committed, .. }) => out.push(committed as u64),
            other => fail(&format!("proc status from daemon {i}: {other:?}")),
        }
    }
    out
}

/// Clears the reservation each committed candidate holds, so the next
/// query finds free inventory again.
fn release_results(ctrls: &mut [Ctrl], args: &Args, results: &[Candidate]) {
    for c in results {
        let ctrl = &mut ctrls[proc_of(c.addr, args.per) as usize];
        match ctrl.request(&to(c.addr, CtrlMsg::Release), Duration::from_secs(10)) {
            Ok(CtrlMsg::Ok) => {}
            other => fail(&format!("release on member {:?}: {other:?}", c.addr)),
        }
    }
}

/// Polls `check` (roughly twice a second) until it returns true, failing
/// the run after `timeout`.
fn wait_until(timeout: Duration, what: &str, mut check: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    loop {
        if check() {
            return;
        }
        if Instant::now() >= deadline {
            fail(&format!("timed out waiting for {what}"));
        }
        std::thread::sleep(Duration::from_millis(500));
    }
}
