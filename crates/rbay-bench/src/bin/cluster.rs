//! `cluster` — spawns a local RBAY federation as real OS processes and
//! runs end-to-end queries through it.
//!
//! The harness launches `--agents` federation members packed
//! `--agents-per-proc` to an `rbay-node` daemon (so
//! `--agents 16000 --agents-per-proc 100` is 160 OS processes on
//! loopback TCP), waits for the Pastry overlay to converge, posts
//! `GPU = true` on `k+1` evenly spaced members (with the password
//! `onGet` guard installed, so AAScript runs in-process too), waits for
//! the aggregation trees to attach, then issues
//! `SELECT k FROM * WHERE GPU = true` from the last member and verifies
//! that `k` candidates were found **and committed** on the holders. A
//! final throughput phase runs `--qps-queries` back-to-back queries
//! (releasing reservations between them) to measure queries/sec.
//!
//! Exit status 0 only on a fully verified run — CI's `cluster-smoke`
//! and `cluster-packed` jobs run exactly this binary. With `--json` the
//! run appends a `{agents, agents_per_proc, converge_ms,
//! queries_per_sec, dropped_frames}` record to `BENCH_wire.json`.
//!
//! ```text
//! cluster [--agents 5] [--agents-per-proc 1] [--k 3] [--base-port 21100]
//!         [--num-sites 1] [--tick-ms <ms>] [--qps-queries 10] [--json]
//! ```

use rbay_bench::cluster::{proc_of, proc_sock, site_of, CtrlMsg, DEFAULT_BASE_PORT};
use rbay_bench::{append_json_record, JsonRecord};
use rbay_core::{Candidate, FrontdoorStats};
use rbay_wire::DropStats;
use rbay_wire::{decode_frame, encode_frame, read_frame, write_frame, Hello, MAX_FRAME_LEN};
use rbay_workloads::{password_aa_script, WORKLOAD_PASSWORD};
use simnet::NodeAddr;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Where cluster benchmark rows land (repo root, next to the codec rows).
const WIRE_JSON: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wire.json");

struct Args {
    agents: u32,
    per: u32,
    k: usize,
    base_port: u16,
    num_sites: u16,
    tick_ms: u64,
    qps_queries: u32,
    json: bool,
    frontdoor: bool,
    fd_max_pending: u32,
}

fn parse_args() -> Args {
    let mut args = Args {
        agents: 5,
        per: 1,
        k: 3,
        base_port: DEFAULT_BASE_PORT,
        num_sites: 1,
        tick_ms: 0, // 0 = pick by scale below
        qps_queries: 10,
        json: false,
        frontdoor: false,
        fd_max_pending: 2,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            // `--count` kept as an alias for unpacked runs.
            "--agents" | "--count" => args.agents = flag_value(&argv, i),
            "--agents-per-proc" => args.per = flag_value(&argv, i),
            "--k" => args.k = flag_value(&argv, i),
            "--base-port" => args.base_port = flag_value(&argv, i),
            "--num-sites" => args.num_sites = flag_value(&argv, i),
            "--tick-ms" => args.tick_ms = flag_value(&argv, i),
            "--qps-queries" => args.qps_queries = flag_value(&argv, i),
            "--fd-max-pending" => args.fd_max_pending = flag_value(&argv, i),
            "--json" => {
                args.json = true;
                i += 1;
                continue;
            }
            "--frontdoor" => {
                args.frontdoor = true;
                i += 1;
                continue;
            }
            other => {
                eprintln!(
                    "unknown flag {other}\nusage: cluster [--agents <n>] [--agents-per-proc <m>] \
                     [--k <k>] [--base-port <p>] [--num-sites <s>] [--tick-ms <ms>] \
                     [--qps-queries <q>] [--frontdoor] [--fd-max-pending <n>] [--json]"
                );
                std::process::exit(2);
            }
        }
        i += 2;
    }
    if args.agents < 2 || args.k + 1 >= args.agents as usize {
        eprintln!("need --agents >= 2 and --k + 1 < --agents (k holders plus a querier)");
        std::process::exit(2);
    }
    if args.per == 0 {
        eprintln!("--agents-per-proc must be >= 1");
        std::process::exit(2);
    }
    if args.tick_ms == 0 {
        // Big fleets tick slower: maintenance is O(members) per tick and
        // convergence is gated on join retries, not tick frequency.
        args.tick_ms = if args.agents >= 2000 { 500 } else { 150 };
    }
    args
}

/// Parses the value after flag `argv[i]`, exiting with usage on errors.
fn flag_value<T: std::str::FromStr>(argv: &[String], i: usize) -> T
where
    T::Err: std::fmt::Display,
{
    argv.get(i + 1)
        .unwrap_or_else(|| {
            eprintln!("missing value for {}", argv[i]);
            std::process::exit(2);
        })
        .parse()
        .unwrap_or_else(|e| {
            eprintln!("bad value for {}: {e}", argv[i]);
            std::process::exit(2);
        })
}

/// The spawned daemons. Global so [`fail`] can kill them before
/// `exit(1)` — `std::process::exit` runs no destructors, and a leaked
/// 160-process fleet keeps squatting on the port range.
static FLEET: Mutex<Vec<Child>> = Mutex::new(Vec::new());

/// Kills and reaps every spawned daemon.
fn kill_fleet() {
    if let Ok(mut children) = FLEET.lock() {
        for c in children.iter_mut() {
            let _ = c.kill();
            let _ = c.wait();
        }
        children.clear();
    }
}

/// One control connection to a daemon.
struct Ctrl {
    stream: TcpStream,
}

impl Ctrl {
    /// Connects (with retries until `deadline`) and performs the control
    /// hello.
    fn connect(addr: SocketAddr, deadline: Instant) -> io::Result<Ctrl> {
        loop {
            match TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
                Ok(mut stream) => {
                    stream.set_nodelay(true).ok();
                    write_frame(&mut stream, &encode_frame(&Hello::Ctrl))?;
                    return Ok(Ctrl { stream });
                }
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(100));
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn send(&mut self, msg: &CtrlMsg) -> io::Result<()> {
        write_frame(&mut self.stream, &encode_frame(msg))
    }

    /// Reads one control reply, failing after `timeout`.
    fn recv(&mut self, timeout: Duration) -> io::Result<CtrlMsg> {
        self.stream.set_read_timeout(Some(timeout))?;
        let frame = read_frame(&mut self.stream, MAX_FRAME_LEN)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed ctrl"))?;
        decode_frame::<CtrlMsg>(&frame).map_err(io::Error::other)
    }

    fn request(&mut self, msg: &CtrlMsg, timeout: Duration) -> io::Result<CtrlMsg> {
        self.send(msg)?;
        self.recv(timeout)
    }
}

/// Wraps a request for one specific member in its `To` envelope.
fn to(member: NodeAddr, msg: CtrlMsg) -> CtrlMsg {
    CtrlMsg::To {
        member,
        msg: Box::new(msg),
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("cluster: FAIL: {msg}");
    kill_fleet();
    std::process::exit(1);
}

fn main() {
    let args = parse_args();
    let procs = args.agents.div_ceil(args.per);
    let daemon = std::env::current_exe()
        .expect("own path")
        .with_file_name("rbay-node");
    if !daemon.exists() {
        fail(&format!("daemon binary not found at {}", daemon.display()));
    }

    println!(
        "cluster: spawning {} member(s) across {} process(es) (x{} packed, base port {}, \
         {} site(s), tick {}ms)",
        args.agents, procs, args.per, args.base_port, args.num_sites, args.tick_ms
    );
    let spawn_start = Instant::now();
    for i in 0..procs {
        let mut cmd = Command::new(&daemon);
        cmd.args(["--index", &i.to_string()])
            .args(["--agents", &args.agents.to_string()])
            .args(["--agents-per-proc", &args.per.to_string()])
            .args(["--base-port", &args.base_port.to_string()])
            .args(["--num-sites", &args.num_sites.to_string()])
            .args(["--tick-ms", &args.tick_ms.to_string()]);
        if args.frontdoor {
            cmd.arg("--frontdoor");
        }
        let child = cmd
            .spawn()
            .unwrap_or_else(|e| fail(&format!("spawn daemon {i}: {e}")));
        FLEET.lock().unwrap().push(child);
    }

    // Control connections to every daemon. On a loaded single-core host
    // a 160-process fleet takes a while to get everyone listening.
    let deadline = Instant::now() + Duration::from_secs(30 + procs as u64);
    let mut ctrls: Vec<Ctrl> = (0..procs)
        .map(|i| {
            Ctrl::connect(proc_sock(args.base_port, i), deadline)
                .unwrap_or_else(|e| fail(&format!("ctrl connect to daemon {i}: {e}")))
        })
        .collect();

    // Phase 1: overlay convergence — every member joined. Small runs keep
    // the stricter full-membership check (Pastry state is O(log n), so at
    // scale a member legitimately knows only a fraction of its peers).
    let strict_peers = args.agents <= 32;
    let converge_budget = Duration::from_secs(120 + args.agents as u64 / 20);
    wait_until(converge_budget, "overlay convergence", || {
        let mut joined = 0;
        let mut min_peers = u32::MAX;
        let mut dropped = 0u64;
        for (i, ctrl) in ctrls.iter_mut().enumerate() {
            match ctrl.request(&CtrlMsg::ProcStatus, Duration::from_secs(10)) {
                Ok(CtrlMsg::ProcStatusReply {
                    joined: j,
                    min_known_peers,
                    dropped_frames,
                    ..
                }) => {
                    joined += j;
                    min_peers = min_peers.min(min_known_peers);
                    dropped += dropped_frames;
                }
                other => fail(&format!("proc status from daemon {i}: {other:?}")),
            }
        }
        println!(
            "cluster: {} of {} members joined (min known peers {}, {} dropped)",
            joined,
            args.agents,
            if min_peers == u32::MAX { 0 } else { min_peers },
            dropped
        );
        joined == args.agents && (!strict_peers || min_peers >= args.agents - 1)
    });
    let converge_ms = spawn_start.elapsed().as_secs_f64() * 1e3;
    println!("cluster: overlay converged in {converge_ms:.0} ms");

    // Front door: enable the cache on every gateway (each site's three
    // lowest members — the layout build_node computes on every daemon).
    let mut gateways: Vec<NodeAddr> = Vec::new();
    if args.frontdoor {
        let mut per_site = vec![0u32; args.num_sites as usize];
        for i in 0..args.agents {
            let s = site_of(i, args.agents, args.num_sites).0 as usize;
            if per_site[s] < 3 {
                per_site[s] += 1;
                gateways.push(NodeAddr(i));
            }
        }
        for &g in &gateways {
            let ctrl = &mut ctrls[proc_of(g, args.per) as usize];
            match ctrl.request(
                &to(
                    g,
                    CtrlMsg::EnableFrontdoor {
                        ttl_ms: 600_000,
                        capacity: 1024,
                        max_pending: args.fd_max_pending,
                    },
                ),
                Duration::from_secs(10),
            ) {
                Ok(CtrlMsg::Ok) => {}
                other => fail(&format!("enable frontdoor on {g:?}: {other:?}")),
            }
        }
        println!(
            "cluster: front door enabled on {} gateway(s): {gateways:?}",
            gateways.len()
        );
    }

    // Phase 2: k+1 evenly spaced holders post the resource behind the
    // password guard.
    let holders: Vec<NodeAddr> = (0..args.k as u32 + 1)
        .map(|i| NodeAddr(i * args.agents / (args.k as u32 + 1)))
        .collect();
    for &h in &holders {
        let ctrl = &mut ctrls[proc_of(h, args.per) as usize];
        match ctrl.request(
            &to(
                h,
                CtrlMsg::InstallNodeAa {
                    src: password_aa_script(),
                },
            ),
            Duration::from_secs(10),
        ) {
            Ok(CtrlMsg::Ok) => {}
            other => fail(&format!("install AA on member {h:?}: {other:?}")),
        }
        match ctrl.request(
            &to(
                h,
                CtrlMsg::Post {
                    attr: "GPU".into(),
                    value: rbay_query::AttrValue::Bool(true),
                },
            ),
            Duration::from_secs(10),
        ) {
            Ok(CtrlMsg::Ok) => {}
            other => fail(&format!("post on member {h:?}: {other:?}")),
        }
    }
    println!(
        "cluster: posted GPU=true on {} members: {holders:?}",
        holders.len()
    );

    // Phase 3: every holder attached to its aggregation tree.
    wait_until(Duration::from_secs(120), "tree attachment", || {
        let mut attached = 0;
        for &h in &holders {
            let ctrl = &mut ctrls[proc_of(h, args.per) as usize];
            match ctrl.request(&to(h, CtrlMsg::Status), Duration::from_secs(10)) {
                Ok(CtrlMsg::StatusReply { attached: a, .. }) if a >= 1 => attached += 1,
                Ok(CtrlMsg::StatusReply { .. }) => {}
                other => fail(&format!("status from member {h:?}: {other:?}")),
            }
        }
        println!(
            "cluster: {attached} of {} holders attached to the tree",
            holders.len()
        );
        attached == holders.len()
    });

    // Phase 4: the last member runs the query; retry while trees settle.
    let querier = NodeAddr(args.agents - 1);
    let results = run_query(&mut ctrls, &args, querier, 5)
        .unwrap_or_else(|| fail(&format!("query never committed {} results", args.k)));
    println!("cluster: query satisfied with {} result(s):", results.len());
    for c in &results {
        println!("  node {:?} at {:?} (site {:?})", c.id, c.addr, c.site);
    }

    // Phase 5: the commits really landed on the chosen members. The
    // QueryDone reply races the commit messages still in flight to the
    // holders, so poll rather than check once.
    wait_until(Duration::from_secs(30), "commit verification", || {
        let mut committed = 0;
        for c in &results {
            let ctrl = &mut ctrls[proc_of(c.addr, args.per) as usize];
            match ctrl.request(&to(c.addr, CtrlMsg::Status), Duration::from_secs(10)) {
                Ok(CtrlMsg::StatusReply { committed: n, .. }) if n >= 1 => committed += 1,
                Ok(_) => {}
                Err(e) => fail(&format!("status from member {:?}: {e}", c.addr)),
            }
        }
        println!(
            "cluster: {committed} of {} commits verified on the chosen members",
            results.len()
        );
        committed == results.len()
    });
    release_results(&mut ctrls, &args, &results);

    // Phase 6: query throughput — back-to-back queries from the same
    // member, releasing each round's reservations so inventory is not
    // depleted.
    let mut queries_per_sec = 0.0;
    if args.qps_queries > 0 {
        let qps_start = Instant::now();
        let mut satisfied = 0u32;
        for _ in 0..args.qps_queries {
            match run_query(&mut ctrls, &args, querier, 3) {
                Some(results) => {
                    satisfied += 1;
                    release_results(&mut ctrls, &args, &results);
                }
                None => fail("throughput query never satisfied"),
            }
        }
        queries_per_sec = satisfied as f64 / qps_start.elapsed().as_secs_f64();
        println!(
            "cluster: {} queries in {:.2} s -> {:.2} queries/sec",
            satisfied,
            qps_start.elapsed().as_secs_f64(),
            queries_per_sec
        );
    }

    // Phase 7 (with --frontdoor): cache hits under repetition, zero stale
    // reads after the invalidation multicast, and shedding under a burst.
    let mut stale_reads = 0u64;
    if args.frontdoor {
        // A gateway that holds no inventory, so its queries walk the tree.
        let gateway = gateways
            .iter()
            .copied()
            .find(|g| !holders.contains(g))
            .unwrap_or(gateways[0]);

        // 7a: the same query repeated through the gateway front door. The
        // first walk fills the cache; repeats must produce hits.
        let warm = run_query(&mut ctrls, &args, gateway, 5)
            .unwrap_or_else(|| fail("frontdoor warmup query never satisfied"));
        release_results(&mut ctrls, &args, &warm);
        for _ in 0..8 {
            let cached = run_query(&mut ctrls, &args, gateway, 3)
                .unwrap_or_else(|| fail("repeat query through the front door"));
            release_results(&mut ctrls, &args, &cached);
        }
        let (fd, _) = fleet_stats(&mut ctrls);
        println!(
            "cluster: front door warm: {} hit(s), {} miss(es), {} coalesced",
            fd.hits, fd.misses, fd.coalesced
        );
        if fd.hits == 0 {
            fail("no cache hits after repeating an identical query");
        }

        // 7b: flip one holder's attribute; the invalidation multicast must
        // purge the cached entry and the next query must re-walk.
        let flipped = holders[0];
        let misses_before = fd.misses;
        let ctrl = &mut ctrls[proc_of(flipped, args.per) as usize];
        match ctrl.request(
            &to(
                flipped,
                CtrlMsg::Post {
                    attr: "GPU".into(),
                    value: rbay_query::AttrValue::Bool(false),
                },
            ),
            Duration::from_secs(10),
        ) {
            Ok(CtrlMsg::Ok) => {}
            other => fail(&format!("flip GPU on {flipped:?}: {other:?}")),
        }
        wait_until(Duration::from_secs(60), "invalidation multicast", || {
            let (fd, _) = fleet_stats(&mut ctrls);
            println!("cluster: {} invalidation(s) observed", fd.invalidations);
            fd.invalidations > 0
        });
        let fresh = run_query(&mut ctrls, &args, gateway, 5)
            .unwrap_or_else(|| fail("post-invalidation query never satisfied"));
        if fresh.iter().any(|c| c.addr == flipped) {
            stale_reads += 1;
        }
        let (fd, _) = fleet_stats(&mut ctrls);
        if fd.misses <= misses_before {
            stale_reads += 1; // served from cache instead of re-walking
        }
        release_results(&mut ctrls, &args, &fresh);
        if stale_reads > 0 {
            fail("stale result served after invalidation");
        }
        println!("cluster: zero stale reads after invalidation (fresh walk excluded {flipped:?})");

        // 7c: a burst of distinct queries beyond the admission bound must
        // shed with retry-after rather than queue without limit.
        let burst = args.fd_max_pending + 6;
        let mut shed = 0u64;
        'rounds: for round in 0..3 {
            let ctrl = &mut ctrls[proc_of(gateway, args.per) as usize];
            for i in 0..burst {
                let zql = format!("SELECT 1 FROM * WHERE fdshed_r{round}_q{i} = true");
                ctrl.send(&to(
                    gateway,
                    CtrlMsg::IssueQuery {
                        zql,
                        password: None,
                    },
                ))
                .unwrap_or_else(|e| fail(&format!("burst send: {e}")));
            }
            for _ in 0..burst {
                match ctrl.recv(Duration::from_secs(90)) {
                    Ok(CtrlMsg::QueryShed { .. }) => shed += 1,
                    Ok(CtrlMsg::QueryDone { .. }) => {}
                    Ok(other) => fail(&format!("burst reply: {other:?}")),
                    Err(e) => fail(&format!("burst reply: {e}")),
                }
            }
            println!("cluster: burst round {round}: {shed} shed so far");
            if shed > 0 {
                break 'rounds;
            }
        }
        if shed == 0 {
            fail("admission control never shed under a query burst");
        }
    }

    // Final sweep: frames dropped anywhere in the fleet, by cause, plus
    // fleet-wide front-door counters.
    let (fd, drops) = fleet_stats(&mut ctrls);
    let dropped_frames = drops.total();
    println!(
        "cluster: {dropped_frames} frame(s) dropped fleet-wide \
         (staging full {}, write cap {}, connect exhausted {}, conn closed {}, unresolvable {})",
        drops.outbound_full,
        drops.write_cap,
        drops.connect_exhausted,
        drops.conn_closed,
        drops.unresolvable
    );
    if args.frontdoor {
        println!(
            "cluster: front door totals: {} hit(s), {} miss(es), {} coalesced, {} shed, \
             {} invalidation(s), {} stale read(s)",
            fd.hits, fd.misses, fd.coalesced, fd.shed, fd.invalidations, stale_reads
        );
    }
    let run_s = spawn_start.elapsed().as_secs_f64();

    for (i, ctrl) in ctrls.iter_mut().enumerate() {
        if let Err(e) = ctrl.request(&CtrlMsg::Shutdown, Duration::from_secs(5)) {
            eprintln!("cluster: shutdown daemon {i}: {e}");
        }
    }
    kill_fleet();

    if args.json {
        let mut rec = JsonRecord::new("cluster")
            .int("agents", args.agents as u64)
            .int("agents_per_proc", args.per as u64)
            .int("num_sites", args.num_sites as u64)
            .int("k", args.k as u64)
            .int("tick_ms", args.tick_ms)
            .int("qps_queries", args.qps_queries as u64)
            .text("query_mix", "SELECT k FROM * WHERE GPU = true")
            .int("warmup_queries", 1)
            .num("run_s", run_s)
            .num("converge_ms", converge_ms)
            .num("queries_per_sec", queries_per_sec)
            .int("dropped_frames", dropped_frames)
            .int("drop_outbound_full", drops.outbound_full)
            .int("drop_write_cap", drops.write_cap)
            .int("drop_connect_exhausted", drops.connect_exhausted)
            .int("drop_conn_closed", drops.conn_closed)
            .int("drop_unresolvable", drops.unresolvable)
            .int("frontdoor", args.frontdoor as u64);
        if args.frontdoor {
            rec = rec
                .int("fd_hits", fd.hits)
                .int("fd_misses", fd.misses)
                .int("fd_coalesced", fd.coalesced)
                .int("fd_shed", fd.shed)
                .int("fd_invalidations", fd.invalidations)
                .int("stale_reads", stale_reads);
        }
        match append_json_record(WIRE_JSON, &rec) {
            Ok(()) => println!("cluster: appended record to {WIRE_JSON}"),
            Err(e) => eprintln!("cluster: cannot write {WIRE_JSON}: {e}"),
        }
    }
    println!("cluster: PASS");
}

/// Issues `SELECT k FROM * WHERE GPU = true` from `querier` with up to
/// `attempts` retries; returns the committed candidates on success.
fn run_query(
    ctrls: &mut [Ctrl],
    args: &Args,
    querier: NodeAddr,
    attempts: u32,
) -> Option<Vec<Candidate>> {
    let zql = format!("SELECT {} FROM * WHERE GPU = true", args.k);
    let proc = proc_of(querier, args.per) as usize;
    for attempt in 1..=attempts {
        println!("cluster: issuing `{zql}` from member {querier:?} (attempt {attempt})");
        let res = ctrls[proc].request(
            &to(
                querier,
                CtrlMsg::IssueQuery {
                    zql: zql.clone(),
                    password: Some(WORKLOAD_PASSWORD.into()),
                },
            ),
            Duration::from_secs(90),
        );
        match res {
            Ok(CtrlMsg::QueryDone {
                satisfied,
                results,
                unknown_sites,
            }) => {
                if !unknown_sites.is_empty() {
                    fail(&format!("unexpected unknown sites: {unknown_sites:?}"));
                }
                if satisfied && results.len() == args.k {
                    return Some(results);
                }
                println!(
                    "cluster: attempt {attempt}: satisfied={satisfied}, {} result(s); retrying",
                    results.len()
                );
            }
            Ok(other) => fail(&format!("query answer: {other:?}")),
            Err(e) => {
                println!("cluster: attempt {attempt}: {e}; reconnecting");
                ctrls[proc] = Ctrl::connect(
                    proc_sock(args.base_port, proc as u32),
                    Instant::now() + Duration::from_secs(10),
                )
                .unwrap_or_else(|e| fail(&format!("reconnect: {e}")));
            }
        }
        std::thread::sleep(Duration::from_secs(1));
    }
    None
}

/// One `ProcStatus` sweep over every daemon, aggregating front-door and
/// per-cause drop counters fleet-wide.
fn fleet_stats(ctrls: &mut [Ctrl]) -> (FrontdoorStats, DropStats) {
    let mut fd = FrontdoorStats::default();
    let mut drops = DropStats::default();
    for (i, ctrl) in ctrls.iter_mut().enumerate() {
        match ctrl.request(&CtrlMsg::ProcStatus, Duration::from_secs(10)) {
            Ok(CtrlMsg::ProcStatusReply {
                drops: d,
                frontdoor: f,
                ..
            }) => {
                drops.merge(&d);
                fd.merge(&f);
            }
            other => fail(&format!("proc status from daemon {i}: {other:?}")),
        }
    }
    (fd, drops)
}

/// Clears the reservation each committed candidate holds, so the next
/// query finds free inventory again.
fn release_results(ctrls: &mut [Ctrl], args: &Args, results: &[Candidate]) {
    for c in results {
        let ctrl = &mut ctrls[proc_of(c.addr, args.per) as usize];
        match ctrl.request(&to(c.addr, CtrlMsg::Release), Duration::from_secs(10)) {
            Ok(CtrlMsg::Ok) => {}
            other => fail(&format!("release on member {:?}: {other:?}", c.addr)),
        }
    }
}

/// Polls `check` (roughly twice a second) until it returns true, failing
/// the run after `timeout`.
fn wait_until(timeout: Duration, what: &str, mut check: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    loop {
        if check() {
            return;
        }
        if Instant::now() >= deadline {
            fail(&format!("timed out waiting for {what}"));
        }
        std::thread::sleep(Duration::from_millis(500));
    }
}
