//! `rbay-check` — the systematic-exploration CLI.
//!
//! ```text
//! rbay-check explore [--nodes N] [--seed N] [--budget-secs S]
//!                    [--initial-depth D] [--max-depth D] [--max-runs N]
//!                    [--target-distinct N] [--keep-going] [--random WALKS]
//!                    [--strict-recall] [--schedule-out FILE]
//! rbay-check replay <file.schedule>
//! rbay-check shrink <file.schedule> [--out FILE]
//! ```
//!
//! `explore` drives the subscribe-fail-repair scenario through all
//! bounded interleavings (iterative-deepening DFS with sleep-set
//! reduction; `--random` switches to seeded random walks for larger
//! configurations) and exits non-zero if any protocol invariant trips.
//! `replay` re-executes a `.schedule` counterexample deterministically
//! with obs tracing forced on, printing the tree-repair timeline; it
//! exits non-zero when the recorded violation does not reproduce.
//! `shrink` delta-debugs a schedule down to a locally minimal one.

use rbay_check::{
    explore, explore_random, replay, runner, shrink, CheckSpec, ScenarioKind, ScheduleFile,
};
use simnet::{ObsEvent, ReplayScheduler, SimTime};
use std::time::Duration;

fn usage(msg: &str) -> ! {
    eprintln!(
        "error: {msg}\n\
         usage: rbay-check explore [--nodes N] [--seed N] [--budget-secs S] [--initial-depth D]\n\
         \x20                        [--max-depth D] [--max-runs N] [--target-distinct N]\n\
         \x20                        [--keep-going] [--random WALKS] [--strict-recall]\n\
         \x20                        [--schedule-out FILE]\n\
         \x20      rbay-check replay <file.schedule>\n\
         \x20      rbay-check shrink <file.schedule> [--out FILE]"
    );
    std::process::exit(2);
}

fn parse_num<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> T {
    args.get(i + 1)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("explore") => cmd_explore(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("shrink") => cmd_shrink(&args[1..]),
        _ => usage("expected a subcommand: explore | replay | shrink"),
    }
}

fn cmd_explore(args: &[String]) -> ! {
    let mut spec = CheckSpec::subscribe_fail_repair(3, 7);
    let mut opts = runner::ExploreOpts::default();
    let mut random_walks: Option<u64> = None;
    let mut schedule_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--nodes" => {
                spec.nodes = parse_num(args, i, "--nodes");
                i += 2;
            }
            "--seed" => {
                spec.seed = parse_num(args, i, "--seed");
                i += 2;
            }
            "--budget-secs" => {
                opts.budget = Duration::from_secs(parse_num(args, i, "--budget-secs"));
                i += 2;
            }
            "--initial-depth" => {
                opts.initial_depth = parse_num(args, i, "--initial-depth");
                i += 2;
            }
            "--max-depth" => {
                opts.max_depth = parse_num(args, i, "--max-depth");
                i += 2;
            }
            "--max-runs" => {
                opts.max_runs = parse_num(args, i, "--max-runs");
                i += 2;
            }
            "--target-distinct" => {
                opts.target_distinct = parse_num(args, i, "--target-distinct");
                i += 2;
            }
            "--keep-going" => {
                opts.stop_at_first = false;
                i += 1;
            }
            "--random" => {
                random_walks = Some(parse_num(args, i, "--random"));
                i += 2;
            }
            "--strict-recall" => {
                spec.strict_recall = true;
                i += 1;
            }
            "--schedule-out" => {
                schedule_out = Some(
                    args.get(i + 1)
                        .cloned()
                        .unwrap_or_else(|| usage("--schedule-out needs a file path")),
                );
                i += 2;
            }
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    if spec.nodes < 2 {
        usage("--nodes must be at least 2");
    }

    let report = match random_walks {
        Some(walks) => explore_random(&spec, walks, 0.02),
        None => explore(&spec, &opts),
    };
    println!(
        "{}: {} runs, {} distinct interleavings, {} pruned, {} violation(s), {}exhausted, {:.2?}",
        spec.kind.name(),
        report.runs,
        report.distinct,
        report.pruned,
        report.violations.len(),
        if report.exhausted { "" } else { "not " },
        report.elapsed,
    );
    for cx in &report.violations {
        println!("\nviolation [{}]: {}", cx.violation.kind(), cx.violation);
        let schedule = cx.to_schedule(&spec);
        match &schedule_out {
            Some(path) => match std::fs::write(path, schedule.render()) {
                Ok(()) => println!("schedule written to {path}"),
                Err(e) => eprintln!("warning: could not write {path}: {e}"),
            },
            None => print!("{}", schedule.render()),
        }
    }
    std::process::exit(if report.violations.is_empty() { 0 } else { 1 });
}

fn read_schedule(args: &[String]) -> ScheduleFile {
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .unwrap_or_else(|| usage("expected a .schedule file"));
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| usage(&format!("cannot read {path}: {e}")));
    ScheduleFile::parse(&text).unwrap_or_else(|e| usage(&format!("bad schedule {path}: {e}")))
}

fn cmd_replay(args: &[String]) -> ! {
    let file = read_schedule(args);
    println!(
        "replaying {} (nodes {}, seed {}), recorded violation: {}",
        file.spec.kind.name(),
        file.spec.nodes,
        file.spec.seed,
        file.violation.as_deref().unwrap_or("none"),
    );

    // For the explorable scenario, re-run step by step with obs tracing
    // forced on and print the tree-repair timeline; bench scenarios
    // re-run their deterministic core end to end.
    let found = if file.spec.kind == ScenarioKind::SubscribeFailRepair {
        let mut p = file.spec.prepare();
        let rec = p.fed.enable_obs(1 << 16);
        let started = p.fed.sim().now();
        let mut sched = ReplayScheduler::new(file.directives.iter().copied());
        let outcome = runner::run_prepared(p, &mut sched);
        print_timeline(&rec.events(), started);
        println!(
            "replayed {} steps, {} divergences",
            outcome.steps,
            outcome.decisions.len()
        );
        outcome.violation
    } else {
        replay(&file)
    };

    match &found {
        Some(v) => println!("violation [{}]: {v}", v.kind()),
        None => println!("no violation"),
    }
    let reproduced = match (&file.violation, &found) {
        (Some(want), Some(got)) => want == got.kind(),
        (None, None) => true,
        _ => false,
    };
    if !reproduced {
        eprintln!("recorded violation did NOT reproduce");
    }
    std::process::exit(if reproduced { 0 } else { 1 });
}

fn cmd_shrink(args: &[String]) -> ! {
    let file = read_schedule(args);
    let mut out_path = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out_path = Some(
                    args.get(i + 1)
                        .cloned()
                        .unwrap_or_else(|| usage("--out needs a file path")),
                );
                i += 2;
            }
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    let before = file.directives.len();
    let reduced = shrink(&file);
    println!(
        "shrunk {} -> {} directive(s)",
        before,
        reduced.directives.len()
    );
    match out_path {
        Some(path) => {
            std::fs::write(&path, reduced.render())
                .unwrap_or_else(|e| usage(&format!("cannot write {path}: {e}")));
            println!("written to {path}");
        }
        None => print!("{}", reduced.render()),
    }
    std::process::exit(0);
}

/// Prints the repair-relevant obs events of a replayed run.
fn print_timeline(events: &[ObsEvent], since: SimTime) {
    for ev in events {
        if ev.at() < since {
            continue;
        }
        let line = match *ev {
            ObsEvent::HeartbeatExpire { detector, peer, .. } => {
                Some(format!("{detector:?} declares {peer:?} failed"))
            }
            ObsEvent::TreeParent { node, old, new, .. } => Some(match old {
                Some(old) => format!("{node:?} re-parents {old:?} -> {new:?}"),
                None => format!("{node:?} attaches under {new:?}"),
            }),
            ObsEvent::TreeGraft { parent, child, .. } => {
                Some(format!("{parent:?} grafts child {child:?}"))
            }
            ObsEvent::TreeLeave { parent, child, .. } => {
                Some(format!("{parent:?} drops child {child:?}"))
            }
            ObsEvent::NotChild { node, orphan, .. } => {
                Some(format!("{node:?} NACKs orphan {orphan:?}"))
            }
            _ => None,
        };
        if let Some(what) = line {
            println!(
                "  +{:>8.1} ms  {what}",
                ev.at().saturating_since(since).as_millis_f64()
            );
        }
    }
}
