//! Ablation: RBAY's decentralized trees vs the Ganglia-style centralized
//! master the paper argues against (§II.A).
//!
//! Sweeps the fleet size and reports (a) the hottest node's incoming
//! message count during monitoring/update traffic and (b) end-to-end query
//! latency. Expectation: the central master's load grows linearly with
//! the fleet while RBAY's hottest node stays near-flat (load spread over
//! tree roots); both answer queries in comparable time at small scale.

use rbay_baselines::CentralPlane;
use rbay_bench::{stats, HarnessOpts};
use rbay_core::{Federation, RbayConfig};
use rbay_query::AttrValue;
use rbay_workloads::{populate_ec2_federation, ScenarioConfig, WORKLOAD_PASSWORD};
use simnet::{NodeAddr, SimDuration, SiteId, Topology};

/// One poll round + a handful of queries on the centralized design.
fn run_central(nodes_per_site: usize, seed: u64) -> (u64, f64) {
    let mut cp = CentralPlane::new(Topology::aws_ec2_8_sites(nodes_per_site), seed);
    // Give a handful of nodes a queryable attribute.
    for s in 0..8u16 {
        let n = cp.sim().topology().nodes_of_site(SiteId(s))[2];
        cp.set_attr(n, "GPU", AttrValue::Bool(true));
    }
    cp.settle();
    cp.poll_round();
    let mut lats = Vec::new();
    for i in 0..10u32 {
        let origin = NodeAddr(3 + i % (nodes_per_site as u32 - 3));
        let seq = cp.query(origin, "GPU", AttrValue::Bool(true), 1);
        cp.settle();
        let rec = &cp.queries(origin)[seq as usize];
        if let Some(done) = rec.completed_at {
            lats.push(done.saturating_since(rec.issued_at).as_millis_f64());
        }
    }
    let (msgs, _) = cp.master_load();
    (msgs, stats(&lats).map(|s| s.mean).unwrap_or(f64::NAN))
}

/// The same population + queries on RBAY; hottest node = max delivered
/// messages at any single node.
fn run_rbay(nodes_per_site: usize, seed: u64) -> (u64, f64) {
    let cfg = RbayConfig {
        commit_results: false,
        ..RbayConfig::default()
    };
    let mut fed = Federation::with_config(Topology::aws_ec2_8_sites(nodes_per_site), seed, cfg);
    let scenario = ScenarioConfig {
        extra_attrs_per_node: 2,
        ..ScenarioConfig::default()
    };
    populate_ec2_federation(&mut fed, seed, &scenario);
    fed.run_maintenance(3, SimDuration::from_millis(250));
    fed.settle();
    let mut lats = Vec::new();
    for i in 0..10u32 {
        let origin = NodeAddr(3 + i % (nodes_per_site as u32 - 3));
        // Local-site query, apples-to-apples with the master answering
        // from its colocated snapshot.
        let id = fed
            .issue_query(
                origin,
                "SELECT 1 FROM \"Virginia\" WHERE instance = \"c3.8xlarge\"",
                Some(WORKLOAD_PASSWORD),
            )
            .unwrap();
        fed.settle();
        let rec = fed.query_record(origin, id).unwrap();
        if let Some(done) = rec.completed_at {
            lats.push(done.saturating_since(rec.issued_at).as_millis_f64());
        }
        let horizon = fed.sim().now() + SimDuration::from_secs(4);
        fed.run_until(horizon);
    }
    // Hottest node by protocol work: forwards + deliveries at the Pastry
    // layer (the analogue of the master's message load).
    let hottest = fed
        .sim()
        .actors()
        .map(|(_, a)| a.pastry.stats.forwards + a.pastry.stats.delivered)
        .max()
        .unwrap_or(0);
    (hottest, stats(&lats).map(|s| s.mean).unwrap_or(f64::NAN))
}

fn main() {
    let opts = HarnessOpts::from_args();
    println!("Ablation: centralized master vs RBAY decentralized trees");
    println!("(hottest-node incoming load during population + 10 queries)\n");
    println!(
        "{:>8} {:>10} {:>18} {:>16} {:>18} {:>16}",
        "nodes", "per-site", "central max-load", "central q-lat", "rbay max-load", "rbay q-lat"
    );
    for &per_site in &[5usize, 10, 20, 40] {
        let per_site = opts.scaled(per_site, 4);
        let (cm, cl) = run_central(per_site, opts.seed);
        let (rm, rl) = run_rbay(per_site, opts.seed);
        println!(
            "{:>8} {:>10} {:>18} {:>16.1} {:>18} {:>16.1}",
            per_site * 8,
            per_site,
            cm,
            cl,
            rm,
            rl
        );
    }
    println!("\n(the central column grows ~linearly with fleet size; RBAY's hottest");
    println!(" node grows with log N and the per-tree membership instead)");
}
