//! Trace-dump tool — reconstructs, from the structured observability
//! trace, (a) the overlay route one query's probe took hop by hop and
//! (b) the repair timeline of a resource tree after a node crash.
//!
//! Runs a small canned federation (deterministic under `--seed`), so the
//! output doubles as a worked example of what the trace records. The same
//! reconstruction is available on real runs through `churn --trace`.

use rand::rngs::SmallRng;
use rand::{seq::SliceRandom, SeedableRng};
use rbay_bench::{cluster, HarnessOpts};
use rbay_core::{Federation, LintPolicy, RbayConfig};
use rbay_query::AttrValue;
use rbay_store::{FsyncPolicy, Store};
use rbay_workloads::WORKLOAD_PASSWORD;
use simnet::obs::Recorder;
use simnet::{NodeAddr, ObsEvent, SimDuration, SimTime, SiteId, Topology};

fn main() {
    let opts = HarnessOpts::from_args();
    let n_nodes = opts.scaled(40, 16);

    let cfg = RbayConfig {
        failure_detection: true,
        heartbeat_timeout: SimDuration::from_millis(400),
        commit_results: false,
        ..RbayConfig::default()
    };
    let mut fed = Federation::with_config(Topology::single_site(n_nodes, 0.5), opts.seed, cfg);
    let rec = fed.enable_obs(1 << 16);
    let topic = fed.node(NodeAddr(0)).host.tree_topic("GPU=true", SiteId(0));
    let key = topic.key().as_u128();

    // A third of the fleet holds the resource; warm the tree.
    let holders: Vec<NodeAddr> = (0..(n_nodes / 3) as u32).map(NodeAddr).collect();
    for &h in &holders {
        fed.post_resource(h, "GPU", AttrValue::Bool(true));
    }
    fed.settle();
    fed.run_maintenance(3, SimDuration::from_millis(250));
    fed.settle();

    // ---- Part 1: one query's route path ------------------------------
    let origin = NodeAddr(n_nodes as u32 - 1);
    let issued_at = fed.sim().now();
    let id = fed
        .issue_query(
            origin,
            "SELECT 1 FROM * WHERE GPU = true",
            Some(WORKLOAD_PASSWORD),
        )
        .expect("query parses");
    fed.settle();
    let rec_q = fed.query_record(origin, id).expect("record exists");
    let satisfied = rec_q.satisfied;
    let completed = rec_q.completed_at;

    println!("Query route path ({n_nodes} nodes, seed {}):", opts.seed);
    println!("  query from {origin:?} towards tree key {key:#034x}");
    for ev in rec.events() {
        if ev.at() < issued_at {
            continue;
        }
        match ev {
            ObsEvent::QueryAttempt {
                at, node, attempt, ..
            } if node == origin => {
                println!("  {}  attempt #{attempt} issued", fmt_at(at, issued_at));
            }
            ObsEvent::RouteForward {
                at,
                node,
                key: k,
                hops,
            } if k == key => {
                println!(
                    "  {}  hop {hops}: forwarded by {node:?}",
                    fmt_at(at, issued_at)
                );
            }
            ObsEvent::RouteDeliver {
                at,
                node,
                key: k,
                hops,
            } if k == key => {
                println!(
                    "  {}  delivered at {node:?} after {hops} hop(s)",
                    fmt_at(at, issued_at)
                );
            }
            ObsEvent::QueryDone {
                at,
                node,
                satisfied,
                ..
            } if node == origin => {
                println!(
                    "  {}  query done, satisfied={satisfied}",
                    fmt_at(at, issued_at)
                );
            }
            _ => {}
        }
    }
    match completed {
        Some(done) => println!(
            "  => satisfied={satisfied} in {:.1} ms",
            done.saturating_since(issued_at).as_millis_f64()
        ),
        None => println!("  => still pending at settle"),
    }
    if !rec_q.unknown_sites.is_empty() {
        println!("  !! unknown sites in FROM: {:?}", rec_q.unknown_sites);
    }

    // A FROM clause naming a site the federation has never heard of is no
    // longer silently narrowed: the unresolved names are kept on the
    // record and surfaced here.
    let typo_id = fed
        .issue_query(
            origin,
            r#"SELECT 1 FROM "Atlantis" WHERE GPU = true"#,
            Some(WORKLOAD_PASSWORD),
        )
        .expect("query parses");
    fed.settle();
    let typo_rec = fed.query_record(origin, typo_id).expect("record exists");
    println!(
        "  misspelled FROM check: satisfied={} unknown sites {:?}",
        typo_rec.satisfied, typo_rec.unknown_sites
    );

    // ---- Part 2: the tree's repair timeline --------------------------
    // Crash a mid-tree holder and replay the repair events.
    let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0xC0FFEE);
    let victim = *holders[1..].choose(&mut rng).expect("at least two holders");
    let crash_at = fed.sim().now();
    fed.sim_mut().fail_node(victim);
    fed.run_maintenance(8, SimDuration::from_millis(250));
    fed.settle();

    println!("\nTree repair timeline after crashing {victim:?}:");
    for ev in rec.events() {
        if ev.at() < crash_at {
            continue;
        }
        let line = match ev {
            ObsEvent::HeartbeatExpire { at, detector, peer } if peer == victim => {
                Some((at, format!("{detector:?} declares {peer:?} failed")))
            }
            ObsEvent::TreeParent {
                at,
                node,
                topic,
                old,
                new,
            } if topic == key => Some((
                at,
                match old {
                    Some(old) => format!("{node:?} re-parents {old:?} -> {new:?}"),
                    None => format!("{node:?} attaches under {new:?}"),
                },
            )),
            ObsEvent::TreeGraft {
                at,
                parent,
                child,
                topic,
            } if topic == key => Some((at, format!("{parent:?} grafts child {child:?}"))),
            ObsEvent::TreeLeave {
                at,
                parent,
                child,
                topic,
            } if topic == key => Some((at, format!("{parent:?} drops child {child:?}"))),
            ObsEvent::NotChild {
                at,
                node,
                orphan,
                topic,
            } if topic == key => Some((at, format!("{node:?} NACKs orphan {orphan:?}"))),
            _ => None,
        };
        if let Some((at, what)) = line {
            println!("  {}  {what}", fmt_at(at, crash_at));
        }
    }
    let live_holders = holders.iter().filter(|h| **h != victim).count();
    println!(
        "  => root count {:?} (live holders: {live_holders}), {} tree edges, max depth {}",
        fed.tree_root_count(topic),
        fed.tree_edge_count(topic),
        fed.tree_max_depth(topic)
    );

    // ---- Part 3: a member's durable-store timeline -------------------
    // A standalone member journals to a WAL, compacts, dies, and a fresh
    // process restores from disk under a *stricter* lint policy — per
    // member, this is exactly what `rbay-node --data-dir` does.
    let dir = std::env::temp_dir().join(format!("rbay-trace-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("store dir");
    let store_rec = Recorder::enabled(1 << 12);

    println!("\nDurable store timeline ({}):", dir.display());
    {
        // Default policy: Warn — the unknown-handler script installs.
        let mut node = cluster::build_node(0, 2, 1, RbayConfig::default());
        node.host.obs = store_rec.clone();
        let (store, _) = Store::open(&dir, FsyncPolicy::Never).expect("open store");
        node.host.attach_store(Box::new(store));
        node.host
            .install_node_aa("AA = { onGte = function(q) return true end }")
            .expect("installs under Warn");
        node.host.post_resource("GPU", AttrValue::Bool(true));
        node.host
            .update_attr("CPU_utilization", AttrValue::Num(35.0));
        if let Some(s) = node.host.store.as_mut() {
            s.set_snapshot_thresholds(4, u64::MAX);
        }
        // Crosses the (lowered) compaction threshold.
        node.host
            .update_attr("CPU_utilization", AttrValue::Num(20.0));
    }
    {
        // "Restart" under Deny: the journaled handler source re-lints
        // dirty and is quarantined; everything else restores.
        let deny = RbayConfig {
            lint_policy: LintPolicy::Deny,
            ..RbayConfig::default()
        };
        let mut revived = cluster::build_node(0, 2, 1, deny);
        revived.host.obs = store_rec.clone();
        let (store, _) = Store::open(&dir, FsyncPolicy::Never).expect("reopen store");
        let summary = revived.host.attach_store(Box::new(store));
        for ev in store_rec.events() {
            match ev {
                ObsEvent::StoreAppend {
                    node,
                    kind,
                    wal_records,
                    ..
                } => println!("  {node:?} append {kind} (wal record #{wal_records})"),
                ObsEvent::StoreSnapshot {
                    node, snapshots, ..
                } => println!("  {node:?} snapshot compaction #{snapshots}"),
                ObsEvent::StoreReplay {
                    node,
                    records,
                    micros,
                    ..
                } => println!("  {node:?} replayed {records} record(s) in {micros} us"),
                ObsEvent::RestoreRelintReject { node, .. } => {
                    println!("  {node:?} quarantined a journaled handler on re-lint")
                }
                _ => {}
            }
        }
        println!(
            "  => restored {} attr(s), {} handler(s), {} quarantined: {:?}",
            summary.attrs,
            summary.handlers,
            summary.quarantined,
            revived
                .host
                .quarantined
                .iter()
                .map(|(label, _)| label.as_str())
                .collect::<Vec<_>>()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);

    let snap = rec.snapshot();
    println!(
        "\nRecorder: {} events ({} dropped), mean route hops {:.2}",
        snap.events_recorded,
        snap.events_dropped,
        snap.mean_hops()
    );
}

fn fmt_at(at: SimTime, base: SimTime) -> String {
    format!("+{:>8.1} ms", at.saturating_since(base).as_millis_f64())
}
