//! Trace-dump tool — reconstructs, from the structured observability
//! trace, (a) the overlay route one query's probe took hop by hop and
//! (b) the repair timeline of a resource tree after a node crash.
//!
//! Runs a small canned federation (deterministic under `--seed`), so the
//! output doubles as a worked example of what the trace records. The same
//! reconstruction is available on real runs through `churn --trace`.

use rand::rngs::SmallRng;
use rand::{seq::SliceRandom, SeedableRng};
use rbay_bench::HarnessOpts;
use rbay_core::{Federation, RbayConfig};
use rbay_query::AttrValue;
use rbay_workloads::WORKLOAD_PASSWORD;
use simnet::{NodeAddr, ObsEvent, SimDuration, SimTime, SiteId, Topology};

fn main() {
    let opts = HarnessOpts::from_args();
    let n_nodes = opts.scaled(40, 16);

    let cfg = RbayConfig {
        failure_detection: true,
        heartbeat_timeout: SimDuration::from_millis(400),
        commit_results: false,
        ..RbayConfig::default()
    };
    let mut fed = Federation::with_config(Topology::single_site(n_nodes, 0.5), opts.seed, cfg);
    let rec = fed.enable_obs(1 << 16);
    let topic = fed.node(NodeAddr(0)).host.tree_topic("GPU=true", SiteId(0));
    let key = topic.key().as_u128();

    // A third of the fleet holds the resource; warm the tree.
    let holders: Vec<NodeAddr> = (0..(n_nodes / 3) as u32).map(NodeAddr).collect();
    for &h in &holders {
        fed.post_resource(h, "GPU", AttrValue::Bool(true));
    }
    fed.settle();
    fed.run_maintenance(3, SimDuration::from_millis(250));
    fed.settle();

    // ---- Part 1: one query's route path ------------------------------
    let origin = NodeAddr(n_nodes as u32 - 1);
    let issued_at = fed.sim().now();
    let id = fed
        .issue_query(
            origin,
            "SELECT 1 FROM * WHERE GPU = true",
            Some(WORKLOAD_PASSWORD),
        )
        .expect("query parses");
    fed.settle();
    let rec_q = fed.query_record(origin, id).expect("record exists");
    let satisfied = rec_q.satisfied;
    let completed = rec_q.completed_at;

    println!("Query route path ({n_nodes} nodes, seed {}):", opts.seed);
    println!("  query from {origin:?} towards tree key {key:#034x}");
    for ev in rec.events() {
        if ev.at() < issued_at {
            continue;
        }
        match ev {
            ObsEvent::QueryAttempt {
                at, node, attempt, ..
            } if node == origin => {
                println!("  {}  attempt #{attempt} issued", fmt_at(at, issued_at));
            }
            ObsEvent::RouteForward {
                at,
                node,
                key: k,
                hops,
            } if k == key => {
                println!(
                    "  {}  hop {hops}: forwarded by {node:?}",
                    fmt_at(at, issued_at)
                );
            }
            ObsEvent::RouteDeliver {
                at,
                node,
                key: k,
                hops,
            } if k == key => {
                println!(
                    "  {}  delivered at {node:?} after {hops} hop(s)",
                    fmt_at(at, issued_at)
                );
            }
            ObsEvent::QueryDone {
                at,
                node,
                satisfied,
                ..
            } if node == origin => {
                println!(
                    "  {}  query done, satisfied={satisfied}",
                    fmt_at(at, issued_at)
                );
            }
            _ => {}
        }
    }
    match completed {
        Some(done) => println!(
            "  => satisfied={satisfied} in {:.1} ms",
            done.saturating_since(issued_at).as_millis_f64()
        ),
        None => println!("  => still pending at settle"),
    }
    if !rec_q.unknown_sites.is_empty() {
        println!("  !! unknown sites in FROM: {:?}", rec_q.unknown_sites);
    }

    // A FROM clause naming a site the federation has never heard of is no
    // longer silently narrowed: the unresolved names are kept on the
    // record and surfaced here.
    let typo_id = fed
        .issue_query(
            origin,
            r#"SELECT 1 FROM "Atlantis" WHERE GPU = true"#,
            Some(WORKLOAD_PASSWORD),
        )
        .expect("query parses");
    fed.settle();
    let typo_rec = fed.query_record(origin, typo_id).expect("record exists");
    println!(
        "  misspelled FROM check: satisfied={} unknown sites {:?}",
        typo_rec.satisfied, typo_rec.unknown_sites
    );

    // ---- Part 2: the tree's repair timeline --------------------------
    // Crash a mid-tree holder and replay the repair events.
    let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0xC0FFEE);
    let victim = *holders[1..].choose(&mut rng).expect("at least two holders");
    let crash_at = fed.sim().now();
    fed.sim_mut().fail_node(victim);
    fed.run_maintenance(8, SimDuration::from_millis(250));
    fed.settle();

    println!("\nTree repair timeline after crashing {victim:?}:");
    for ev in rec.events() {
        if ev.at() < crash_at {
            continue;
        }
        let line = match ev {
            ObsEvent::HeartbeatExpire { at, detector, peer } if peer == victim => {
                Some((at, format!("{detector:?} declares {peer:?} failed")))
            }
            ObsEvent::TreeParent {
                at,
                node,
                topic,
                old,
                new,
            } if topic == key => Some((
                at,
                match old {
                    Some(old) => format!("{node:?} re-parents {old:?} -> {new:?}"),
                    None => format!("{node:?} attaches under {new:?}"),
                },
            )),
            ObsEvent::TreeGraft {
                at,
                parent,
                child,
                topic,
            } if topic == key => Some((at, format!("{parent:?} grafts child {child:?}"))),
            ObsEvent::TreeLeave {
                at,
                parent,
                child,
                topic,
            } if topic == key => Some((at, format!("{parent:?} drops child {child:?}"))),
            ObsEvent::NotChild {
                at,
                node,
                orphan,
                topic,
            } if topic == key => Some((at, format!("{node:?} NACKs orphan {orphan:?}"))),
            _ => None,
        };
        if let Some((at, what)) = line {
            println!("  {}  {what}", fmt_at(at, crash_at));
        }
    }
    let live_holders = holders.iter().filter(|h| **h != victim).count();
    println!(
        "  => root count {:?} (live holders: {live_holders}), {} tree edges, max depth {}",
        fed.tree_root_count(topic),
        fed.tree_edge_count(topic),
        fed.tree_max_depth(topic)
    );

    let snap = rec.snapshot();
    println!(
        "\nRecorder: {} events ({} dropped), mean route hops {:.2}",
        snap.events_recorded,
        snap.events_dropped,
        snap.mean_hops()
    );
}

fn fmt_at(at: SimTime, base: SimTime) -> String {
    format!("+{:>8.1} ms", at.saturating_since(base).as_millis_f64())
}
