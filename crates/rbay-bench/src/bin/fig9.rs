//! Fig. 9: CDFs of composite-query latency for users in Virginia,
//! Singapore, and São Paulo, as the location predicate grows from the
//! local site to all eight sites.
//!
//! Paper setup (§IV.C): eight EC2 sites federated into one pool; every
//! site issues composite queries (three attributes, one instance type,
//! password-checked `onGet`); the location predicate varies from 1 to 8
//! sites. Expectations: single-site queries complete locally (<200 ms);
//! multi-site latency is bounded by the RTT to the farthest requested
//! site; Singapore users see the highest multi-site latencies.

use rbay_bench::{
    build_ec2_federation, default_threads, emit_json, measure_query_latencies, percentile,
    print_cdf_row, run_seeds, HarnessOpts, JsonRecord,
};
use rbay_workloads::{aws8_site_names, QueryGen};
use simnet::SiteId;

// Virginia (site 0), Singapore (site 4), São Paulo (site 7).
const LOCALES: [(&str, u16); 3] = [("Virginia", 0), ("Singapore", 4), ("SaoPaulo", 7)];

/// Runs the full locale × predicate-width grid on one seeded federation;
/// returns per-cell latency samples as `[locale][n_sites - 1]`.
fn run_grid(seed: u64, nodes_per_site: usize, queries_per_cell: usize) -> Vec<Vec<Vec<f64>>> {
    let mut fed = build_ec2_federation(nodes_per_site, seed);
    let mut qg = QueryGen::new(seed ^ 0x5151, aws8_site_names(), 5).focus_popular(7, 15);
    LOCALES
        .iter()
        .map(|&(_, site)| {
            (1..=8usize)
                .map(|n_sites| {
                    measure_query_latencies(
                        &mut fed,
                        &mut qg,
                        SiteId(site),
                        n_sites,
                        queries_per_cell,
                    )
                })
                .collect()
        })
        .collect()
}

fn main() {
    let opts = HarnessOpts::from_args();
    let nodes_per_site = opts.scaled_nodes(100, 12);
    let queries_per_cell = opts.scaled(30, 5);
    let seeds = opts.seed_list();

    println!(
        "Fig. 9: composite-query latency CDFs ({} nodes/site, {} queries per point, {} seed(s))\n",
        nodes_per_site,
        queries_per_cell,
        seeds.len()
    );
    // One full grid per seed, in parallel; merge samples in seed order.
    let grids = run_seeds(&seeds, default_threads(), |seed| {
        run_grid(seed, nodes_per_site, queries_per_cell)
    });

    for (l, (name, _)) in LOCALES.iter().enumerate() {
        println!("--- users in {name} ---");
        for n_sites in 1..=8usize {
            let mut lats: Vec<f64> = grids
                .iter()
                .flat_map(|g| g[l][n_sites - 1].iter().copied())
                .collect();
            print_cdf_row(&format!("{name} {n_sites}-site"), &mut lats);
            lats.sort_by(f64::total_cmp);
            emit_json(
                &opts,
                &JsonRecord::new("fig9")
                    .text("locale", name)
                    .int("n_sites", n_sites as u64)
                    .int("seeds", seeds.len() as u64)
                    .int("samples", lats.len() as u64)
                    .num("p50_ms", percentile(&lats, 0.50))
                    .num("p90_ms", percentile(&lats, 0.90))
                    .num("p99_ms", percentile(&lats, 0.99)),
            );
        }
        println!();
    }
}
