//! Fig. 9: CDFs of composite-query latency for users in Virginia,
//! Singapore, and São Paulo, as the location predicate grows from the
//! local site to all eight sites.
//!
//! Paper setup (§IV.C): eight EC2 sites federated into one pool; every
//! site issues composite queries (three attributes, one instance type,
//! password-checked `onGet`); the location predicate varies from 1 to 8
//! sites. Expectations: single-site queries complete locally (<200 ms);
//! multi-site latency is bounded by the RTT to the farthest requested
//! site; Singapore users see the highest multi-site latencies.

use rbay_bench::{build_ec2_federation, measure_query_latencies, print_cdf_row, HarnessOpts};
use rbay_workloads::{aws8_site_names, QueryGen};
use simnet::SiteId;

fn main() {
    let opts = HarnessOpts::from_args();
    let nodes_per_site = opts.scaled_nodes(100, 12);
    let queries_per_cell = opts.scaled(30, 5);

    println!(
        "Fig. 9: composite-query latency CDFs ({} nodes/site, {} queries per point)\n",
        nodes_per_site, queries_per_cell
    );
    let mut fed = build_ec2_federation(nodes_per_site, opts.seed);
    let mut qg = QueryGen::new(opts.seed ^ 0x5151, aws8_site_names(), 5).focus_popular(7, 15);

    // Virginia (site 0), Singapore (site 4), São Paulo (site 7).
    for (name, site) in [("Virginia", 0u16), ("Singapore", 4), ("SaoPaulo", 7)] {
        println!("--- users in {name} ---");
        for n_sites in 1..=8usize {
            let mut lats = measure_query_latencies(
                &mut fed,
                &mut qg,
                SiteId(site),
                n_sites,
                queries_per_cell,
            );
            print_cdf_row(&format!("{name} {n_sites}-site"), &mut lats);
        }
        println!();
    }
}
