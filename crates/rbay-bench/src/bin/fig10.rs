//! Fig. 10: average query latency and standard deviation for users in
//! every locale, as the number of requesting sites grows 1 → 8.
//!
//! Expectations (paper §IV.C): latency rises roughly linearly from 1 to 5
//! sites, then plateaus for 6–8 sites (the max-RTT site is already
//! included); local-site discovery stays under ~200 ms; multi-site
//! searches land around 600 ms.

use rbay_bench::{
    build_ec2_federation, default_threads, emit_json, measure_query_latencies, run_seeds, stats,
    HarnessOpts, JsonRecord,
};
use rbay_workloads::{aws8_site_names, QueryGen};
use simnet::topology::AWS8_SITE_NAMES;
use simnet::SiteId;

/// Runs the full locale × predicate-width grid on one seeded federation;
/// returns per-cell latency samples as `[site][n_sites - 1]`.
fn run_grid(seed: u64, nodes_per_site: usize, queries_per_cell: usize) -> Vec<Vec<Vec<f64>>> {
    let mut fed = build_ec2_federation(nodes_per_site, seed);
    let mut qg = QueryGen::new(seed ^ 0xF00D, aws8_site_names(), 5).focus_popular(7, 15);
    (0..AWS8_SITE_NAMES.len())
        .map(|s| {
            (1..=8usize)
                .map(|n_sites| {
                    measure_query_latencies(
                        &mut fed,
                        &mut qg,
                        SiteId(s as u16),
                        n_sites,
                        queries_per_cell,
                    )
                })
                .collect()
        })
        .collect()
}

fn main() {
    let opts = HarnessOpts::from_args();
    let nodes_per_site = opts.scaled_nodes(100, 12);
    let queries_per_cell = opts.scaled(25, 5);
    let seeds = opts.seed_list();

    println!("Fig. 10: avg ± stddev of composite-query latency (ms) vs requesting sites");
    println!(
        "({} nodes/site, {} queries per cell, {} seed(s))\n",
        nodes_per_site,
        queries_per_cell,
        seeds.len()
    );
    // One full grid per seed, in parallel; merge samples in seed order.
    let grids = run_seeds(&seeds, default_threads(), |seed| {
        run_grid(seed, nodes_per_site, queries_per_cell)
    });

    print!("{:<14}", "locale");
    for n in 1..=8 {
        print!("{:>16}", format!("{n}-site"));
    }
    println!();
    for (s, name) in AWS8_SITE_NAMES.iter().enumerate() {
        print!("{name:<14}");
        for n_sites in 1..=8usize {
            let lats: Vec<f64> = grids
                .iter()
                .flat_map(|g| g[s][n_sites - 1].iter().copied())
                .collect();
            match stats(&lats) {
                Some(st) => {
                    print!("{:>16}", format!("{:.0}±{:.0}", st.mean, st.stddev));
                    emit_json(
                        &opts,
                        &JsonRecord::new("fig10")
                            .text("locale", name)
                            .int("n_sites", n_sites as u64)
                            .int("seeds", seeds.len() as u64)
                            .int("samples", st.n as u64)
                            .num("mean_ms", st.mean)
                            .num("stddev_ms", st.stddev),
                    );
                }
                None => print!("{:>16}", "-"),
            }
        }
        println!();
    }
}
