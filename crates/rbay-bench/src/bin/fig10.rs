//! Fig. 10: average query latency and standard deviation for users in
//! every locale, as the number of requesting sites grows 1 → 8.
//!
//! Expectations (paper §IV.C): latency rises roughly linearly from 1 to 5
//! sites, then plateaus for 6–8 sites (the max-RTT site is already
//! included); local-site discovery stays under ~200 ms; multi-site
//! searches land around 600 ms.

use rbay_bench::{build_ec2_federation, measure_query_latencies, stats, HarnessOpts};
use rbay_workloads::{aws8_site_names, QueryGen};
use simnet::topology::AWS8_SITE_NAMES;
use simnet::SiteId;

fn main() {
    let opts = HarnessOpts::from_args();
    let nodes_per_site = opts.scaled_nodes(100, 12);
    let queries_per_cell = opts.scaled(25, 5);

    println!(
        "Fig. 10: avg ± stddev of composite-query latency (ms) vs requesting sites"
    );
    println!(
        "({} nodes/site, {} queries per cell)\n",
        nodes_per_site, queries_per_cell
    );
    let mut fed = build_ec2_federation(nodes_per_site, opts.seed);
    let mut qg = QueryGen::new(opts.seed ^ 0xF00D, aws8_site_names(), 5).focus_popular(7, 15);

    print!("{:<14}", "locale");
    for n in 1..=8 {
        print!("{:>16}", format!("{n}-site"));
    }
    println!();
    for (s, name) in AWS8_SITE_NAMES.iter().enumerate() {
        print!("{name:<14}");
        for n_sites in 1..=8usize {
            let lats = measure_query_latencies(
                &mut fed,
                &mut qg,
                SiteId(s as u16),
                n_sites,
                queries_per_cell,
            );
            match stats(&lats) {
                Some(st) => print!("{:>16}", format!("{:.0}±{:.0}", st.mean, st.stddev)),
                None => print!("{:>16}", "-"),
            }
        }
        println!();
    }
}
