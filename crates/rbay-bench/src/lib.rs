//! # rbay-bench — harnesses regenerating the paper's tables and figures
//!
//! One binary per experiment:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table2` | Table II — inter-site RTT matrix |
//! | `fig8a` | Fig. 8a — hops vs number of nodes |
//! | `fig8b` | Fig. 8b — forwarding load balance across NodeIds |
//! | `fig8c` | Fig. 8c — AA memory vs the PAST baseline |
//! | `fig9` | Fig. 9 — per-user query-latency CDFs (Virginia, Singapore, São Paulo) |
//! | `fig10` | Fig. 10 — average latency ± stddev vs number of requesting sites |
//! | `fig11` | Fig. 11 — tree construction (onSubscribe) and command delivery (onDeliver) latency |
//! | `ablation_central` | §II.A argument — central master load vs RBAY's decentralized trees |
//! | `ablation_aggregation` | design ablation — aggregation interval vs root-view staleness |
//! | `churn` | §VI future work — query success/recall/latency under node churn |
//! | `openloop` | §IV.A arrival process — concurrent queries at a fixed rate, conflicts + backoff |
//!
//! Every binary accepts `--seed <n>` and `--scale <f>` (scales node and
//! query counts; `--scale 1` matches the defaults used in
//! `EXPERIMENTS.md`; larger scales approach the paper's full 16,000-agent
//! setup). Output is plain aligned text, one row per plotted point.
//!
//! The experiment binaries additionally accept:
//!
//! * `--seeds <n>` — repeat the experiment over `n` consecutive seeds
//!   (`seed, seed+1, …`) via [`run_seeds`], which fans the independent
//!   simulations out over worker threads and merges the results in seed
//!   order, so the output is identical regardless of thread count.
//! * `--json` — additionally append machine-readable result records to
//!   [`BENCH_JSON_PATH`] (`BENCH_simnet.json`) in the working directory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;

use rbay_core::{Federation, QueryId, RbayConfig, RbayEvent};
use rbay_workloads::{populate_ec2_federation, QueryGen, ScenarioConfig, WORKLOAD_PASSWORD};
use simnet::{NodeAddr, SimDuration, SiteId, Topology};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Common command-line options of every harness.
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    /// RNG seed.
    pub seed: u64,
    /// Size multiplier for node/query counts.
    pub scale: f64,
    /// Overrides the multiplier for *node* counts only (so a 16,000-agent
    /// overlay can be validated without multiplying query counts too).
    pub node_scale: Option<f64>,
    /// Number of consecutive seeds to run (`--seeds`), starting at `seed`.
    pub seeds: usize,
    /// Whether to append machine-readable records to [`BENCH_JSON_PATH`].
    pub json: bool,
    /// Whether to enable the structured observability event trace
    /// (`--trace`): harnesses that support it print per-event timelines.
    pub trace: bool,
    /// Whether to collect and report observability metrics (`--metrics`):
    /// failure-detection latency, false-positive counts, convergence
    /// rounds, appended to text output and JSON records.
    pub metrics: bool,
    /// Where to dump a `.schedule` counterexample if an invariant trips
    /// (`--schedule-out FILE`): the violating seed plus decision trace,
    /// replayable through `rbay-check replay FILE`.
    pub schedule_out: Option<String>,
}

impl HarnessOpts {
    /// Parses `--seed <n>` and `--scale <f>` from `std::env::args`.
    /// Unknown flags abort with a usage message.
    pub fn from_args() -> Self {
        let mut opts = HarnessOpts {
            seed: 42,
            scale: 1.0,
            node_scale: None,
            seeds: 1,
            json: false,
            trace: false,
            metrics: false,
            schedule_out: None,
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--seed" => {
                    opts.seed = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs an integer"));
                    i += 2;
                }
                "--scale" => {
                    opts.scale = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--scale needs a number"));
                    i += 2;
                }
                "--node-scale" => {
                    opts.node_scale = Some(
                        args.get(i + 1)
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage("--node-scale needs a number")),
                    );
                    i += 2;
                }
                "--seeds" => {
                    opts.seeds = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .filter(|n| *n >= 1)
                        .unwrap_or_else(|| usage("--seeds needs a positive integer"));
                    i += 2;
                }
                "--json" => {
                    opts.json = true;
                    i += 1;
                }
                "--trace" => {
                    opts.trace = true;
                    i += 1;
                }
                "--metrics" => {
                    opts.metrics = true;
                    i += 1;
                }
                "--schedule-out" => {
                    opts.schedule_out = Some(
                        args.get(i + 1)
                            .cloned()
                            .unwrap_or_else(|| usage("--schedule-out needs a file path")),
                    );
                    i += 2;
                }
                other => usage(&format!("unknown flag `{other}`")),
            }
        }
        opts
    }

    /// Scales a count, keeping at least `min`.
    pub fn scaled(&self, base: usize, min: usize) -> usize {
        ((base as f64 * self.scale) as usize).max(min)
    }

    /// Scales a *node* count: uses `--node-scale` when given, else
    /// `--scale`.
    pub fn scaled_nodes(&self, base: usize, min: usize) -> usize {
        let s = self.node_scale.unwrap_or(self.scale);
        ((base as f64 * s) as usize).max(min)
    }

    /// The consecutive seed list `[seed, seed+1, …]` selected by `--seeds`.
    pub fn seed_list(&self) -> Vec<u64> {
        (0..self.seeds as u64).map(|i| self.seed + i).collect()
    }
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "error: {msg}\n\
         usage: <bin> [--seed N] [--scale F] [--node-scale F] [--seeds N] [--json] [--trace] [--metrics] [--schedule-out FILE]"
    );
    std::process::exit(2);
}

/// Worker-thread count for [`run_seeds`]: the host's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `run(seed)` once per seed, fanning the independent runs out over
/// `threads` worker threads, and returns the results **in seed order**.
///
/// Each seed gets its own simulation inside `run`, so runs share nothing
/// and the merged output is bit-identical no matter how many threads
/// execute them (asserted by `run_seeds_thread_count_is_invisible`). With
/// `threads <= 1` the seeds run inline on the calling thread.
///
/// The worker pool is hand-rolled on `std::thread::scope` plus an atomic
/// work index: the build environment cannot fetch `rayon`, and this is the
/// only shape of parallelism the harnesses need.
pub fn run_seeds<T, F>(seeds: &[u64], threads: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let threads = threads.clamp(1, seeds.len().max(1));
    if threads == 1 {
        return seeds.iter().map(|&s| run(s)).collect();
    }
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(seeds.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&seed) = seeds.get(i) else { break };
                let out = run(seed);
                done.lock().expect("result sink poisoned").push((i, out));
            });
        }
    });
    let mut done = done.into_inner().expect("workers finished");
    done.sort_by_key(|(i, _)| *i);
    assert_eq!(done.len(), seeds.len(), "every seed produced a result");
    done.into_iter().map(|(_, t)| t).collect()
}

/// Where `--json` appends benchmark records (relative to the working
/// directory).
pub const BENCH_JSON_PATH: &str = "BENCH_simnet.json";

/// A flat JSON object under construction — the environment has no `serde`,
/// so records are rendered by hand. Keys are emitted in insertion order.
#[derive(Debug, Clone)]
pub struct JsonRecord {
    fields: Vec<(String, String)>,
}

impl JsonRecord {
    /// Starts a record tagged with the benchmark name.
    pub fn new(bench: &str) -> Self {
        let mut r = JsonRecord { fields: Vec::new() };
        r.push_raw("bench", &json_string(bench));
        r
    }

    fn push_raw(&mut self, key: &str, rendered: &str) {
        self.fields.push((key.to_string(), rendered.to_string()));
    }

    /// Adds a string field.
    pub fn text(mut self, key: &str, value: &str) -> Self {
        self.push_raw(key, &json_string(value));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.push_raw(key, &value.to_string());
        self
    }

    /// Adds a float field (non-finite values become `null`).
    pub fn num(mut self, key: &str, value: f64) -> Self {
        let rendered = if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_string()
        };
        self.push_raw(key, &rendered);
        self
    }

    /// Adds a float field only when the value is finite. Metrics with no
    /// observations in a run (e.g. failure-detection latency under zero
    /// churn) divide 0/0 to NaN; omitting the key keeps downstream tooling
    /// free of `null` special-casing while `num` stays available for
    /// fields that must always be present.
    pub fn num_opt(mut self, key: &str, value: f64) -> Self {
        if value.is_finite() {
            self.push_raw(key, &format!("{value}"));
        }
        self
    }

    /// Renders the record as a single-line JSON object.
    pub fn render(&self) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("{}: {v}", json_string(k)))
            .collect();
        format!("{{{}}}", body.join(", "))
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Appends `record` to the JSON array in `path`, creating the file (as a
/// one-element array) when missing. The file stays a valid JSON array
/// after every append.
pub fn append_json_record(path: &str, record: &JsonRecord) -> std::io::Result<()> {
    let line = record.render();
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let trimmed = existing.trim_end();
    let updated = if trimmed.is_empty() {
        format!("[\n  {line}\n]\n")
    } else {
        let Some(body) = trimmed.strip_suffix(']') else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{path} is not a JSON array; refusing to append"),
            ));
        };
        let body = body.trim_end();
        if body == "[" {
            format!("[\n  {line}\n]\n")
        } else {
            format!("{body},\n  {line}\n]\n")
        }
    };
    std::fs::write(path, updated)
}

/// Writes a `.schedule` counterexample to the `--schedule-out` path when
/// one is set. The first violation of the process wins — later ones are
/// reported but do not overwrite the file, so "the winning seed" is
/// stable. No-op (beyond the caller's own report) without the flag.
pub fn emit_schedule(opts: &HarnessOpts, file: &rbay_check::ScheduleFile) {
    static WRITTEN: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
    let Some(path) = &opts.schedule_out else {
        return;
    };
    if WRITTEN.swap(true, Ordering::Relaxed) {
        eprintln!("note: {path} already holds this run's first violation; not overwriting");
        return;
    }
    match std::fs::write(path, file.render()) {
        Ok(()) => eprintln!("schedule written to {path}; replay with: rbay-check replay {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

/// Appends `record` to [`BENCH_JSON_PATH`] when `opts.json` is set,
/// reporting (but not failing on) I/O errors.
pub fn emit_json(opts: &HarnessOpts, record: &JsonRecord) {
    if !opts.json {
        return;
    }
    if let Err(e) = append_json_record(BENCH_JSON_PATH, record) {
        eprintln!("warning: could not write {BENCH_JSON_PATH}: {e}");
    }
}

/// Basic statistics over a latency sample.
#[derive(Debug, Clone)]
pub struct Stats {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes summary statistics (`None` for an empty sample).
pub fn stats(xs: &[f64]) -> Option<Stats> {
    if xs.is_empty() {
        return None;
    }
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    Some(Stats {
        n,
        mean,
        stddev: var.sqrt(),
        min: xs.iter().cloned().fold(f64::INFINITY, f64::min),
        max: xs.iter().cloned().fold(0.0, f64::max),
    })
}

/// The `p`-quantile (0..=1) of a sorted sample, by linear interpolation.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let pos = p.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
    }
}

/// Builds the eight-site EC2 federation populated with the paper's
/// workload, maintenance already run so tree aggregates are warm.
pub fn build_ec2_federation(nodes_per_site: usize, seed: u64) -> Federation {
    build_ec2_federation_with(nodes_per_site, seed, true)
}

/// Like [`build_ec2_federation`] but with administrative isolation
/// switchable: `site_isolation = false` reproduces the Fig. 11 deployment
/// where per-site trees rendezvous on the global ring.
pub fn build_ec2_federation_with(
    nodes_per_site: usize,
    seed: u64,
    site_isolation: bool,
) -> Federation {
    let cfg = RbayConfig {
        commit_results: false, // measurement queries release their finds
        site_isolation,
        ..RbayConfig::default()
    };
    let mut fed = Federation::with_config(Topology::aws_ec2_8_sites(nodes_per_site), seed, cfg);
    let scenario = ScenarioConfig {
        extra_attrs_per_node: 5,
        ..ScenarioConfig::default()
    };
    populate_ec2_federation(&mut fed, seed ^ 0xA5A5, &scenario);
    fed.run_maintenance(5, SimDuration::from_millis(250));
    fed.settle();
    fed
}

/// Runs `queries_per_cell` composite queries from `home` with a location
/// predicate spanning `n_sites`, returning per-query latencies (ms).
/// Satisfied and timed-out queries alike contribute: the paper reports
/// user-observed latency.
pub fn measure_query_latencies(
    fed: &mut Federation,
    qg: &mut QueryGen,
    home: SiteId,
    n_sites: usize,
    queries_per_cell: usize,
) -> Vec<f64> {
    let homes = fed.sim().topology().nodes_of_site(home);
    let mut out = Vec::with_capacity(queries_per_cell);
    for i in 0..queries_per_cell {
        let origin = homes[2 + (i % (homes.len() - 2))];
        let text = qg.composite(home, n_sites, 1);
        let id: QueryId = fed
            .issue_query(origin, &text, Some(WORKLOAD_PASSWORD))
            .expect("generated query parses");
        fed.settle();
        let rec = fed.query_record(origin, id).expect("record exists");
        if let Some(done) = rec.completed_at {
            out.push(done.saturating_since(rec.issued_at).as_millis_f64());
        }
        // Space queries out so reservations lapse between measurements.
        let horizon = fed.sim().now() + SimDuration::from_millis(2_500);
        fed.run_until(horizon);
    }
    out
}

/// Collects every node's `Subscribed` latencies, grouped by site (Fig. 11
/// onSubscribe).
pub fn subscribe_latencies_by_site(fed: &Federation) -> Vec<Vec<f64>> {
    let topo = fed.sim().topology();
    let mut per_site = vec![Vec::new(); topo.site_count()];
    for i in 0..topo.node_count() as u32 {
        let n = NodeAddr(i);
        let site = topo.site_of(n).0 as usize;
        for ev in fed.events(n) {
            if let RbayEvent::Subscribed {
                requested_at,
                attached_at,
                ..
            } = ev
            {
                per_site[site].push(attached_at.saturating_since(*requested_at).as_millis_f64());
            }
        }
    }
    per_site
}

/// Collects admin-delivery latencies per site for the given command ids
/// (Fig. 11 onDeliver).
pub fn delivery_latencies_by_site(fed: &Federation, cmd_ids: &[u64]) -> Vec<Vec<f64>> {
    let topo = fed.sim().topology();
    let mut per_site = vec![Vec::new(); topo.site_count()];
    for i in 0..topo.node_count() as u32 {
        let n = NodeAddr(i);
        let site = topo.site_of(n).0 as usize;
        for ev in fed.events(n) {
            if let RbayEvent::AdminDelivered {
                cmd_id,
                issued_at,
                delivered_at,
            } = ev
            {
                if cmd_ids.contains(cmd_id) {
                    per_site[site].push(delivered_at.saturating_since(*issued_at).as_millis_f64());
                }
            }
        }
    }
    per_site
}

/// Prints a labelled CDF line: selected percentiles of a sample.
pub fn print_cdf_row(label: &str, xs: &mut [f64]) {
    xs.sort_by(f64::total_cmp);
    if xs.is_empty() {
        println!("{label:<24} (no samples)");
        return;
    }
    println!(
        "{label:<24} n={:<5} p10={:>8.1} p25={:>8.1} p50={:>8.1} p75={:>8.1} p90={:>8.1} p99={:>8.1}",
        xs.len(),
        percentile(xs, 0.10),
        percentile(xs, 0.25),
        percentile(xs, 0.50),
        percentile(xs, 0.75),
        percentile(xs, 0.90),
        percentile(xs, 0.99),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert_eq!(percentile(&xs, 0.5), 2.5);
        assert!(percentile(&[], 0.5).is_nan());
    }

    #[test]
    fn stats_basics() {
        let s = stats(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.stddev, 2.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!(stats(&[]).is_none());
    }

    #[test]
    fn small_ec2_federation_answers_measurement_queries() {
        let mut fed = build_ec2_federation(8, 3);
        let mut qg = QueryGen::new(4, rbay_workloads::aws8_site_names(), 5);
        let lats = measure_query_latencies(&mut fed, &mut qg, SiteId(0), 2, 3);
        assert_eq!(lats.len(), 3, "every query completes");
        assert!(lats.iter().all(|l| *l > 0.0));
    }

    #[test]
    fn subscribe_latencies_cover_every_site() {
        let fed = build_ec2_federation(6, 5);
        let per_site = subscribe_latencies_by_site(&fed);
        assert_eq!(per_site.len(), 8);
        assert!(per_site.iter().all(|s| !s.is_empty()));
    }

    /// One independent simulation per seed, returning its full deterministic
    /// fingerprint (clock, stats, trace).
    fn fingerprint(seed: u64) -> (simnet::SimTime, simnet::NetStats, Vec<simnet::TraceEvent>) {
        use simnet::{Actor, Context, MessageSize, SimTime, Simulation};

        #[derive(Debug)]
        struct Ping(u32);
        impl MessageSize for Ping {}
        struct Bouncer;
        impl Actor for Bouncer {
            type Msg = Ping;
            fn on_message(&mut self, ctx: &mut Context<'_, Ping>, from: NodeAddr, msg: Ping) {
                if msg.0 > 0 {
                    ctx.send(from, Ping(msg.0 - 1));
                }
            }
        }
        let mut sim = Simulation::new(Topology::aws_ec2_8_sites(2), seed, |_| Bouncer);
        sim.enable_trace(1 << 12);
        for i in 0..8u32 {
            sim.schedule_call(SimTime::ZERO, NodeAddr(i), move |_, ctx| {
                ctx.send(NodeAddr((i + 9) % 16), Ping(4 + i));
            });
        }
        sim.run_until_idle();
        (sim.now(), sim.stats().clone(), sim.trace().to_vec())
    }

    #[test]
    fn run_seeds_thread_count_is_invisible() {
        // The parallel driver must merge results in seed order: a 1-thread
        // run and a 4-thread run over the same seeds are indistinguishable.
        let seeds: Vec<u64> = (100..110).collect();
        let serial = run_seeds(&seeds, 1, fingerprint);
        let parallel = run_seeds(&seeds, 4, fingerprint);
        assert_eq!(serial, parallel);
        // And distinct seeds really exercise distinct schedules.
        assert_ne!(serial[0], serial[1]);
    }

    #[test]
    fn run_seeds_handles_edge_shapes() {
        let empty: Vec<u64> = run_seeds(&[], 8, |s| s);
        assert!(empty.is_empty());
        let one = run_seeds(&[7], 8, |s| s * 2);
        assert_eq!(one, vec![14]);
        let more_threads_than_seeds = run_seeds(&[1, 2], 16, |s| s + 1);
        assert_eq!(more_threads_than_seeds, vec![2, 3]);
    }

    #[test]
    fn num_opt_omits_non_finite_fields() {
        let rec = JsonRecord::new("churn")
            .num_opt("present", 1.5)
            .num_opt("absent", f64::NAN)
            .num_opt("also_absent", f64::INFINITY);
        assert_eq!(rec.render(), r#"{"bench": "churn", "present": 1.5}"#);
    }

    #[test]
    fn json_records_render_and_append() {
        let rec = JsonRecord::new("fig8a")
            .int("nodes", 1000)
            .num("avg_hops", 2.5)
            .num("bad", f64::NAN)
            .text("note", "a \"quoted\" value");
        assert_eq!(
            rec.render(),
            r#"{"bench": "fig8a", "nodes": 1000, "avg_hops": 2.5, "bad": null, "note": "a \"quoted\" value"}"#
        );

        let path = std::env::temp_dir().join(format!("rbay_bench_json_{}", std::process::id()));
        let path = path.to_str().expect("utf-8 temp path");
        let _ = std::fs::remove_file(path);
        append_json_record(path, &rec).unwrap();
        append_json_record(path, &JsonRecord::new("fig9").int("seeds", 3)).unwrap();
        let body = std::fs::read_to_string(path).unwrap();
        std::fs::remove_file(path).unwrap();
        assert!(body.starts_with("[\n"), "{body}");
        assert!(body.trim_end().ends_with(']'), "{body}");
        assert_eq!(body.matches("\"bench\"").count(), 2, "{body}");
        assert!(body.contains("},\n"), "records comma-separated: {body}");
    }
}
