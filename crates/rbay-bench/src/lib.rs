//! # rbay-bench — harnesses regenerating the paper's tables and figures
//!
//! One binary per experiment:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table2` | Table II — inter-site RTT matrix |
//! | `fig8a` | Fig. 8a — hops vs number of nodes |
//! | `fig8b` | Fig. 8b — forwarding load balance across NodeIds |
//! | `fig8c` | Fig. 8c — AA memory vs the PAST baseline |
//! | `fig9` | Fig. 9 — per-user query-latency CDFs (Virginia, Singapore, São Paulo) |
//! | `fig10` | Fig. 10 — average latency ± stddev vs number of requesting sites |
//! | `fig11` | Fig. 11 — tree construction (onSubscribe) and command delivery (onDeliver) latency |
//! | `ablation_central` | §II.A argument — central master load vs RBAY's decentralized trees |
//! | `ablation_aggregation` | design ablation — aggregation interval vs root-view staleness |
//! | `churn` | §VI future work — query success/recall/latency under node churn |
//! | `openloop` | §IV.A arrival process — concurrent queries at a fixed rate, conflicts + backoff |
//!
//! Every binary accepts `--seed <n>` and `--scale <f>` (scales node and
//! query counts; `--scale 1` matches the defaults used in
//! `EXPERIMENTS.md`; larger scales approach the paper's full 16,000-agent
//! setup). Output is plain aligned text, one row per plotted point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rbay_core::{Federation, QueryId, RbayConfig, RbayEvent};
use rbay_workloads::{populate_ec2_federation, QueryGen, ScenarioConfig, WORKLOAD_PASSWORD};
use simnet::{NodeAddr, SimDuration, SiteId, Topology};

/// Common command-line options of every harness.
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    /// RNG seed.
    pub seed: u64,
    /// Size multiplier for node/query counts.
    pub scale: f64,
    /// Overrides the multiplier for *node* counts only (so a 16,000-agent
    /// overlay can be validated without multiplying query counts too).
    pub node_scale: Option<f64>,
}

impl HarnessOpts {
    /// Parses `--seed <n>` and `--scale <f>` from `std::env::args`.
    /// Unknown flags abort with a usage message.
    pub fn from_args() -> Self {
        let mut opts = HarnessOpts {
            seed: 42,
            scale: 1.0,
            node_scale: None,
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--seed" => {
                    opts.seed = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs an integer"));
                    i += 2;
                }
                "--scale" => {
                    opts.scale = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--scale needs a number"));
                    i += 2;
                }
                "--node-scale" => {
                    opts.node_scale = Some(
                        args.get(i + 1)
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage("--node-scale needs a number")),
                    );
                    i += 2;
                }
                other => usage(&format!("unknown flag `{other}`")),
            }
        }
        opts
    }

    /// Scales a count, keeping at least `min`.
    pub fn scaled(&self, base: usize, min: usize) -> usize {
        ((base as f64 * self.scale) as usize).max(min)
    }

    /// Scales a *node* count: uses `--node-scale` when given, else
    /// `--scale`.
    pub fn scaled_nodes(&self, base: usize, min: usize) -> usize {
        let s = self.node_scale.unwrap_or(self.scale);
        ((base as f64 * s) as usize).max(min)
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}\nusage: <bin> [--seed N] [--scale F] [--node-scale F]");
    std::process::exit(2);
}

/// Basic statistics over a latency sample.
#[derive(Debug, Clone)]
pub struct Stats {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes summary statistics (`None` for an empty sample).
pub fn stats(xs: &[f64]) -> Option<Stats> {
    if xs.is_empty() {
        return None;
    }
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    Some(Stats {
        n,
        mean,
        stddev: var.sqrt(),
        min: xs.iter().cloned().fold(f64::INFINITY, f64::min),
        max: xs.iter().cloned().fold(0.0, f64::max),
    })
}

/// The `p`-quantile (0..=1) of a sorted sample, by linear interpolation.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let pos = p.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
    }
}

/// Builds the eight-site EC2 federation populated with the paper's
/// workload, maintenance already run so tree aggregates are warm.
pub fn build_ec2_federation(nodes_per_site: usize, seed: u64) -> Federation {
    build_ec2_federation_with(nodes_per_site, seed, true)
}

/// Like [`build_ec2_federation`] but with administrative isolation
/// switchable: `site_isolation = false` reproduces the Fig. 11 deployment
/// where per-site trees rendezvous on the global ring.
pub fn build_ec2_federation_with(
    nodes_per_site: usize,
    seed: u64,
    site_isolation: bool,
) -> Federation {
    let cfg = RbayConfig {
        commit_results: false, // measurement queries release their finds
        site_isolation,
        ..RbayConfig::default()
    };
    let mut fed = Federation::with_config(Topology::aws_ec2_8_sites(nodes_per_site), seed, cfg);
    let scenario = ScenarioConfig {
        extra_attrs_per_node: 5,
        ..ScenarioConfig::default()
    };
    populate_ec2_federation(&mut fed, seed ^ 0xA5A5, &scenario);
    fed.run_maintenance(5, SimDuration::from_millis(250));
    fed.settle();
    fed
}

/// Runs `queries_per_cell` composite queries from `home` with a location
/// predicate spanning `n_sites`, returning per-query latencies (ms).
/// Satisfied and timed-out queries alike contribute: the paper reports
/// user-observed latency.
pub fn measure_query_latencies(
    fed: &mut Federation,
    qg: &mut QueryGen,
    home: SiteId,
    n_sites: usize,
    queries_per_cell: usize,
) -> Vec<f64> {
    let homes = fed.sim().topology().nodes_of_site(home);
    let mut out = Vec::with_capacity(queries_per_cell);
    for i in 0..queries_per_cell {
        let origin = homes[2 + (i % (homes.len() - 2))];
        let text = qg.composite(home, n_sites, 1);
        let id: QueryId = fed
            .issue_query(origin, &text, Some(WORKLOAD_PASSWORD))
            .expect("generated query parses");
        fed.settle();
        let rec = fed.query_record(origin, id).expect("record exists");
        if let Some(done) = rec.completed_at {
            out.push(done.saturating_since(rec.issued_at).as_millis_f64());
        }
        // Space queries out so reservations lapse between measurements.
        let horizon = fed.sim().now() + SimDuration::from_millis(2_500);
        fed.run_until(horizon);
    }
    out
}

/// Collects every node's `Subscribed` latencies, grouped by site (Fig. 11
/// onSubscribe).
pub fn subscribe_latencies_by_site(fed: &Federation) -> Vec<Vec<f64>> {
    let topo = fed.sim().topology();
    let mut per_site = vec![Vec::new(); topo.site_count()];
    for i in 0..topo.node_count() as u32 {
        let n = NodeAddr(i);
        let site = topo.site_of(n).0 as usize;
        for ev in fed.events(n) {
            if let RbayEvent::Subscribed {
                requested_at,
                attached_at,
                ..
            } = ev
            {
                per_site[site]
                    .push(attached_at.saturating_since(*requested_at).as_millis_f64());
            }
        }
    }
    per_site
}

/// Collects admin-delivery latencies per site for the given command ids
/// (Fig. 11 onDeliver).
pub fn delivery_latencies_by_site(fed: &Federation, cmd_ids: &[u64]) -> Vec<Vec<f64>> {
    let topo = fed.sim().topology();
    let mut per_site = vec![Vec::new(); topo.site_count()];
    for i in 0..topo.node_count() as u32 {
        let n = NodeAddr(i);
        let site = topo.site_of(n).0 as usize;
        for ev in fed.events(n) {
            if let RbayEvent::AdminDelivered {
                cmd_id,
                issued_at,
                delivered_at,
            } = ev
            {
                if cmd_ids.contains(cmd_id) {
                    per_site[site]
                        .push(delivered_at.saturating_since(*issued_at).as_millis_f64());
                }
            }
        }
    }
    per_site
}

/// Prints a labelled CDF line: selected percentiles of a sample.
pub fn print_cdf_row(label: &str, xs: &mut [f64]) {
    xs.sort_by(f64::total_cmp);
    if xs.is_empty() {
        println!("{label:<24} (no samples)");
        return;
    }
    println!(
        "{label:<24} n={:<5} p10={:>8.1} p25={:>8.1} p50={:>8.1} p75={:>8.1} p90={:>8.1} p99={:>8.1}",
        xs.len(),
        percentile(xs, 0.10),
        percentile(xs, 0.25),
        percentile(xs, 0.50),
        percentile(xs, 0.75),
        percentile(xs, 0.90),
        percentile(xs, 0.99),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert_eq!(percentile(&xs, 0.5), 2.5);
        assert!(percentile(&[], 0.5).is_nan());
    }

    #[test]
    fn stats_basics() {
        let s = stats(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.stddev, 2.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!(stats(&[]).is_none());
    }

    #[test]
    fn small_ec2_federation_answers_measurement_queries() {
        let mut fed = build_ec2_federation(8, 3);
        let mut qg = QueryGen::new(4, rbay_workloads::aws8_site_names(), 5);
        let lats = measure_query_latencies(&mut fed, &mut qg, SiteId(0), 2, 3);
        assert_eq!(lats.len(), 3, "every query completes");
        assert!(lats.iter().all(|l| *l > 0.0));
    }

    #[test]
    fn subscribe_latencies_cover_every_site() {
        let fed = build_ec2_federation(6, 5);
        let per_site = subscribe_latencies_by_site(&fed);
        assert_eq!(per_site.len(), 8);
        assert!(per_site.iter().all(|s| !s.is_empty()));
    }
}
