//! Shared pieces of the real-socket deployment: node construction, the
//! loopback address plan, and the control protocol the `cluster` harness
//! speaks to `rbay-node` daemons.
//!
//! Address plan: daemon `i` of an `n`-daemon deployment is overlay address
//! `NodeAddr(i)` listening on `127.0.0.1:(base_port + i)`. Sites are
//! contiguous blocks of indices (`ceil(n / num_sites)` each) named
//! `site0..`, with each site's three lowest addresses as its border
//! routers — the same layout `Federation` uses in simulation, so a
//! converged TCP deployment and a simulated one answer queries through
//! identical gateway logic.

use aascript::SharedSandbox;
use pastry::{NodeId, NodeInfo, PastryNode};
use rbay_core::{Candidate, RbayConfig, RbayHost, RbayNode};
use rbay_wire::{Reader, Resolver, Wire, WireError};
use scribe::ScribeLayer;
use simnet::{NodeAddr, SiteId};
use std::net::{IpAddr, Ipv4Addr, SocketAddr};
use std::rc::Rc;
use std::sync::Arc;

/// Default first TCP port of a local deployment; daemon `i` listens on
/// `base + i`.
pub const DEFAULT_BASE_PORT: u16 = 46_100;

/// The socket address of overlay node `addr` under `base_port`.
pub fn sock_of(base_port: u16, addr: NodeAddr) -> SocketAddr {
    SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), base_port + addr.0 as u16)
}

/// A [`Resolver`] for an `n`-daemon loopback deployment.
pub fn resolver(base_port: u16, count: u32) -> Resolver {
    Arc::new(move |addr: NodeAddr| {
        if addr.0 < count {
            Some(sock_of(base_port, addr))
        } else {
            None
        }
    })
}

/// The site of daemon `index` in an `n`-daemon, `num_sites`-site plan:
/// contiguous blocks, the same split `Topology` produces for equal-sized
/// sites.
pub fn site_of(index: u32, count: u32, num_sites: u16) -> SiteId {
    let per = (count as usize).div_ceil(num_sites as usize) as u32;
    SiteId(((index / per) as u16).min(num_sites - 1))
}

/// Builds one daemon's [`RbayNode`] with identity and federation layout
/// consistent across every daemon of the deployment (and with the
/// simulated `Federation`: node ids hash the same string, gateways are
/// each site's three lowest addresses).
pub fn build_node(index: u32, count: u32, num_sites: u16, cfg: RbayConfig) -> RbayNode {
    let info = NodeInfo {
        id: NodeId::hash_of(format!("rbay-node:{index}").as_bytes()),
        addr: NodeAddr(index),
        site: site_of(index, count, num_sites),
    };
    let mut gateways: Vec<Vec<NodeAddr>> = vec![Vec::new(); num_sites as usize];
    for i in 0..count {
        let s = site_of(i, count, num_sites);
        let list = &mut gateways[s.0 as usize];
        if list.len() < 3 {
            list.push(NodeAddr(i));
        }
    }
    let site_names: Vec<String> = (0..num_sites).map(|s| format!("site{s}")).collect();
    let host = RbayHost::new(
        Rc::new(cfg),
        info.id,
        info.addr,
        info.site,
        SharedSandbox::new(),
        gateways,
        site_names,
    );
    RbayNode {
        pastry: PastryNode::new(info),
        scribe: ScribeLayer::new(),
        host,
    }
}

/// The control protocol between the `cluster` harness (or any operator
/// tool) and a `rbay-node` daemon. Requests flow harness → daemon;
/// [`CtrlMsg::QueryDone`], [`CtrlMsg::StatusReply`], [`CtrlMsg::Ok`] and
/// [`CtrlMsg::Err`] flow back.
#[derive(Debug, Clone, PartialEq)]
pub enum CtrlMsg {
    /// Post a resource attribute on the daemon (it joins the matching
    /// aggregation tree).
    Post {
        /// Attribute name.
        attr: String,
        /// Attribute value.
        value: rbay_query::AttrValue,
    },
    /// Install a node-level active-attribute script (`onGet` guards).
    InstallNodeAa {
        /// AAScript source.
        src: String,
    },
    /// Parse and issue a Zql query; the daemon answers with
    /// [`CtrlMsg::QueryDone`] once the query completes.
    IssueQuery {
        /// The query text.
        zql: String,
        /// Password presented to `onGet` handlers.
        password: Option<String>,
    },
    /// A query this connection issued has completed.
    QueryDone {
        /// Whether `k` candidates were committed.
        satisfied: bool,
        /// The committed candidates.
        results: Vec<Candidate>,
        /// FROM-clause site names that did not resolve.
        unknown_sites: Vec<String>,
    },
    /// Ask for the daemon's overlay/application state.
    Status,
    /// Answer to [`CtrlMsg::Status`].
    StatusReply {
        /// The daemon's overlay address.
        addr: NodeAddr,
        /// Its site.
        site: SiteId,
        /// Whether its Pastry join completed.
        joined: bool,
        /// Distinct peers in its routing state.
        known_peers: u32,
        /// Scribe topics it holds state for.
        topics: u32,
        /// Topics it is attached to (root or parented).
        attached: u32,
        /// Queries committed *on* this daemon (it was reserved and chosen).
        committed: u32,
    },
    /// Generic success acknowledgement.
    Ok,
    /// Generic failure answer.
    Err {
        /// Human-readable reason.
        msg: String,
    },
    /// Ask the daemon to exit cleanly.
    Shutdown,
}

mod ctrl_tag {
    pub const POST: u8 = 0;
    pub const INSTALL_NODE_AA: u8 = 1;
    pub const ISSUE_QUERY: u8 = 2;
    pub const QUERY_DONE: u8 = 3;
    pub const STATUS: u8 = 4;
    pub const STATUS_REPLY: u8 = 5;
    pub const OK: u8 = 6;
    pub const ERR: u8 = 7;
    pub const SHUTDOWN: u8 = 8;
}

impl Wire for CtrlMsg {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            CtrlMsg::Post { attr, value } => {
                out.push(ctrl_tag::POST);
                attr.encode_into(out);
                value.encode_into(out);
            }
            CtrlMsg::InstallNodeAa { src } => {
                out.push(ctrl_tag::INSTALL_NODE_AA);
                src.encode_into(out);
            }
            CtrlMsg::IssueQuery { zql, password } => {
                out.push(ctrl_tag::ISSUE_QUERY);
                zql.encode_into(out);
                password.encode_into(out);
            }
            CtrlMsg::QueryDone {
                satisfied,
                results,
                unknown_sites,
            } => {
                out.push(ctrl_tag::QUERY_DONE);
                satisfied.encode_into(out);
                results.encode_into(out);
                unknown_sites.encode_into(out);
            }
            CtrlMsg::Status => out.push(ctrl_tag::STATUS),
            CtrlMsg::StatusReply {
                addr,
                site,
                joined,
                known_peers,
                topics,
                attached,
                committed,
            } => {
                out.push(ctrl_tag::STATUS_REPLY);
                addr.encode_into(out);
                site.encode_into(out);
                joined.encode_into(out);
                known_peers.encode_into(out);
                topics.encode_into(out);
                attached.encode_into(out);
                committed.encode_into(out);
            }
            CtrlMsg::Ok => out.push(ctrl_tag::OK),
            CtrlMsg::Err { msg } => {
                out.push(ctrl_tag::ERR);
                msg.encode_into(out);
            }
            CtrlMsg::Shutdown => out.push(ctrl_tag::SHUTDOWN),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let tag = r.byte()?;
        Ok(match tag {
            ctrl_tag::POST => CtrlMsg::Post {
                attr: String::decode(r)?,
                value: rbay_query::AttrValue::decode(r)?,
            },
            ctrl_tag::INSTALL_NODE_AA => CtrlMsg::InstallNodeAa {
                src: String::decode(r)?,
            },
            ctrl_tag::ISSUE_QUERY => CtrlMsg::IssueQuery {
                zql: String::decode(r)?,
                password: Option::<String>::decode(r)?,
            },
            ctrl_tag::QUERY_DONE => CtrlMsg::QueryDone {
                satisfied: bool::decode(r)?,
                results: Vec::<Candidate>::decode(r)?,
                unknown_sites: Vec::<String>::decode(r)?,
            },
            ctrl_tag::STATUS => CtrlMsg::Status,
            ctrl_tag::STATUS_REPLY => CtrlMsg::StatusReply {
                addr: NodeAddr::decode(r)?,
                site: SiteId::decode(r)?,
                joined: bool::decode(r)?,
                known_peers: u32::decode(r)?,
                topics: u32::decode(r)?,
                attached: u32::decode(r)?,
                committed: u32::decode(r)?,
            },
            ctrl_tag::OK => CtrlMsg::Ok,
            ctrl_tag::ERR => CtrlMsg::Err {
                msg: String::decode(r)?,
            },
            ctrl_tag::SHUTDOWN => CtrlMsg::Shutdown,
            tag => {
                return Err(WireError::BadTag {
                    what: "CtrlMsg",
                    tag,
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbay_wire::{decode_frame, encode_frame};

    #[test]
    fn ctrl_msgs_round_trip() {
        let msgs = vec![
            CtrlMsg::Post {
                attr: "GPU".into(),
                value: rbay_query::AttrValue::Bool(true),
            },
            CtrlMsg::IssueQuery {
                zql: "SELECT 3 FROM * WHERE GPU = true".into(),
                password: Some("pw".into()),
            },
            CtrlMsg::QueryDone {
                satisfied: true,
                results: vec![Candidate {
                    id: NodeId(7),
                    addr: NodeAddr(3),
                    site: SiteId(0),
                    sort_key: None,
                }],
                unknown_sites: vec!["atlantis".into()],
            },
            CtrlMsg::Status,
            CtrlMsg::Ok,
            CtrlMsg::Shutdown,
        ];
        for m in &msgs {
            assert_eq!(&decode_frame::<CtrlMsg>(&encode_frame(m)).unwrap(), m);
        }
    }

    #[test]
    fn layout_matches_across_daemons() {
        // 10 nodes over 2 sites: 0..4 in site0, 5..9 in site1.
        assert_eq!(site_of(0, 10, 2), SiteId(0));
        assert_eq!(site_of(4, 10, 2), SiteId(0));
        assert_eq!(site_of(5, 10, 2), SiteId(1));
        assert_eq!(site_of(9, 10, 2), SiteId(1));
        let a = build_node(0, 10, 2, RbayConfig::default());
        let b = build_node(7, 10, 2, RbayConfig::default());
        assert_eq!(a.host.gateways, b.host.gateways);
        assert_eq!(a.host.site_names, b.host.site_names);
        assert_eq!(
            a.host.gateways[1],
            vec![NodeAddr(5), NodeAddr(6), NodeAddr(7)]
        );
    }
}
