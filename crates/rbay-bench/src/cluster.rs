//! Shared pieces of the real-socket deployment: node construction, the
//! loopback address plan, and the control protocol the `cluster` harness
//! speaks to `rbay-node` daemons.
//!
//! Address plan: an `n`-agent deployment packs `per` members into each
//! daemon process; process `p` hosts the contiguous overlay addresses
//! `p*per .. min((p+1)*per, n)` and listens on `127.0.0.1:(base_port + p)`.
//! With `per = 1` this degenerates to the original one-agent-per-process
//! plan (daemon `i` = `NodeAddr(i)` on `base_port + i`). Sites are
//! contiguous blocks of indices (`ceil(n / num_sites)` each) named
//! `site0..`, with each site's three lowest addresses as its border
//! routers — the same layout `Federation` uses in simulation, so a
//! converged TCP deployment and a simulated one answer queries through
//! identical gateway logic.

use aascript::SharedSandbox;
use pastry::{NodeId, NodeInfo, PastryNode};
use rbay_core::{Candidate, RbayConfig, RbayHost, RbayNode};
use rbay_wire::{Reader, Resolver, Wire, WireError};
use scribe::ScribeLayer;
use simnet::{NodeAddr, SiteId};
use std::net::{IpAddr, Ipv4Addr, SocketAddr};
use std::rc::Rc;
use std::sync::Arc;

/// Default first TCP port of a local deployment; daemon `i` listens on
/// `base + i`. Kept below the Linux ephemeral range (32768..61000 by
/// default): a big fleet opens thousands of outbound bus connections
/// whose kernel-assigned source ports would otherwise collide with
/// later daemons' listen ports.
pub const DEFAULT_BASE_PORT: u16 = 21_100;

/// The socket address of overlay node `addr` under `base_port`.
pub fn sock_of(base_port: u16, addr: NodeAddr) -> SocketAddr {
    SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), base_port + addr.0 as u16)
}

/// The daemon-process index hosting overlay address `addr` when `per`
/// members are packed per process.
pub fn proc_of(addr: NodeAddr, per: u32) -> u32 {
    addr.0 / per
}

/// The listening socket of daemon process `proc`.
pub fn proc_sock(base_port: u16, proc: u32) -> SocketAddr {
    SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), base_port + proc as u16)
}

/// A [`Resolver`] for an `n`-agent loopback deployment packing `per`
/// members per process: every member of a process resolves to that
/// process's one listening socket.
pub fn packed_resolver(base_port: u16, count: u32, per: u32) -> Resolver {
    Arc::new(move |addr: NodeAddr| {
        if addr.0 < count {
            Some(proc_sock(base_port, proc_of(addr, per)))
        } else {
            None
        }
    })
}

/// A [`Resolver`] for an `n`-daemon deployment with one agent per process.
pub fn resolver(base_port: u16, count: u32) -> Resolver {
    packed_resolver(base_port, count, 1)
}

/// The site of daemon `index` in an `n`-daemon, `num_sites`-site plan:
/// contiguous blocks, the same split `Topology` produces for equal-sized
/// sites.
pub fn site_of(index: u32, count: u32, num_sites: u16) -> SiteId {
    let per = (count as usize).div_ceil(num_sites as usize) as u32;
    SiteId(((index / per) as u16).min(num_sites - 1))
}

/// Builds one daemon's [`RbayNode`] with identity and federation layout
/// consistent across every daemon of the deployment (and with the
/// simulated `Federation`: node ids hash the same string, gateways are
/// each site's three lowest addresses).
pub fn build_node(index: u32, count: u32, num_sites: u16, cfg: RbayConfig) -> RbayNode {
    let info = NodeInfo {
        id: NodeId::hash_of(format!("rbay-node:{index}").as_bytes()),
        addr: NodeAddr(index),
        site: site_of(index, count, num_sites),
    };
    let mut gateways: Vec<Vec<NodeAddr>> = vec![Vec::new(); num_sites as usize];
    for i in 0..count {
        let s = site_of(i, count, num_sites);
        let list = &mut gateways[s.0 as usize];
        if list.len() < 3 {
            list.push(NodeAddr(i));
        }
    }
    let site_names: Vec<String> = (0..num_sites).map(|s| format!("site{s}")).collect();
    let host = RbayHost::new(
        Rc::new(cfg),
        info.id,
        info.addr,
        info.site,
        SharedSandbox::new(),
        gateways,
        site_names,
    );
    RbayNode {
        pastry: PastryNode::new(info),
        scribe: ScribeLayer::new(),
        host,
    }
}

/// The control protocol between the `cluster` harness (or any operator
/// tool) and a `rbay-node` daemon. Requests flow harness → daemon;
/// [`CtrlMsg::QueryDone`], [`CtrlMsg::StatusReply`], [`CtrlMsg::Ok`] and
/// [`CtrlMsg::Err`] flow back.
#[derive(Debug, Clone, PartialEq)]
pub enum CtrlMsg {
    /// Post a resource attribute on the daemon (it joins the matching
    /// aggregation tree).
    Post {
        /// Attribute name.
        attr: String,
        /// Attribute value.
        value: rbay_query::AttrValue,
    },
    /// Install a node-level active-attribute script (`onGet` guards).
    InstallNodeAa {
        /// AAScript source.
        src: String,
    },
    /// Parse and issue a Zql query; the daemon answers with
    /// [`CtrlMsg::QueryDone`] once the query completes.
    IssueQuery {
        /// The query text.
        zql: String,
        /// Password presented to `onGet` handlers.
        password: Option<String>,
    },
    /// A query this connection issued has completed.
    QueryDone {
        /// Whether `k` candidates were committed.
        satisfied: bool,
        /// The committed candidates.
        results: Vec<Candidate>,
        /// FROM-clause site names that did not resolve.
        unknown_sites: Vec<String>,
    },
    /// The front door refused a query under overload ([`CtrlMsg::IssueQuery`]
    /// answer when admission control sheds).
    QueryShed {
        /// Suggested client backoff before retrying.
        retry_after_ms: u64,
    },
    /// Enable the query front door on the addressed member (sent to each
    /// gateway after convergence).
    EnableFrontdoor {
        /// Cache entry TTL.
        ttl_ms: u64,
        /// Cache capacity (entries).
        capacity: u32,
        /// Admission-control bound on concurrent leader walks.
        max_pending: u32,
    },
    /// Ask for the daemon's overlay/application state.
    Status,
    /// Answer to [`CtrlMsg::Status`].
    StatusReply {
        /// The daemon's overlay address.
        addr: NodeAddr,
        /// Its site.
        site: SiteId,
        /// Whether its Pastry join completed.
        joined: bool,
        /// Distinct peers in its routing state.
        known_peers: u32,
        /// Scribe topics it holds state for.
        topics: u32,
        /// Topics it is attached to (root or parented).
        attached: u32,
        /// Queries committed *on* this daemon (it was reserved and chosen).
        committed: u32,
    },
    /// Generic success acknowledgement.
    Ok,
    /// Generic failure answer.
    Err {
        /// Human-readable reason.
        msg: String,
    },
    /// Ask the daemon to exit cleanly.
    Shutdown,
    /// Address a request to one member of a packed daemon (which hosts
    /// many overlay addresses). Unwrapped requests go to the daemon's
    /// first member.
    To {
        /// The hosted member the inner request targets.
        member: NodeAddr,
        /// The request itself.
        msg: Box<CtrlMsg>,
    },
    /// Ask for process-level aggregate state (cheap at any packing
    /// factor, unlike per-member [`CtrlMsg::Status`] sweeps).
    ProcStatus,
    /// Answer to [`CtrlMsg::ProcStatus`].
    ProcStatusReply {
        /// Members hosted by this process.
        members: u32,
        /// Members whose Pastry join completed.
        joined: u32,
        /// Members attached to at least one aggregation tree.
        attached_members: u32,
        /// Scribe topics across all members.
        topics: u32,
        /// Queries committed across all members.
        committed: u32,
        /// Frames dropped by this process (bus + loopback overflow).
        dropped_frames: u64,
        /// Smallest per-member routing-state size, a convergence signal.
        min_known_peers: u32,
        /// The bus's dropped frames broken down by cause.
        drops: rbay_wire::DropStats,
        /// Front-door counters summed over this process's members.
        frontdoor: rbay_core::FrontdoorStats,
        /// Durable-store counters summed over this process's members
        /// (all-zero when the daemon runs without `--data-dir`).
        store: rbay_store::StoreStats,
    },
    /// Release the member's current reservation (commits hold inventory
    /// for an hour otherwise — benchmark loops release between queries).
    Release,
}

mod ctrl_tag {
    pub const POST: u8 = 0;
    pub const INSTALL_NODE_AA: u8 = 1;
    pub const ISSUE_QUERY: u8 = 2;
    pub const QUERY_DONE: u8 = 3;
    pub const STATUS: u8 = 4;
    pub const STATUS_REPLY: u8 = 5;
    pub const OK: u8 = 6;
    pub const ERR: u8 = 7;
    pub const SHUTDOWN: u8 = 8;
    pub const TO: u8 = 9;
    pub const PROC_STATUS: u8 = 10;
    pub const PROC_STATUS_REPLY: u8 = 11;
    pub const RELEASE: u8 = 12;
    pub const QUERY_SHED: u8 = 13;
    pub const ENABLE_FRONTDOOR: u8 = 14;
}

impl Wire for CtrlMsg {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            CtrlMsg::Post { attr, value } => {
                out.push(ctrl_tag::POST);
                attr.encode_into(out);
                value.encode_into(out);
            }
            CtrlMsg::InstallNodeAa { src } => {
                out.push(ctrl_tag::INSTALL_NODE_AA);
                src.encode_into(out);
            }
            CtrlMsg::IssueQuery { zql, password } => {
                out.push(ctrl_tag::ISSUE_QUERY);
                zql.encode_into(out);
                password.encode_into(out);
            }
            CtrlMsg::QueryDone {
                satisfied,
                results,
                unknown_sites,
            } => {
                out.push(ctrl_tag::QUERY_DONE);
                satisfied.encode_into(out);
                results.encode_into(out);
                unknown_sites.encode_into(out);
            }
            CtrlMsg::Status => out.push(ctrl_tag::STATUS),
            CtrlMsg::StatusReply {
                addr,
                site,
                joined,
                known_peers,
                topics,
                attached,
                committed,
            } => {
                out.push(ctrl_tag::STATUS_REPLY);
                addr.encode_into(out);
                site.encode_into(out);
                joined.encode_into(out);
                known_peers.encode_into(out);
                topics.encode_into(out);
                attached.encode_into(out);
                committed.encode_into(out);
            }
            CtrlMsg::Ok => out.push(ctrl_tag::OK),
            CtrlMsg::Err { msg } => {
                out.push(ctrl_tag::ERR);
                msg.encode_into(out);
            }
            CtrlMsg::Shutdown => out.push(ctrl_tag::SHUTDOWN),
            CtrlMsg::To { member, msg } => {
                out.push(ctrl_tag::TO);
                member.encode_into(out);
                msg.encode_into(out);
            }
            CtrlMsg::ProcStatus => out.push(ctrl_tag::PROC_STATUS),
            CtrlMsg::ProcStatusReply {
                members,
                joined,
                attached_members,
                topics,
                committed,
                dropped_frames,
                min_known_peers,
                drops,
                frontdoor,
                store,
            } => {
                out.push(ctrl_tag::PROC_STATUS_REPLY);
                members.encode_into(out);
                joined.encode_into(out);
                attached_members.encode_into(out);
                topics.encode_into(out);
                committed.encode_into(out);
                dropped_frames.encode_into(out);
                min_known_peers.encode_into(out);
                drops.encode_into(out);
                frontdoor.encode_into(out);
                store.encode_into(out);
            }
            CtrlMsg::Release => out.push(ctrl_tag::RELEASE),
            CtrlMsg::QueryShed { retry_after_ms } => {
                out.push(ctrl_tag::QUERY_SHED);
                retry_after_ms.encode_into(out);
            }
            CtrlMsg::EnableFrontdoor {
                ttl_ms,
                capacity,
                max_pending,
            } => {
                out.push(ctrl_tag::ENABLE_FRONTDOOR);
                ttl_ms.encode_into(out);
                capacity.encode_into(out);
                max_pending.encode_into(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let tag = r.byte()?;
        Ok(match tag {
            ctrl_tag::POST => CtrlMsg::Post {
                attr: String::decode(r)?,
                value: rbay_query::AttrValue::decode(r)?,
            },
            ctrl_tag::INSTALL_NODE_AA => CtrlMsg::InstallNodeAa {
                src: String::decode(r)?,
            },
            ctrl_tag::ISSUE_QUERY => CtrlMsg::IssueQuery {
                zql: String::decode(r)?,
                password: Option::<String>::decode(r)?,
            },
            ctrl_tag::QUERY_DONE => CtrlMsg::QueryDone {
                satisfied: bool::decode(r)?,
                results: Vec::<Candidate>::decode(r)?,
                unknown_sites: Vec::<String>::decode(r)?,
            },
            ctrl_tag::STATUS => CtrlMsg::Status,
            ctrl_tag::STATUS_REPLY => CtrlMsg::StatusReply {
                addr: NodeAddr::decode(r)?,
                site: SiteId::decode(r)?,
                joined: bool::decode(r)?,
                known_peers: u32::decode(r)?,
                topics: u32::decode(r)?,
                attached: u32::decode(r)?,
                committed: u32::decode(r)?,
            },
            ctrl_tag::OK => CtrlMsg::Ok,
            ctrl_tag::ERR => CtrlMsg::Err {
                msg: String::decode(r)?,
            },
            ctrl_tag::SHUTDOWN => CtrlMsg::Shutdown,
            ctrl_tag::TO => {
                let member = NodeAddr::decode(r)?;
                r.enter()?;
                let msg = Box::new(CtrlMsg::decode(r)?);
                r.exit();
                CtrlMsg::To { member, msg }
            }
            ctrl_tag::PROC_STATUS => CtrlMsg::ProcStatus,
            ctrl_tag::PROC_STATUS_REPLY => CtrlMsg::ProcStatusReply {
                members: u32::decode(r)?,
                joined: u32::decode(r)?,
                attached_members: u32::decode(r)?,
                topics: u32::decode(r)?,
                committed: u32::decode(r)?,
                dropped_frames: u64::decode(r)?,
                min_known_peers: u32::decode(r)?,
                drops: rbay_wire::DropStats::decode(r)?,
                frontdoor: rbay_core::FrontdoorStats::decode(r)?,
                store: rbay_store::StoreStats::decode(r)?,
            },
            ctrl_tag::RELEASE => CtrlMsg::Release,
            ctrl_tag::QUERY_SHED => CtrlMsg::QueryShed {
                retry_after_ms: u64::decode(r)?,
            },
            ctrl_tag::ENABLE_FRONTDOOR => CtrlMsg::EnableFrontdoor {
                ttl_ms: u64::decode(r)?,
                capacity: u32::decode(r)?,
                max_pending: u32::decode(r)?,
            },
            tag => {
                return Err(WireError::BadTag {
                    what: "CtrlMsg",
                    tag,
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbay_wire::{decode_frame, encode_frame};

    #[test]
    fn ctrl_msgs_round_trip() {
        let msgs = vec![
            CtrlMsg::Post {
                attr: "GPU".into(),
                value: rbay_query::AttrValue::Bool(true),
            },
            CtrlMsg::IssueQuery {
                zql: "SELECT 3 FROM * WHERE GPU = true".into(),
                password: Some("pw".into()),
            },
            CtrlMsg::QueryDone {
                satisfied: true,
                results: vec![Candidate {
                    id: NodeId(7),
                    addr: NodeAddr(3),
                    site: SiteId(0),
                    sort_key: None,
                }],
                unknown_sites: vec!["atlantis".into()],
            },
            CtrlMsg::Status,
            CtrlMsg::Ok,
            CtrlMsg::Shutdown,
            CtrlMsg::To {
                member: NodeAddr(123),
                msg: Box::new(CtrlMsg::IssueQuery {
                    zql: "SELECT 1 FROM * WHERE GPU = true".into(),
                    password: None,
                }),
            },
            CtrlMsg::ProcStatus,
            CtrlMsg::ProcStatusReply {
                members: 100,
                joined: 99,
                attached_members: 4,
                topics: 7,
                committed: 2,
                dropped_frames: 1,
                min_known_peers: 12,
                drops: rbay_wire::DropStats {
                    unresolvable: 1,
                    outbound_full: 2,
                    write_cap: 3,
                    connect_exhausted: 4,
                    conn_closed: 5,
                },
                frontdoor: rbay_core::FrontdoorStats {
                    hits: 10,
                    misses: 4,
                    coalesced: 2,
                    shed: 1,
                    invalidations: 3,
                    evictions: 0,
                },
                store: rbay_store::StoreStats {
                    appends: 40,
                    dedup_skips: 3,
                    snapshots: 1,
                    replay_records: 17,
                    replay_micros: 250,
                    relint_rejects: 1,
                    wal_bytes: 4096,
                    wal_records: 23,
                },
            },
            CtrlMsg::Release,
            CtrlMsg::QueryShed {
                retry_after_ms: 100,
            },
            CtrlMsg::EnableFrontdoor {
                ttl_ms: 10_000,
                capacity: 1024,
                max_pending: 256,
            },
        ];
        for m in &msgs {
            assert_eq!(&decode_frame::<CtrlMsg>(&encode_frame(m)).unwrap(), m);
        }
    }

    #[test]
    fn nested_to_wrappers_hit_the_depth_guard() {
        // A hostile chain of To-wrappers must error out, not recurse
        // unboundedly.
        let mut msg = CtrlMsg::Status;
        for _ in 0..100 {
            msg = CtrlMsg::To {
                member: NodeAddr(0),
                msg: Box::new(msg),
            };
        }
        assert!(decode_frame::<CtrlMsg>(&encode_frame(&msg)).is_err());
    }

    #[test]
    fn packed_address_plan_is_consistent() {
        // 10 agents, 4 per process: procs host [0..4), [4..8), [8..10).
        assert_eq!(proc_of(NodeAddr(0), 4), 0);
        assert_eq!(proc_of(NodeAddr(3), 4), 0);
        assert_eq!(proc_of(NodeAddr(4), 4), 1);
        assert_eq!(proc_of(NodeAddr(9), 4), 2);
        let r = packed_resolver(50_000, 10, 4);
        assert_eq!(r(NodeAddr(5)), Some(proc_sock(50_000, 1)));
        assert_eq!(r(NodeAddr(9)), Some(proc_sock(50_000, 2)));
        assert_eq!(r(NodeAddr(10)), None);
        // per = 1 matches the historical one-agent-per-process plan.
        let r1 = resolver(50_000, 3);
        assert_eq!(r1(NodeAddr(2)), Some(sock_of(50_000, NodeAddr(2))));
    }

    #[test]
    fn layout_matches_across_daemons() {
        // 10 nodes over 2 sites: 0..4 in site0, 5..9 in site1.
        assert_eq!(site_of(0, 10, 2), SiteId(0));
        assert_eq!(site_of(4, 10, 2), SiteId(0));
        assert_eq!(site_of(5, 10, 2), SiteId(1));
        assert_eq!(site_of(9, 10, 2), SiteId(1));
        let a = build_node(0, 10, 2, RbayConfig::default());
        let b = build_node(7, 10, 2, RbayConfig::default());
        assert_eq!(a.host.gateways, b.host.gateways);
        assert_eq!(a.host.site_names, b.host.site_names);
        assert_eq!(
            a.host.gateways[1],
            vec![NodeAddr(5), NodeAddr(6), NodeAddr(7)]
        );
    }
}
