//! Kill-and-recover integration test for the durable daemon: a packed
//! `rbay-node` is SIGKILLed mid-load and restarted on the same
//! `--data-dir`; the recovered process must answer queries from its
//! journaled state — attributes back in place, the password `onGet`
//! guard re-installed without any operator re-installation, and the
//! pre-kill commit still on the ledger.

use rbay_bench::cluster::{proc_sock, CtrlMsg};
use rbay_wire::{decode_frame, encode_frame, read_frame, write_frame, Hello, MAX_FRAME_LEN};
use rbay_workloads::{password_aa_script, WORKLOAD_PASSWORD};
use std::io;
use std::net::TcpStream;
use std::process::{Child, Command};
use std::time::{Duration, Instant};

/// Test-local port block, away from the cluster harness default.
const BASE_PORT: u16 = 24_917;

struct Daemon {
    child: Child,
}

impl Daemon {
    fn spawn(data_dir: &std::path::Path) -> Daemon {
        let child = Command::new(env!("CARGO_BIN_EXE_rbay-node"))
            .args(["--index", "0", "--agents", "2", "--agents-per-proc", "2"])
            .args(["--base-port", &BASE_PORT.to_string()])
            .args(["--tick-ms", "50"])
            .arg("--data-dir")
            .arg(data_dir)
            .args(["--fsync", "never"])
            .spawn()
            .expect("spawn rbay-node");
        Daemon { child }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct Ctrl {
    stream: TcpStream,
}

impl Ctrl {
    fn connect() -> Ctrl {
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            match TcpStream::connect_timeout(&proc_sock(BASE_PORT, 0), Duration::from_millis(500)) {
                Ok(mut stream) => {
                    stream.set_nodelay(true).ok();
                    write_frame(&mut stream, &encode_frame(&Hello::Ctrl)).expect("hello");
                    return Ctrl { stream };
                }
                Err(e) => {
                    assert!(Instant::now() < deadline, "ctrl connect: {e}");
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }
    }

    fn request(&mut self, msg: &CtrlMsg) -> io::Result<CtrlMsg> {
        write_frame(&mut self.stream, &encode_frame(msg))?;
        self.stream
            .set_read_timeout(Some(Duration::from_secs(30)))?;
        let frame = read_frame(&mut self.stream, MAX_FRAME_LEN)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed ctrl"))?;
        decode_frame::<CtrlMsg>(&frame).map_err(io::Error::other)
    }

    fn send(&mut self, msg: &CtrlMsg) -> io::Result<()> {
        write_frame(&mut self.stream, &encode_frame(msg))
    }
}

fn to(member: u32, msg: CtrlMsg) -> CtrlMsg {
    CtrlMsg::To {
        member: simnet::NodeAddr(member),
        msg: Box::new(msg),
    }
}

/// Polls `check` until it returns true or the deadline hits.
fn wait_for(what: &str, mut check: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !check() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(100));
    }
}

fn wait_joined(ctrl: &mut Ctrl) {
    wait_for("both members joined", || {
        matches!(
            ctrl.request(&CtrlMsg::ProcStatus),
            Ok(CtrlMsg::ProcStatusReply { joined: 2, .. })
        )
    });
}

/// Issues a query from member 1 and returns `(satisfied, result count)`.
fn query(ctrl: &mut Ctrl, password: Option<&str>) -> (bool, usize) {
    let reply = ctrl
        .request(&to(
            1,
            CtrlMsg::IssueQuery {
                zql: "SELECT 1 FROM * WHERE GPU = true".into(),
                password: password.map(str::to_owned),
            },
        ))
        .expect("query reply");
    match reply {
        CtrlMsg::QueryDone {
            satisfied, results, ..
        } => (satisfied, results.len()),
        other => panic!("unexpected query reply: {other:?}"),
    }
}

#[test]
fn killed_daemon_recovers_state_and_answers_queries() {
    let data_dir = std::env::temp_dir().join(format!("rbay-restart-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    std::fs::create_dir_all(&data_dir).expect("create data dir");

    // Boot, provision member 0 (the pack's first member: bare requests
    // target it), and commit one query's reservation on it.
    let mut daemon = Daemon::spawn(&data_dir);
    let mut ctrl = Ctrl::connect();
    wait_joined(&mut ctrl);
    assert!(matches!(
        ctrl.request(&CtrlMsg::InstallNodeAa {
            src: password_aa_script(),
        }),
        Ok(CtrlMsg::Ok)
    ));
    assert!(matches!(
        ctrl.request(&CtrlMsg::Post {
            attr: "GPU".into(),
            value: rbay_query::AttrValue::Bool(true),
        }),
        Ok(CtrlMsg::Ok)
    ));
    // One satisfied query; its commit (raced by the QueryDone ack) must
    // land on member 0 before the kill. A satisfied query holds the
    // reservation, so poll the commit separately instead of re-querying.
    wait_for("query satisfied", || {
        query(&mut ctrl, Some(WORKLOAD_PASSWORD)) == (true, 1)
    });
    wait_for("commit landed", || {
        matches!(
            ctrl.request(&CtrlMsg::Status),
            Ok(CtrlMsg::StatusReply { committed: 1, .. })
        )
    });

    // SIGKILL mid-load: a query is in flight when the process dies.
    ctrl.send(&to(
        1,
        CtrlMsg::IssueQuery {
            zql: "SELECT 1 FROM * WHERE GPU = true".into(),
            password: Some(WORKLOAD_PASSWORD.into()),
        },
    ))
    .expect("in-flight query");
    daemon.child.kill().expect("kill daemon");
    let _ = daemon.child.wait();
    drop(ctrl);

    // Restart on the same data dir. No re-post, no re-install.
    daemon = Daemon::spawn(&data_dir);
    let mut ctrl = Ctrl::connect();
    wait_joined(&mut ctrl);

    // The WAL replayed: the pre-kill commit survives the kill.
    wait_for("replay visible in proc status", || {
        matches!(
            ctrl.request(&CtrlMsg::ProcStatus),
            Ok(CtrlMsg::ProcStatusReply { committed: 1, store, .. })
                if store.replay_records > 0
        )
    });

    // The restored attribute answers queries again — but only with the
    // password, proving the `onGet` guard was re-installed from its
    // journaled source, not just the attribute map.
    assert_eq!(
        query(&mut ctrl, None),
        (false, 0),
        "restored guard must still refuse passwordless queries"
    );
    // The committed reservation is re-held after restart, so release it
    // before expecting fresh inventory.
    assert!(matches!(ctrl.request(&CtrlMsg::Release), Ok(CtrlMsg::Ok)));
    wait_for("post-restart query satisfied", || {
        query(&mut ctrl, Some(WORKLOAD_PASSWORD)) == (true, 1)
    });

    drop(daemon);
    let _ = std::fs::remove_dir_all(&data_dir);
}
