//! Shape-regression tests: the qualitative claims of each figure, checked
//! automatically at reduced scale so `cargo test` guards the
//! reproduction.

use rbay_bench::{
    build_ec2_federation, build_ec2_federation_with, delivery_latencies_by_site,
    measure_query_latencies, stats, subscribe_latencies_by_site,
};
use rbay_query::AttrValue;
use rbay_workloads::{aws8_site_names, QueryGen, EC2_INSTANCE_TYPES};
use simnet::SiteId;

/// Fig. 8a's claim: hops grow like log16(N) — doubling N many times adds
/// only a constant number of hops.
#[test]
fn fig8a_shape_hops_are_logarithmic() {
    use pastry::{seed_overlay, NodeId, NodeInfo, PastryNode};
    use simnet::NodeAddr;

    let avg_route_hops = |n: usize| -> f64 {
        let mut nodes: Vec<PastryNode> = (0..n)
            .map(|i| {
                PastryNode::new(NodeInfo {
                    id: NodeId::hash_of(format!("n{i}").as_bytes()),
                    addr: NodeAddr(i as u32),
                    site: SiteId(0),
                })
            })
            .collect();
        seed_overlay(&mut nodes, |_, _| 0.0);
        // Count hops by walking next_hop decisions directly (no sim
        // needed for the hop metric).
        let mut total = 0u32;
        let probes = 200;
        for k in 0..probes {
            let key = NodeId::hash_of(format!("k{k}").as_bytes());
            let mut cur = k % n;
            let mut hops = 0u32;
            while let Some(next) = nodes[cur].next_hop(key, None) {
                cur = next.addr.0 as usize;
                hops += 1;
                assert!(hops < 64, "routing loop");
            }
            total += hops;
        }
        total as f64 / probes as f64
    };

    let h100 = avg_route_hops(100);
    let h1600 = avg_route_hops(1_600);
    // 16x more nodes ≈ one more base-16 digit ≈ one more hop.
    let delta = h1600 - h100;
    assert!(
        (0.5..=1.6).contains(&delta),
        "expected ~+1 hop per 16x nodes, got {h100} -> {h1600}"
    );
}

/// Fig. 9/10's claims: local queries are much faster than multi-site
/// ones; latency is non-decreasing-ish in sites and plateaus once the
/// farthest site is included.
#[test]
fn fig9_shape_latency_rises_then_plateaus() {
    use rbay_core::Federation;
    use simnet::SimDuration;

    let mut fed = build_ec2_federation(16, 99);
    // Guarantee the probed type exists in *every* site (at this tiny test
    // scale the Gaussian mix can miss a site, which would skew the
    // latency shape with not-found retries).
    let home_nodes = fed.sim().topology().nodes_of_site(SiteId(0));
    let itype = "c3.8xlarge".to_owned();
    for s in 0..8u16 {
        let n = fed.sim().topology().nodes_of_site(SiteId(s))[9];
        fed.post_resource(n, "instance", AttrValue::str(&itype));
    }
    fed.settle();
    fed.run_maintenance(4, simnet::SimDuration::from_millis(250));
    fed.settle();
    let names = aws8_site_names();
    let mean = |fed: &mut Federation, n_sites: usize| {
        let sites: Vec<String> = (0..n_sites).map(|i| format!("\"{}\"", names[i])).collect();
        let from = if n_sites == 8 {
            "*".into()
        } else {
            sites.join(", ")
        };
        let mut lats = Vec::new();
        for i in 0..6 {
            let origin = home_nodes[3 + i % 8];
            let q = format!("SELECT 1 FROM {from} WHERE instance = \"{itype}\"");
            let id = fed
                .issue_query(origin, &q, Some(rbay_workloads::WORKLOAD_PASSWORD))
                .unwrap();
            fed.settle();
            let rec = fed.query_record(origin, id).unwrap();
            lats.push(
                rec.completed_at
                    .unwrap()
                    .saturating_since(rec.issued_at)
                    .as_millis_f64(),
            );
            let horizon = fed.sim().now() + SimDuration::from_millis(2_500);
            fed.run_until(horizon);
        }
        stats(&lats).unwrap().mean
    };
    let local = mean(&mut fed, 1);
    let five = mean(&mut fed, 5);
    let eight = mean(&mut fed, 8);
    assert!(local < 50.0, "local-site queries are local: {local}");
    assert!(
        five > local * 5.0,
        "multi-site adds cross-site RTTs: {five}"
    );
    // Plateau: adding sites 6-8 barely moves the mean (all already
    // bounded by the farthest RTT).
    assert!(
        (eight - five).abs() < five * 0.5,
        "expected plateau, got 5-site={five} 8-site={eight}"
    );
}

/// Fig. 9's locale claim: Singapore's multi-site queries are slower than
/// Virginia's (worse RTTs to the rest of the world).
#[test]
fn fig9_shape_singapore_is_worst_positioned() {
    let mut fed = build_ec2_federation(16, 101);
    let mut qg = QueryGen::new(8, aws8_site_names(), 5).focus_popular(7, 15);
    let virginia = stats(&measure_query_latencies(&mut fed, &mut qg, SiteId(0), 8, 6))
        .unwrap()
        .mean;
    let singapore = stats(&measure_query_latencies(&mut fed, &mut qg, SiteId(4), 8, 6))
        .unwrap()
        .mean;
    assert!(
        singapore > virginia,
        "Singapore {singapore} must exceed Virginia {virginia}"
    );
}

/// Fig. 11's claims: tree construction is much cheaper than command
/// delivery, and the unstable sites deliver slower than Virginia.
#[test]
fn fig11_shape_subscribe_cheap_deliver_rtt_bound() {
    let mut fed = build_ec2_federation_with(16, 103, false);
    let sub = subscribe_latencies_by_site(&fed);
    let mut cmd_ids = Vec::new();
    for s in 0..8u16 {
        let admin = fed.sim().topology().nodes_of_site(SiteId(s))[1];
        for itype in EC2_INSTANCE_TYPES.iter().take(8) {
            cmd_ids.push(fed.admin_multicast(
                admin,
                SiteId(s),
                &format!("instance={itype}"),
                "valid_until",
                AttrValue::str("22:00"),
            ));
        }
    }
    fed.settle();
    let del = delivery_latencies_by_site(&fed, &cmd_ids);

    let all_sub: Vec<f64> = sub.iter().flatten().copied().collect();
    let all_del: Vec<f64> = del.iter().flatten().copied().collect();
    let sub_mean = stats(&all_sub).unwrap().mean;
    let del_mean = stats(&all_del).unwrap().mean;
    assert!(
        del_mean > sub_mean * 2.0,
        "delivery ({del_mean}) must dominate construction ({sub_mean})"
    );
}

/// The §II.A ablation claim: the central master's byte load grows with
/// the fleet, faster than RBAY's hottest node.
#[test]
fn ablation_shape_central_master_is_the_bottleneck() {
    use rbay_baselines::CentralPlane;
    use simnet::Topology;

    let central_bytes = |per_site: usize| {
        let mut cp = CentralPlane::new(Topology::aws_ec2_8_sites(per_site), 5);
        for i in 0..(per_site * 8) as u32 {
            cp.set_attr(simnet::NodeAddr(i), "load", AttrValue::Num(1.0));
        }
        cp.settle();
        cp.poll_round();
        cp.master_load().1
    };
    let small = central_bytes(5);
    let large = central_bytes(20);
    assert!(
        large as f64 > small as f64 * 3.0,
        "master bytes must grow ~linearly: {small} -> {large}"
    );
}
