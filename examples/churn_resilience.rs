//! Churn resilience (the paper's §VI future work, implemented): nodes
//! crash silently, heartbeat failure detection repairs the overlay and
//! the trees, and discovery keeps working.
//!
//! ```sh
//! cargo run --example churn_resilience
//! ```

use rbay::core::{Federation, RbayConfig};
use rbay::query::AttrValue;
use rbay::simnet::{NodeAddr, SimDuration, Topology};

fn main() {
    let cfg = RbayConfig {
        failure_detection: true,
        heartbeat_timeout: SimDuration::from_millis(400),
        // This demo re-queries the same inventory, so don't hold the
        // found nodes committed between measurements.
        commit_results: false,
        ..RbayConfig::default()
    };
    let mut fed = Federation::with_config(Topology::single_site(80, 0.5), 7, cfg);

    // Twenty nodes advertise GPUs.
    let holders: Vec<NodeAddr> = (10..30).map(NodeAddr).collect();
    for &h in &holders {
        fed.post_resource(h, "GPU", AttrValue::Bool(true));
    }
    fed.settle();
    fed.run_maintenance(3, SimDuration::from_millis(250));
    fed.settle();

    let count_found = |fed: &mut Federation, label: &str| {
        let id = fed
            .issue_query(NodeAddr(70), "SELECT 20 FROM * WHERE GPU = true", None)
            .unwrap();
        fed.settle();
        let rec = fed.query_record(NodeAddr(70), id).unwrap().clone();
        println!("{label}: found {} GPU nodes", rec.result.len());
        let horizon = fed.sim().now() + SimDuration::from_secs(6);
        fed.run_until(horizon);
        rec.result.len()
    };

    let before = count_found(&mut fed, "before churn");
    assert_eq!(before, holders.len());

    // Five holders crash — nobody is told.
    println!("crashing nodes 12, 15, 18, 21, 24 (silently) ...");
    for n in [12u32, 15, 18, 21, 24] {
        fed.sim_mut().fail_node(NodeAddr(n));
    }

    // Heartbeats detect the crashes and repair trees within a few rounds.
    fed.run_maintenance(8, SimDuration::from_millis(250));
    fed.settle();

    let after = count_found(&mut fed, "after heartbeat repair");
    assert!(after >= 14, "expected ~15 live holders, got {after}");

    let detectors = (0..80u32)
        .filter(|i| !fed.node(NodeAddr(*i)).host.suspected.is_empty())
        .count();
    println!("{detectors} nodes participated in failure detection");
    println!("done: discovery survives churn with no manual notification.");
}
