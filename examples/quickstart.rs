//! Quickstart: bring up a small federation, post a few resources, and run
//! a composite query.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rbay::core::Federation;
use rbay::query::AttrValue;
use rbay::simnet::{NodeAddr, SimDuration, Topology};

fn main() {
    // A 64-node single-site deployment with ~0.5 ms intra-site RTT.
    let mut fed = Federation::new(Topology::single_site(64, 0.5), 42);

    // Admins post spare resources; each post joins the matching
    // site-scoped aggregation tree.
    fed.post_resource(NodeAddr(3), "GPU", AttrValue::Bool(true));
    fed.post_resource(NodeAddr(17), "GPU", AttrValue::Bool(true));
    fed.post_resource(NodeAddr(29), "GPU", AttrValue::Bool(true));
    for (node, util) in [(3u32, 7.0), (17, 55.0), (29, 3.0)] {
        fed.update_attr(NodeAddr(node), "CPU_utilization", AttrValue::Num(util));
    }
    fed.settle();
    // A few aggregation rounds so tree roots know their sizes.
    fed.run_maintenance(4, SimDuration::from_millis(200));
    fed.settle();

    // A customer asks for two idle GPU nodes, best (lowest utilization)
    // first.
    let query = "SELECT 2 FROM * WHERE GPU = true AND CPU_utilization < 50 \
                 GROUPBY CPU_utilization ASC;";
    println!("query: {query}");
    let id = fed
        .issue_query(NodeAddr(40), query, None)
        .expect("query parses");
    fed.settle();

    let rec = fed.query_record(NodeAddr(40), id).expect("record exists");
    println!(
        "satisfied: {} in {:.1} ms (attempt {})",
        rec.satisfied,
        rec.completed_at
            .unwrap()
            .saturating_since(rec.issued_at)
            .as_millis_f64(),
        rec.attempts + 1,
    );
    for c in &rec.result {
        println!(
            "  node {} at {} (site {}), CPU_utilization = {:?}",
            c.id, c.addr, c.site, c.sort_key
        );
    }
    assert!(rec.satisfied, "expected both idle GPU nodes");
    assert_eq!(rec.result.len(), 2);
    // Lowest utilization (node 29 at 3%) must sort first.
    assert_eq!(rec.result[0].addr, NodeAddr(29));
}
