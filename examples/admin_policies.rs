//! Admin-side workflows: multicasting policy changes down aggregation
//! trees (`onDeliver`), transforming delivered values in handlers, and
//! AA-driven dynamic tree membership (`onSubscribe`/`onUnsubscribe`).
//!
//! ```sh
//! cargo run --example admin_policies
//! ```

use rbay::aascript::Value;
use rbay::core::{Federation, RbayConfig, RbayEvent};
use rbay::query::AttrValue;
use rbay::simnet::{NodeAddr, SimDuration, SiteId, Topology};

fn main() {
    // The dynamic-membership policy below reads `utilization`, a global
    // this example injects directly via `set_global`; declaring it keeps
    // the install-time linter (DESIGN.md §11) from flagging the read.
    let cfg = RbayConfig {
        lint_externs: vec!["utilization".into()],
        ..RbayConfig::default()
    };
    let mut fed = Federation::with_config(Topology::single_site(60, 0.5), 5, cfg);

    // Twelve m3.large holders; their rental price is admin-controlled.
    let members: Vec<NodeAddr> = (0..12).map(NodeAddr).collect();
    for &m in &members {
        fed.post_resource(m, "instance", AttrValue::str("m3.large"));
        // onDeliver applies a site-local 20% markup to delivered prices.
        fed.install_attr_aa(
            m,
            "price",
            r#"function onDeliver(caller, value)
                   return value * 1.2
               end"#,
        );
    }
    fed.settle();

    // The admin raises the price across the whole tree with one multicast.
    println!("multicasting price update to the m3.large tree ...");
    let cmd = fed.admin_multicast(
        NodeAddr(50),
        SiteId(0),
        "instance=m3.large",
        "price",
        AttrValue::Num(0.10),
    );
    fed.settle();

    let mut latencies: Vec<f64> = Vec::new();
    for &m in &members {
        let price = fed.node(m).host.attrs.get("price").cloned();
        assert_eq!(price, Some(AttrValue::Num(0.12)), "{m}: 0.10 * 1.2");
        for e in fed.events(m) {
            if let RbayEvent::AdminDelivered {
                cmd_id,
                issued_at,
                delivered_at,
            } = e
            {
                if *cmd_id == cmd {
                    latencies.push(delivered_at.saturating_since(*issued_at).as_millis_f64());
                }
            }
        }
    }
    latencies.sort_by(f64::total_cmp);
    println!(
        "  delivered to {} members; onDeliver latency min/median/max = {:.2}/{:.2}/{:.2} ms",
        latencies.len(),
        latencies.first().unwrap(),
        latencies[latencies.len() / 2],
        latencies.last().unwrap()
    );
    assert_eq!(latencies.len(), members.len());

    // Dynamic membership: a node joins the low-utilization tree while
    // idle and leaves when it gets busy — the paper's
    // `CPU_utilization<10%` tree (§III.B).
    let node = NodeAddr(20);
    fed.register_dynamic_tree(node, "CPU_utilization<10");
    fed.install_node_aa(
        node,
        r#"function onSubscribe(caller, topic)
               return utilization ~= nil and utilization < 10
           end
           function onUnsubscribe(caller, topic)
               return utilization ~= nil and utilization >= 10
           end"#,
    );
    fed.settle();
    let topic = fed
        .node(node)
        .host
        .tree_topic("CPU_utilization<10", SiteId(0));

    let set_util = |fed: &mut Federation, u: f64| {
        let now = fed.sim().now();
        fed.sim_mut().schedule_call(now, node, move |a, _| {
            a.host
                .node_aa
                .as_ref()
                .unwrap()
                .set_global("utilization", Value::Num(u));
        });
    };

    set_util(&mut fed, 4.0);
    fed.run_maintenance(2, SimDuration::from_millis(200));
    fed.settle();
    let joined = fed.node(node).scribe.topic(topic).is_some();
    println!("utilization 4% -> member of CPU_utilization<10 tree: {joined}");
    assert!(joined);

    set_util(&mut fed, 88.0);
    fed.run_maintenance(2, SimDuration::from_millis(200));
    fed.settle();
    let still = fed
        .node(node)
        .scribe
        .topic(topic)
        .is_some_and(|s| s.subscribed);
    println!("utilization 88% -> still subscribed: {still}");
    assert!(!still);

    println!("done: multicast policies applied, dynamic membership tracked load.");
}
