//! The paper's Fig. 5 password handler, end to end: an active attribute
//! written in AAScript gates access to a node's GPU during the query
//! protocol's `onGet` step.
//!
//! ```sh
//! cargo run --example password_policy
//! ```

use rbay::aascript::{Script, SharedSandbox, Value};
use rbay::core::Federation;
use rbay::query::AttrValue;
use rbay::simnet::{NodeAddr, SimDuration, Topology};

// Verbatim from the paper (Fig. 5), modulo the NodeId/IP values.
const FIG5: &str = r#"
AA = {NodeId = 27,
      IP = "131.94.130.118",
      Password = "3053482032"}

function onGet(caller, password)
    if (password == AA.Password) then
        return AA.NodeId
    end
    return nil
end
"#;

fn main() {
    // First, show the handler standalone in the sandboxed runtime.
    let sandbox = SharedSandbox::new();
    let script = Script::compile(FIG5).expect("Fig. 5 compiles");
    let aa = script.instantiate(&sandbox, 10_000).expect("runs");
    let granted = aa
        .invoke(
            "onGet",
            &[Value::str("joe"), Value::str("3053482032")],
            10_000,
        )
        .unwrap();
    let denied = aa
        .invoke("onGet", &[Value::str("joe"), Value::str("123")], 10_000)
        .unwrap();
    println!("standalone: granted -> {granted:?}, denied -> {denied:?}");
    assert!(granted.truthy());
    assert!(!denied.truthy());

    // The sandbox kills hostile handlers: unbounded loops hit the
    // instruction budget rather than hanging the node.
    let evil = Script::compile("function onGet(c, p) while true do end end").unwrap();
    let evil_aa = evil.instantiate(&sandbox, 10_000).unwrap();
    let err = evil_aa.invoke("onGet", &[], 10_000).unwrap_err();
    println!("hostile handler terminated: {err}");

    // Now the same policy inside a live federation.
    let mut fed = Federation::new(Topology::single_site(48, 0.5), 99);
    fed.post_resource(NodeAddr(27), "GPU", AttrValue::Bool(true));
    fed.install_node_aa(NodeAddr(27), FIG5);
    fed.settle();
    fed.run_maintenance(4, SimDuration::from_millis(200));
    fed.settle();

    let bad = fed
        .issue_query(
            NodeAddr(5),
            "SELECT 1 FROM * WHERE GPU = true",
            Some("guess"),
        )
        .unwrap();
    fed.settle();
    let rec = fed.query_record(NodeAddr(5), bad).unwrap();
    println!(
        "federation query with wrong password: satisfied={} after {} attempts",
        rec.satisfied, rec.attempts
    );
    assert!(!rec.satisfied);

    let good = fed
        .issue_query(
            NodeAddr(5),
            "SELECT 1 FROM * WHERE GPU = true",
            Some("3053482032"),
        )
        .unwrap();
    fed.settle();
    let rec = fed.query_record(NodeAddr(5), good).unwrap();
    println!(
        "federation query with right password: satisfied={} -> node {}",
        rec.satisfied, rec.result[0].addr
    );
    assert!(rec.satisfied);
    assert_eq!(rec.result[0].addr, NodeAddr(27));
}
