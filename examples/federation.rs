//! The paper's motivating scenario (Fig. 1): Grace, James, and Kevin each
//! administer a site with different devices and different sharing
//! policies; Joe queries the federation for a package of resources that
//! no single site can satisfy.
//!
//! ```sh
//! cargo run --example federation
//! ```

use rbay::core::Federation;
use rbay::query::AttrValue;
use rbay::simnet::{NodeAddr, SimDuration, SiteId, SiteSpec, Topology};
use rbay::workloads::WORKLOAD_PASSWORD;

fn main() {
    // Three autonomous sites with realistic WAN RTTs between them.
    let sites = vec![
        SiteSpec {
            name: "Grace".into(),
            nodes: 24,
            instability: 1.0,
        },
        SiteSpec {
            name: "James".into(),
            nodes: 24,
            instability: 1.0,
        },
        SiteSpec {
            name: "Kevin".into(),
            nodes: 24,
            instability: 1.5,
        },
    ];
    let rtt = vec![
        vec![0.5, 60.0, 180.0],
        vec![0.0, 0.5, 140.0],
        vec![0.0, 0.0, 0.5],
    ];
    let mut fed = Federation::new(Topology::new(sites, rtt), 7);
    let grace = fed.sim().topology().nodes_of_site(SiteId(0));
    let james = fed.sim().topology().nodes_of_site(SiteId(1));
    let kevin = fed.sim().topology().nodes_of_site(SiteId(2));

    // Grace's inventory (Fig. 1): GPUs, Ubuntu, Matlab. Her policy: only
    // available to callers presenting her password ("after 10 PM" in the
    // paper; any admin-written check goes here).
    fed.post_resource(grace[1], "GPU_MHz", AttrValue::Num(1072.0));
    fed.post_resource(grace[2], "OS", AttrValue::str("Ubuntu12.04"));
    fed.post_resource(grace[3], "Matlab", AttrValue::str("8.0"));
    for &n in &grace[1..4] {
        fed.install_node_aa(
            n,
            &format!(
                r#"AA = {{Password = "{WORKLOAD_PASSWORD}"}}
                   function onGet(caller, password)
                       if password == AA.Password then return true end
                       return nil
                   end"#
            ),
        );
    }

    // James's inventory: CentOS, Acrobat, McAfee — open access.
    fed.post_resource(james[1], "OS", AttrValue::str("CentOS6.5"));
    fed.post_resource(james[2], "Acrobat", AttrValue::str("XI Pro"));
    fed.post_resource(james[3], "McAfee", AttrValue::Bool(true));

    // Kevin's inventory: GPUs, memory, Cassandra — he prefers callers
    // with good history; model it as an allow-list in the AA.
    fed.post_resource(kevin[1], "GPU_MHz", AttrValue::Num(1072.0));
    fed.post_resource(kevin[2], "Mem_GB", AttrValue::Num(3.75));
    fed.post_resource(kevin[3], "Cassandra", AttrValue::str("2.0"));
    for &n in &kevin[1..4] {
        fed.install_node_aa(
            n,
            r#"AA = {Trusted = {}}
               AA.Trusted["n30"] = true
               function onGet(caller, password)
                   if AA.Trusted[caller] then return true end
                   return nil
               end"#,
        );
    }

    fed.settle();
    fed.run_maintenance(4, SimDuration::from_millis(250));
    fed.settle();

    // Joe (a James-site customer, node 30 = james[6]) assembles his
    // package: a GPU from anywhere (he has Grace's password and is on
    // Kevin's allow-list), plus Cassandra.
    let joe = NodeAddr(30);
    println!("Joe ({joe}) queries the federation:");
    for (label, q, pw) in [
        (
            "GPU nodes anywhere",
            "SELECT 2 FROM * WHERE GPU_MHz >= 1000 AND GPU_MHz = 1072",
            Some(WORKLOAD_PASSWORD),
        ),
        (
            "Cassandra in Kevin's site",
            r#"SELECT 1 FROM "Kevin" WHERE Cassandra = "2.0""#,
            None,
        ),
        (
            "Acrobat license in James's own site",
            r#"SELECT 1 FROM "James" WHERE Acrobat = "XI Pro""#,
            None,
        ),
    ] {
        let id = fed.issue_query(joe, q, pw).expect("parses");
        fed.settle();
        let rec = fed.query_record(joe, id).unwrap();
        let ms = rec
            .completed_at
            .unwrap()
            .saturating_since(rec.issued_at)
            .as_millis_f64();
        println!("  [{label}] satisfied={} latency={ms:.1}ms", rec.satisfied);
        for c in &rec.result {
            println!("      -> node {} in site {}", c.addr, c.site);
        }
        assert!(rec.satisfied, "{label}: {rec:?}");
    }

    // A stranger without Grace's password gets nothing from her GPUs —
    // wait out the reservation TTL from Joe's successful GPU query first.
    let stranger = NodeAddr(50);
    let horizon = fed.sim().now() + SimDuration::from_secs(10);
    fed.run_until(horizon);
    let id = fed
        .issue_query(
            stranger,
            r#"SELECT 1 FROM "Grace" WHERE GPU_MHz = 1072"#,
            Some("wrong-password"),
        )
        .unwrap();
    fed.settle();
    let rec = fed.query_record(stranger, id).unwrap();
    println!(
        "  [stranger vs Grace's policy] satisfied={} (expected false)",
        rec.satisfied
    );
    assert!(!rec.satisfied, "Grace's policy must deny the stranger");
    println!("done: policies enforced, composite discovery across all three sites.");
}
